//! Offline vendored shim for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors minimal, dependency-free implementations of its
//! external crates (see `vendor/README.md`). This shim provides:
//!
//! * [`rngs::StdRng`] — a seedable PRNG (xoshiro256++ seeded via
//!   SplitMix64). The *stream* differs from upstream `StdRng` (which is
//!   ChaCha12), but every consumer in this workspace only relies on
//!   determinism — same seed, same stream — never on specific values.
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over integer and float
//!   ranges.
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64`.
//! * [`seq::SliceRandom`] — `choose` / `shuffle`, and
//!   [`seq::index::sample`].
//!
//! Statistical quality: xoshiro256++ passes BigCrush; Fisher–Yates and
//! Lemire-style rejection sampling keep draws unbiased, which the
//! workspace's distribution-sensitive tests (power-law partitioning,
//! variance-reduction comparisons) depend on.

#![warn(missing_docs)]

/// Core random-number generation trait: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value samplable directly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
uint_range_impl!(u8, u16, u32, u64, usize);

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
int_range_impl!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end { self.start } else { v }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty float range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Unbiased draw from `[0, bound)` by rejection (bound > 0).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Classic rejection: retry draws landing in the biased tail.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive; ints or
    /// floats).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64 (the standard
    /// recommendation for seeding xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed-expansion generator.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable PRNG: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12);
    /// every consumer here relies only on seed-determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::Rng;

        /// Sampled indices (upstream returns an enum; this shim keeps a
        /// plain vector).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consume into a `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates over the index vector.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            use super::super::SampleRange;
            assert!(amount <= length, "sample: amount {amount} > length {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = (i..length).sample_from(rng);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::super::rngs::StdRng;
        use super::super::SeedableRng;
        use super::*;

        #[test]
        fn shuffle_is_permutation() {
            let mut v: Vec<u32> = (0..100).collect();
            let mut rng = StdRng::seed_from_u64(1);
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..100).collect::<Vec<_>>());
            assert_ne!(v, sorted, "shuffle of 100 elements left them ordered");
        }

        #[test]
        fn index_sample_distinct_and_in_range() {
            let mut rng = StdRng::seed_from_u64(2);
            let idx = index::sample(&mut rng, 50, 10).into_vec();
            assert_eq!(idx.len(), 10);
            let mut s = idx.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < 50));
        }

        #[test]
        fn choose_none_on_empty() {
            let v: Vec<u8> = vec![];
            let mut rng = StdRng::seed_from_u64(3);
            assert!(v.choose(&mut rng).is_none());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams for different seeds look identical");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&y));
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn rng_works_through_mut_reference() {
        fn draw<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _: f64 = r.gen_range(0.0..1.0);
    }

    #[test]
    fn from_seed_all_zero_is_valid() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
