//! Offline vendored shim for the subset of `rand_distr` 0.4 used by this
//! workspace: [`Normal`] and [`LogNormal`] (see `vendor/README.md`).
//!
//! Sampling uses the Box–Muller transform (one fresh pair of uniforms per
//! draw, cosine branch only) — exact for the normal distribution and
//! deterministic given the RNG stream.

#![warn(missing_docs)]

use rand::Rng;
use std::fmt;

/// Types that can be sampled from a distribution.
pub trait Distribution<T> {
    /// Draw one value using `rng` as the entropy source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation (or shape parameter) was negative or NaN.
    BadVariance,
    /// The mean was NaN.
    MeanTooSmall,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "invalid standard deviation"),
            NormalError::MeanTooSmall => write!(f, "invalid mean"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Create a normal distribution; `std_dev` must be finite and ≥ 0.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// One standard-normal draw via Box–Muller (cosine branch).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1]: shift the 53-bit uniform away from zero so ln is finite.
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    norm: Normal<F>,
}

impl LogNormal<f64> {
    /// Create from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn lognormal_positive_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let xs: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // E[lognormal(0,1)] = exp(0.5) ≈ 1.6487.
        assert!((mean - 1.6487).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
