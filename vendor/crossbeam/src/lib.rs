//! Offline vendored shim for the subset of `crossbeam` used by this
//! workspace (see `vendor/README.md`): unbounded MPSC channels (over
//! `std::sync::mpsc`, whose implementation *is* crossbeam's since Rust
//! 1.72) and panic-collecting scoped threads (over `std::thread::scope`).

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// MPSC channels.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors when every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped-thread handle (join is implicit at scope exit).
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread and return its result.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

/// A scope for spawning borrowing threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure
    /// receives the scope itself (for nested spawns).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
    }
}

/// Run `f` with a scope in which borrowing threads can be spawned; every
/// spawned thread is joined before `scope` returns. Returns `Err` with
/// the panic payload if the closure or any spawned thread panicked
/// (crossbeam semantics — `std::thread::scope` would re-raise instead).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Alias module so `crossbeam::thread::scope` also resolves.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let out = scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).expect("send"));
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        })
        .expect("scope");
        let mut sorted = out;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scope_returns_err_on_child_panic() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let r = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().map(|v| v * 2).unwrap_or(0)
            });
            h.join().unwrap_or(0)
        })
        .expect("scope");
        assert_eq!(r, 42);
    }
}
