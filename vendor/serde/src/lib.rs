//! Offline vendored shim for the `serde` surface used by this workspace
//! (see `vendor/README.md`).
//!
//! Unlike upstream serde's visitor architecture, this shim routes
//! everything through one in-memory JSON-like [`Value`]: `Serialize`
//! lowers a type to a `Value`, `Deserialize` raises it back. The
//! `serde_json` shim then only needs a text parser/printer for `Value`.
//! The derive macros (re-exported from the `serde_derive` shim) generate
//! impls of these simplified traits and support the attribute subset the
//! workspace uses: `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(tag = "...")]`, and `#[serde(rename_all = "snake_case")]`.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value: the single data model all (de)serialization in
/// this workspace flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float, see [`Number`]).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key–value list (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|fields| obj_get(fields, key))
    }

    /// Short human label for error messages ("object", "number", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Find `key` in an object's field list (first match wins).
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A JSON number, preserving integer fidelity (u64 seeds survive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Float.
    F64(f64),
}

impl Number {
    /// As f64 (lossy only beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// As u64 when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As i64 when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X for Y, found Z"-style error.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        DeError { msg: format!("expected {what} for {ty}, found {}", found.kind()) }
    }

    /// Missing-field error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError { msg: format!("missing field `{field}` while deserializing {ty}") }
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError { msg: format!("unknown variant `{variant}` for enum {ty}") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Raise a value back out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert a [`Value`] into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::custom(concat!("number out of range for ", stringify!($t)))),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! sint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::custom(concat!("number out of range for ", stringify!($t)))),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
sint_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // serde_json compatibility: non-finite floats serialize as null.
        if self.is_finite() {
            Value::Number(Number::F64(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // Lenient inverse of the non-finite → null mapping above.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", "tuple", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrips_at_full_precision() {
        let seed = u64::MAX - 7;
        let v = seed.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), seed);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn option_none_is_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Number(Number::F64(2.5))).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn wrong_kind_errors_mention_both_sides() {
        let err = bool::from_value(&Value::String("x".into())).unwrap_err();
        assert!(err.to_string().contains("bool"));
        assert!(err.to_string().contains("string"));
    }
}
