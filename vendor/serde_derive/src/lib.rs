//! Offline vendored shim for `serde_derive` (see `vendor/README.md`).
//!
//! Hand-rolled derive macros — no `syn`/`quote`, just `proc_macro`
//! token walking — generating impls of the simplified `serde::Serialize`
//! / `serde::Deserialize` traits of the vendored `serde` shim.
//!
//! Supported input shapes (everything this workspace derives on):
//! * structs with named fields (any visibility),
//! * enums with unit, tuple, and struct variants,
//! * field attributes `#[serde(default)]` and `#[serde(default = "path")]`,
//! * container attributes `#[serde(tag = "...")]` (internally tagged
//!   enums) and `#[serde(rename_all = "snake_case")]`.
//!
//! Anything else (generics, tuple structs, other serde attributes) fails
//! with a compile error naming the limitation, rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
    tag: Option<String>,
    rename_all: Option<String>,
}

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume attributes; returns accumulated `#[serde(...)]` arguments.
    fn eat_attrs(&mut self) -> Result<Vec<(String, Option<String>)>, String> {
        let mut serde_args = Vec::new();
        while self.eat_punct('#') {
            // Outer attribute: a bracket group follows.
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.eat_ident("serde") {
                        match inner.next() {
                            Some(TokenTree::Group(args))
                                if args.delimiter() == Delimiter::Parenthesis =>
                            {
                                serde_args.extend(parse_serde_args(args.stream())?);
                            }
                            other => {
                                return Err(format!("malformed #[serde] attribute: {other:?}"))
                            }
                        }
                    }
                    // Non-serde attrs (doc comments etc.) are skipped.
                }
                other => return Err(format!("expected [...] after #, found {other:?}")),
            }
        }
        Ok(serde_args)
    }

    /// Consume a visibility marker (`pub`, `pub(crate)`, ...), if present.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip a type expression up to a top-level `,` (or end of stream).
    /// Tracks `<`/`>` nesting; parens/brackets arrive as atomic groups.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    ',' if angle == 0 => break,
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

/// Parse `name`, `name = "literal"` pairs separated by commas.
fn parse_serde_args(ts: TokenStream) -> Result<Vec<(String, Option<String>)>, String> {
    let mut cur = Cursor::new(ts);
    let mut out = Vec::new();
    while !cur.at_end() {
        let name = cur.expect_ident()?;
        let mut value = None;
        if cur.eat_punct('=') {
            match cur.next() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    let trimmed = s.trim_matches('"').to_string();
                    value = Some(trimmed);
                }
                other => return Err(format!("expected literal after `=`, found {other:?}")),
            }
        }
        out.push((name, value));
        cur.eat_punct(',');
    }
    Ok(out)
}

fn field_default(args: &[(String, Option<String>)]) -> Result<Option<Option<String>>, String> {
    let mut default = None;
    for (name, value) in args {
        match name.as_str() {
            "default" => default = Some(value.clone()),
            other => return Err(format!("unsupported field attribute #[serde({other})]")),
        }
    }
    Ok(default)
}

/// Parse the named fields inside a brace group.
fn parse_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(ts);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let serde_args = cur.eat_attrs()?;
        cur.eat_visibility();
        let name = cur.expect_ident()?;
        if !cur.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        cur.skip_type();
        cur.eat_punct(',');
        fields.push(Field { name, default: field_default(&serde_args)? });
    }
    Ok(fields)
}

/// Count top-level comma-separated entries of a tuple-variant group.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut cur = Cursor::new(ts);
    let mut count = 0;
    while !cur.at_end() {
        cur.skip_type();
        count += 1;
        cur.eat_punct(',');
    }
    count
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(ts);
    let mut variants = Vec::new();
    while !cur.at_end() {
        let _ = cur.eat_attrs()?; // variant-level serde attrs unsupported but harmless to parse
        let name = cur.expect_ident()?;
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.pos += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                cur.pos += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        cur.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let container_args = cur.eat_attrs()?;
    cur.eat_visibility();

    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        return Err("derive supports only `struct` and `enum` items".to_string());
    };
    let name = cur.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` not supported by the vendored derive"));
        }
    }
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("tuple struct `{name}` not supported by the vendored derive"));
        }
        other => return Err(format!("expected item body for `{name}`, found {other:?}")),
    };

    let mut tag = None;
    let mut rename_all = None;
    for (attr, value) in container_args {
        match attr.as_str() {
            "tag" => tag = value,
            "rename_all" => {
                if value.as_deref() != Some("snake_case") {
                    return Err("only rename_all = \"snake_case\" is supported".to_string());
                }
                rename_all = value;
            }
            other => return Err(format!("unsupported container attribute #[serde({other})]")),
        }
    }

    let kind = if is_enum {
        ItemKind::Enum(parse_variants(body)?)
    } else {
        ItemKind::Struct(parse_fields(body)?)
    };
    Ok(Item { name, kind, tag, rename_all })
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn wire_name(item: &Item, variant: &str) -> String {
    if item.rename_all.is_some() {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_struct_fields_ser(fields: &[Field], accessor: &str) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value({a}{n})));\n",
            n = f.name,
            a = accessor,
        ));
    }
    out
}

/// Generate the `name: <expr>` initializers for a braced constructor,
/// reading each field from the object slice binding `obj`.
fn gen_struct_fields_de(ty: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fallback = match &f.default {
            None => format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{ty}\", \"{n}\"))",
                n = f.name
            ),
            Some(None) => "::std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
        };
        out.push_str(&format!(
            "{n}: match ::serde::obj_get(obj, \"{n}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {fallback},\n\
             }},\n",
            n = f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            if item.tag.is_some() {
                return Err("#[serde(tag)] on structs is not supported".to_string());
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {}\
                 ::serde::Value::Object(fields)",
                gen_struct_fields_ser(fields, "&self.")
            )
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = wire_name(item, &v.name);
                let arm = match (&v.shape, &item.tag) {
                    (VariantShape::Unit, None) => format!(
                        "{name}::{v} => ::serde::Value::String(\"{wire}\".to_string()),\n",
                        v = v.name
                    ),
                    (VariantShape::Unit, Some(tag)) => format!(
                        "{name}::{v} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()))]),\n",
                        v = v.name
                    ),
                    (VariantShape::Tuple(1), None) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Serialize::to_value(f0))]),\n",
                        v = v.name
                    ),
                    (VariantShape::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    (VariantShape::Tuple(_), Some(_)) => {
                        return Err(format!(
                            "internally tagged tuple variant `{}` is not supported",
                            v.name
                        ))
                    }
                    (VariantShape::Struct(fields), tag) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let push_fields = gen_struct_fields_ser(fields, "");
                        match tag {
                            None => format!(
                                "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {push_fields}\
                                 ::serde::Value::Object(vec![(\"{wire}\".to_string(), ::serde::Value::Object(fields))])\n\
                                 }}\n",
                                v = v.name,
                                binds = binds.join(", ")
                            ),
                            Some(tag) => format!(
                                "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 fields.push((\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string())));\n\
                                 {push_fields}\
                                 ::serde::Value::Object(fields)\n\
                                 }}\n",
                                v = v.name,
                                binds = binds.join(", ")
                            ),
                        }
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    ))
}

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits = gen_struct_fields_de(name, fields);
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        ItemKind::Enum(variants) => {
            if let Some(tag) = &item.tag {
                // Internally tagged: { "<tag>": "variant", ...fields }.
                let mut arms = String::new();
                for v in variants {
                    let wire = wire_name(item, &v.name);
                    let arm = match &v.shape {
                        VariantShape::Unit => format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ),
                        VariantShape::Struct(fields) => {
                            let inits = gen_struct_fields_de(name, fields);
                            format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n",
                                v = v.name
                            )
                        }
                        VariantShape::Tuple(_) => {
                            return Err(format!(
                                "internally tagged tuple variant `{}` is not supported",
                                v.name
                            ))
                        }
                    };
                    arms.push_str(&arm);
                }
                format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\", v))?;\n\
                     let tag = ::serde::obj_get(obj, \"{tag}\")\n\
                         .and_then(::serde::Value::as_str)\n\
                         .ok_or_else(|| ::serde::DeError::missing_field(\"{name}\", \"{tag}\"))?;\n\
                     match tag {{\n\
                     {arms}\
                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                     }}"
                )
            } else {
                // Externally tagged: "Variant" or { "Variant": payload }.
                let mut string_arms = String::new();
                let mut object_arms = String::new();
                for v in variants {
                    let wire = wire_name(item, &v.name);
                    match &v.shape {
                        VariantShape::Unit => string_arms.push_str(&format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantShape::Tuple(1) => object_arms.push_str(&format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n",
                            v = v.name
                        )),
                        VariantShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            object_arms.push_str(&format!(
                                "\"{wire}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => ::std::result::Result::Ok({name}::{v}({gets})),\n\
                                 other => ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element array\", \"{name}::{v}\", other)),\n\
                                 }},\n",
                                v = v.name,
                                gets = gets.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let inits = gen_struct_fields_de(name, fields);
                            object_arms.push_str(&format!(
                                "\"{wire}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{v}\", inner))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n\
                                 }},\n",
                                v = v.name
                            ));
                        }
                    }
                }
                format!(
                    "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                     {string_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                     let (key, inner) = &fields[0];\n\
                     match key.as_str() {{\n\
                     {object_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", other)),\n\
                     }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"variant string or single-key object\", \"{name}\", other)),\n\
                     }}"
                )
            }
        }
    };
    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    ))
}

fn run(input: TokenStream, gen: fn(&Item) -> Result<String, String>) -> TokenStream {
    let code = match parse_item(input).and_then(|item| gen(&item)) {
        Ok(code) => code,
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"vendored serde_derive generated invalid code: {e:?}\");")
            .parse()
            .expect("fallback compile_error must parse")
    })
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, gen_serialize)
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, gen_deserialize)
}
