//! Offline vendored shim for the `criterion` surface used by this
//! workspace (see `vendor/README.md`).
//!
//! A deliberately small wall-clock harness: each benchmark is warmed up
//! once, then timed over a short fixed budget, and the mean iteration
//! time is printed. There is no statistical analysis, HTML report, or
//! baseline comparison — the point is that `cargo bench` compiles, runs,
//! and prints usable numbers offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration time budget used when timing a benchmark.
const TIME_BUDGET: Duration = Duration::from_millis(200);
/// Cap on timed iterations, so very fast benchmarks terminate promptly.
const MAX_ITERS: u64 = 10_000;

/// Top-level benchmark driver (shim).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), throughput: None }
    }
}

/// Identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare units processed per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let mean = run_one(&label, f);
        self.report_throughput(mean);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mean = run_one(&label, |b| f(b, input));
        self.report_throughput(mean);
        self
    }

    /// End the group (no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}

    fn report_throughput(&self, mean: Duration) {
        let secs = mean.as_secs_f64();
        if secs <= 0.0 {
            return;
        }
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let mibps = bytes as f64 / secs / (1024.0 * 1024.0);
                println!("    thrpt: {mibps:.1} MiB/s");
            }
            Some(Throughput::Elements(elems)) => {
                let eps = elems as f64 / secs;
                println!("    thrpt: {eps:.0} elem/s");
            }
            None => {}
        }
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine` within the shim's budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warmup pass.
        black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < TIME_BUDGET && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        self.total = started.elapsed();
        self.iters = iters.max(1);
    }

    fn mean(&self) -> Duration {
        self.total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX)
    }
}

fn run_one<F>(label: &str, mut f: F) -> Duration
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mean = bencher.mean();
    println!("bench {label:<48} {:>12.3?}/iter ({} iters)", mean, bencher.iters);
    mean
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("probe", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("f", 42), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }
}
