//! Offline vendored shim for the `proptest` surface used by this
//! workspace (see `vendor/README.md`).
//!
//! Differences from upstream, by design:
//! * cases are generated from a fixed per-case seed, so runs are fully
//!   deterministic (no persisted failure files);
//! * there is no shrinking — a failing case reports its case number and
//!   the assertion message, and the fixed seeding makes it reproducible.
//!
//! Supported: the `proptest!` macro with `#![proptest_config(...)]`,
//! `pat in strategy` arguments, `prop_assert!` / `prop_assert_eq!`,
//! `any::<T>()`, numeric range strategies, strategy tuples,
//! `collection::vec`, `Strategy::prop_map`, and `sample::Index`.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // Matches upstream's default in spirit: the full bit space, so NaN,
    // infinities, subnormals, and both zeros all occur.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut StdRng) -> super::sample::Index {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the entire domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A half-open length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy: `size` may be an exact `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling helpers.
pub mod sample {
    /// An index drawn uniformly, resolved against a length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index { raw }
        }

        /// Resolve against a collection of `size` elements (`size > 0`).
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.raw % size as u64) as usize
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    use std::fmt;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with message.
        Fail(String),
        /// Input rejected by a filter.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Outcome of a single test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Per-case RNG: fixed base seed mixed with the case index, so every
    /// run of the suite sees the same sequence of inputs.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ ((case as u64) << 17) ^ 0x5EED)
    }
}

/// Property-test block: an optional `#![proptest_config(...)]` followed
/// by `fn name(pat in strategy, ...) { body }` items, each expanded into
/// a deterministic `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::__rt::case_rng(__case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case #{} of {}: {}", __case, stringify!($name), e)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Skip the current case (without failing) when a precondition does not
/// hold for the generated inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {y}");
        }

        fn vec_lengths_in_range(v in crate::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        fn exact_vec_length(v in crate::collection::vec(0.0f64..1.0, 12)) {
            prop_assert_eq!(v.len(), 12);
        }

        fn prop_map_applies(n in (1usize..5).prop_map(|k| k * 10)) {
            prop_assert!(n % 10 == 0 && (10..50).contains(&n));
        }

        fn tuples_generate_componentwise(t in (0u32..4, 0.0f64..1.0, 5usize..6)) {
            prop_assert!(t.0 < 4);
            prop_assert!((0.0..1.0).contains(&t.1));
            prop_assert_eq!(t.2, 5);
        }

        fn index_resolves_in_bounds(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn same_case_same_inputs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0.0f64..1.0, 4..20);
        let a = s.generate(&mut crate::__rt::case_rng(3));
        let b = s.generate(&mut crate::__rt::case_rng(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case #0")]
    // The macro expands to a nested `#[test] fn`, which is unnameable
    // from the harness here — that is fine, we call it directly below.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "intentional");
            }
        }
        always_fails();
    }
}
