//! Offline vendored shim for the `serde_json` surface used by this
//! workspace (see `vendor/README.md`): [`to_string`], [`to_string_pretty`],
//! [`from_str`], and an [`Error`] type.
//!
//! Text is parsed into / printed from the vendored `serde` crate's
//! [`Value`] model. Floats print via Rust's shortest-roundtrip `Display`
//! and parse via `str::parse::<f64>` (correctly rounded), so
//! print→parse roundtrips are exact; non-finite floats serialize as
//! `null` (matching upstream serde_json's lossy behaviour).

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Number, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no separator space, matching upstream
                    }
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                let s = v.to_string();
                out.push_str(&s);
                // Keep floats distinguishable from integers on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // Defensive: serde's f64 impl already maps these to Null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent over bytes)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape sequence"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0C}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if self.eat_keyword("\\u") {
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::new("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(Error::new("unpaired high surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| Error::new("invalid unicode escape"))?
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| Error::new(format!("invalid number `{text}`")))?;
        Ok(Value::Number(Number::F64(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let v = vec![1i32, -2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,-2,3]");
        let back: Vec<i32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1f64, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 2.5] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "roundtrip of {x} via {s}");
        }
    }

    #[test]
    fn infinity_becomes_null_and_parses_back_nan() {
        let s = to_string(&f64::INFINITY).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::U64(1))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\": 1"));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1F600} \u{08}";
        let s = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn u64_seed_precision_survives() {
        let seed = u64::MAX - 41;
        let s = to_string(&seed).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
