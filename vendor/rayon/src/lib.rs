//! Offline vendored shim for the subset of `rayon` used by this
//! workspace (see `vendor/README.md`).
//!
//! Every `par_*` entry point returns the corresponding **sequential**
//! standard-library iterator, so arbitrary adapter chains (`map`, `zip`,
//! `enumerate`, `for_each`, `filter`, `count`, `sum`, `collect`) keep
//! working unchanged. The workspace already pins all parallel reductions
//! to fixed chunks combined in order precisely so that scheduling cannot
//! affect results — under this shim the sequential and "parallel"
//! backends are trivially bit-identical, and swapping the real rayon back
//! in cannot change any numeric output.

#![warn(missing_docs)]

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    /// `par_iter`/`par_chunks` over shared slices (sequential shim).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut`/`par_chunks_mut` over mutable slices (sequential
    /// shim).
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `rayon`'s `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            assert!(chunk_size > 0, "par_chunks_mut: chunk size must be positive");
            self.chunks_mut(chunk_size)
        }
    }

    /// `into_par_iter` for owned iterables (sequential shim).
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter;
        /// Sequential stand-in for `rayon`'s `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of threads the shim "uses" (always 1; sequential).
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v = [1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_chunks_mut_enumerate() {
        let mut v = vec![0usize; 6];
        v.par_chunks_mut(2).enumerate().for_each(|(i, c)| c.fill(i));
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn into_par_iter_range_filter_count() {
        let n = (0..100usize).into_par_iter().filter(|x| x % 3 == 0).count();
        assert_eq!(n, 34);
    }

    #[test]
    fn zip_of_par_chunks() {
        let a = [1.0f64, 2.0, 3.0, 4.0];
        let b = [10.0f64, 20.0, 30.0, 40.0];
        let s: f64 = a
            .par_chunks(2)
            .zip(b.par_chunks(2))
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p * q).sum::<f64>())
            .sum();
        assert_eq!(s, 10.0 + 40.0 + 90.0 + 160.0);
    }
}
