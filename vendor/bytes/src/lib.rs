//! Offline vendored shim for the subset of `bytes` used by this
//! workspace (see `vendor/README.md`): [`Bytes`] (cheaply cloneable
//! immutable buffer), [`BytesMut`] (growable builder), and the [`Buf`] /
//! [`BufMut`] cursor traits with the little-endian accessors the wire
//! codec uses.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer (`Arc<[u8]>` underneath).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

/// Growable byte buffer with little-endian put methods.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which
/// advances in place (so `&mut &[u8]` is a consuming reader).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Read `N` bytes into an array, advancing past them.
    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor for building byte buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(u64::MAX - 3);
        b.put_f64_le(std::f64::consts::PI);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn nan_bits_preserved() {
        let mut b = BytesMut::new();
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        b.put_f64_le(weird);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_f64_le().to_bits(), weird.to_bits());
    }
}
