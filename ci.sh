#!/usr/bin/env sh
# CI gate: build → test (default / check / telemetry) → clippy → fedlint →
# fedtrace smoke → perf-smoke → fedscope-smoke → fedresil-smoke →
# fedprof-smoke → fedobs-smoke → fedsim-smoke. Any failing stage fails
# the run.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --features check (numeric guards as hard errors)"
cargo test -q --features check

echo "==> cargo test -q --features telemetry (instrumentation compiled in)"
cargo test -q --features telemetry

# unwrap_used/expect_used are denied via [workspace.lints]; every
# `#[allow]` escaping the deny must carry an adjacent justified
# `// fedlint: allow(...)` annotation (enforced by the fedlint
# clippy-allow-sync rule in the gate below).
if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint stage"
fi

# fedlint-gate: the full AST/call-graph engine (determinism,
# panic-reachability and feature-gate rules) against the committed
# per-rule budgets. Any count over budget exits nonzero.
echo "==> fedlint-gate (check --baseline LINT_BASELINE.json --gate)"
cargo run -q --release -p fedprox-conformance --bin fedlint -- \
    check --baseline LINT_BASELINE.json --gate

echo "==> fedtrace smoke (summarize the checked-in fixture trace)"
cargo run -q --release -p fedprox-telemetry --bin fedtrace -- \
    crates/telemetry/tests/fixtures/sample_trace.jsonl >/dev/null

# perf-smoke: run the fedperf harness twice in --quick mode, validate the
# emitted reports against the fedperf/v1 schema, and check the two runs are
# structurally identical (same benchmark ids, same iteration counts).
# Deliberately NO gating on absolute times — CI machines are too noisy for
# that; regression gating (--baseline/--gate) is a manual/local workflow.
echo "==> perf-smoke (fedperf --quick: schema + determinism, no time gating)"
PERF_TMP="$(mktemp -d)"
trap 'rm -rf "$PERF_TMP"' EXIT
cargo build -q --release -p fedprox-perfbench
./target/release/fedperf --quick --name smoke-a --out "$PERF_TMP" >/dev/null
./target/release/fedperf --quick --name smoke-b --out "$PERF_TMP" >/dev/null
./target/release/fedperf --validate "$PERF_TMP/BENCH_smoke-a.json" "$PERF_TMP/BENCH_smoke-b.json"
./target/release/fedperf --check-determinism \
    "$PERF_TMP/BENCH_smoke-a.json" "$PERF_TMP/BENCH_smoke-b.json"

# kernel-diff: bitwise + speed gate over the tiled kernel rewrite. The
# cpu_reference differential suite proves tiled == naive bitwise (and
# parallel == sequential); the root determinism suite extends that to
# full networked runs. The fedperf baseline gate then catches kernel
# *speed* regressions against the committed BENCH_seed.json (recorded
# from the tiled kernels). The default ratio is deliberately loose
# (3.0, override with FEDPERF_GATE_RATIO): back-to-back identical runs
# on shared hosts swing 2-3x, so a tight gate would be flakier than it
# is protective — tight gating (e.g. 1.25) stays a manual/local
# workflow on a quiet machine.
echo "==> kernel-diff (cpu_reference suite + fedperf --baseline --gate)"
cargo test -q --release -p fedprox-tensor --test cpu_reference
cargo test -q --release -p fedprox --test determinism
./target/release/fedperf --baseline BENCH_seed.json --gate "${FEDPERF_GATE_RATIO:-3.0}"

# fedscope-smoke: a tiny armed run writes a --health JSONL, `fedscope
# check` validates its schema, the report renders, and a self-diff must
# be regression-free (exit 0). Reuses the perf-smoke tmp dir + trap.
echo "==> fedscope-smoke (armed tiny run -> schema check -> self-diff)"
cat > "$PERF_TMP/fedscope_spec.json" <<'EOF'
{
  "dataset": {"kind": "synthetic", "alpha": 1.0, "beta": 1.0},
  "model": {"kind": "logistic"},
  "algorithms": ["fedproxvr-svrg"],
  "devices": 3, "min_size": 30, "max_size": 60,
  "beta": 5.0, "tau": 5, "mu": 0.5, "batch": 8, "rounds": 4
}
EOF
cargo build -q --release -p fedprox-bench --features telemetry
cargo build -q --release -p fedprox-telemetry
./target/release/fedrun "$PERF_TMP/fedscope_spec.json" \
    --health "$PERF_TMP/health.jsonl" >/dev/null
./target/release/fedscope check "$PERF_TMP/health.jsonl"
./target/release/fedscope report "$PERF_TMP/health.jsonl" >/dev/null
./target/release/fedscope diff "$PERF_TMP/health.jsonl" "$PERF_TMP/health.jsonl" >/dev/null

# fedresil-smoke: a short seeded faulted scenario (device crash at round 3
# plus a 20% flaky link) must complete, record exactly the expected
# participation (1 crashed device, 0 skipped rounds — enforced by the
# --expect-* flags), and produce a health stream `fedscope check` accepts.
# Reuses the telemetry-enabled bench build from the fedscope stage.
echo "==> fedresil-smoke (seeded faulted scenario -> expected participation)"
./target/release/fedresil --devices 4 --rounds 6 --seed 11 \
    --crash 1:3 --flaky 2:0.2:1:6 \
    --health "$PERF_TMP/resil_health.jsonl" \
    --expect-crashed 1 --expect-skipped 0 >/dev/null
./target/release/fedscope check "$PERF_TMP/resil_health.jsonl"

# fedprof-smoke: two identical-seed armed fig2 runs write --prof span-tree
# profiles; `fedprof report` must render a ≥4-level tree, `fedprof flame`
# must emit well-formed collapsed stacks, and `fedprof agg
# --check-deterministic` must find the deterministic columns (activation
# counts, alloc bytes/calls) bitwise-identical across the two runs —
# wall-clock columns are expected to differ and are reported as medians.
# Reuses the telemetry-enabled bench build from the fedscope stage.
echo "==> fedprof-smoke (two same-seed --prof runs -> report/flame -> zero-delta agg)"
./target/release/fig2_convex --scale small --rounds 3 --seed 7 \
    --prof "$PERF_TMP/prof_a.jsonl" >/dev/null
./target/release/fig2_convex --scale small --rounds 3 --seed 7 \
    --prof "$PERF_TMP/prof_b.jsonl" >/dev/null
./target/release/fedprof report "$PERF_TMP/prof_a.jsonl" | grep -q "local_solve" \
    || { echo "fedprof-smoke: report missing the local_solve path"; exit 1; }
./target/release/fedprof flame "$PERF_TMP/prof_a.jsonl" > "$PERF_TMP/prof_a.flame"
grep -Eq '^([^ ;]+;)+[^ ;]+ [0-9]+$' "$PERF_TMP/prof_a.flame" \
    || { echo "fedprof-smoke: flame output has no nested collapsed stack"; exit 1; }
./target/release/fedprof agg "$PERF_TMP/prof_a.jsonl" "$PERF_TMP/prof_b.jsonl" \
    --check-deterministic >/dev/null

# fedobs-smoke: the correlation layer end to end. A faulted fedresil run
# (device 1 crashes at round 3, quorum demands all 3 devices, so every
# later round skips) streams the obs feed; the flight recorder must fire
# and `fedobs postmortem` must blame the crashed device. Then two
# same-seed runs must carry identical run-ledger headers (`fedobs ledger
# diff` exits 0 and prints "identical"). Reuses the telemetry-enabled
# bench build from the fedscope stage.
echo "==> fedobs-smoke (faulted --obs run -> postmortem blame -> ledger self-diff)"
cargo build -q --release -p fedprox-obs
./target/release/fedresil --devices 3 --rounds 6 --seed 11 \
    --crash 1:3 --quorum-count 3 \
    --obs "$PERF_TMP/obs_a.jsonl" >/dev/null
./target/release/fedobs postmortem "$PERF_TMP/obs_a.jsonl" \
    | grep -q "quorum_skip at round 3 (device 1)" \
    || { echo "fedobs-smoke: postmortem did not blame the crashed device"; exit 1; }
./target/release/fedresil --devices 3 --rounds 6 --seed 11 \
    --crash 1:3 --quorum-count 3 \
    --obs "$PERF_TMP/obs_b.jsonl" >/dev/null
./target/release/fedobs ledger diff "$PERF_TMP/obs_a.jsonl" "$PERF_TMP/obs_b.jsonl" \
    | grep -q "^identical" \
    || { echo "fedobs-smoke: same-seed run ledgers differ"; exit 1; }
./target/release/fedobs critpath "$PERF_TMP/obs_a.jsonl" >/dev/null

# fedsim-smoke: the event-driven backend at population scale. Two
# same-seed 100k-device power-law runs sampling K=32 per round must
# finish with per-round allocation bounded by the active set (not the
# population — the --max-round-alloc-mib gate uses the counting
# allocator baked into the telemetry bench build), sample exactly 32
# devices every round (--expect-sampled), and stream obs feeds whose
# run ledgers are bitwise-identical. The eq. (19) critical path must
# reconstruct cleanly from a sampled round's sparse device legs.
# Device 28563 is sampled in round 1 only (seed 29), so crashing it
# exercises stable-id fault addressing on compact participation
# records: the crash must still be counted although the final round
# never samples the device. Reuses the telemetry-enabled bench build
# from the fedscope stage.
echo "==> fedsim-smoke (two same-seed 100k-device sampled runs -> alloc bound + ledger diff)"
./target/release/fedsim --devices 100000 --rounds 4 --seed 29 --sample k:32 \
    --crash 28563:1 --expect-crashed 1 \
    --expect-sampled 32 --max-round-alloc-mib 64 \
    --obs "$PERF_TMP/sim_a.jsonl" >/dev/null
./target/release/fedsim --devices 100000 --rounds 4 --seed 29 --sample k:32 \
    --crash 28563:1 --expect-crashed 1 \
    --expect-sampled 32 --max-round-alloc-mib 64 \
    --obs "$PERF_TMP/sim_b.jsonl" >/dev/null
./target/release/fedobs ledger diff "$PERF_TMP/sim_a.jsonl" "$PERF_TMP/sim_b.jsonl" \
    | grep -q "^identical" \
    || { echo "fedsim-smoke: same-seed sampled-run ledgers differ"; exit 1; }
./target/release/fedobs critpath "$PERF_TMP/sim_a.jsonl" >/dev/null

echo "CI green."
