//! Sparse FedProxVR: the paper's surrogate extended with an L1 term,
//! `h_s(w) = μ/2 ‖w − w̄‖² + l1 ‖w‖₁` — still closed-form proximable, so
//! Algorithm 1 runs unchanged (this is exactly the composite, non-smooth
//! setting the ProxSVRG/ProxSARAH literature the paper builds on was
//! designed for).
//!
//! Scenario: only 10 of 60 features are informative; the L1 term should
//! recover a sparse global model without hurting accuracy much.
//!
//! ```sh
//! cargo run --release --example sparse_federated
//! ```

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::data::split::split_federation;
use fedprox::data::synthetic::device_rng;
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::prelude::*;
use fedprox::tensor::Matrix;
use rand::Rng;

/// Build shards where the labels depend only on the first `informative`
/// features; the rest are pure noise.
fn sparse_task(devices: usize, samples: usize, dim: usize, informative: usize) -> Vec<Dataset> {
    (0..devices)
        .map(|id| {
            let mut rng = device_rng(77, id as u64);
            let mut f = Matrix::zeros(samples, dim);
            let mut y = Vec::with_capacity(samples);
            for i in 0..samples {
                let row = f.row_mut(i);
                for v in row.iter_mut() {
                    *v = rng.gen_range(-1.0..1.0);
                }
                // Two classes split by a sparse hyperplane (plus a small
                // device-specific tilt — heterogeneity).
                let tilt = 0.2 * (id as f64 - devices as f64 / 2.0) / devices as f64;
                let score: f64 =
                    row[..informative].iter().enumerate().map(|(j, &v)| {
                        let coef = if j % 2 == 0 { 1.0 } else { -1.0 };
                        coef * v
                    }).sum::<f64>() + tilt;
                y.push(if score > 0.0 { 1.0 } else { 0.0 });
            }
            Dataset::new(f, y, 2)
        })
        .collect()
}

fn main() {
    let dim = 60;
    let informative = 10;
    let shards = sparse_task(8, 150, dim, informative);
    let (train, test) = split_federation(&shards, 7);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = MultinomialLogistic::new(dim, 2);

    println!(
        "{:>8} {:>12} {:>12} {:>16}",
        "l1", "accuracy", "final loss", "nonzero weights"
    );
    for l1 in [0.0, 0.01, 0.05, 0.15] {
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_beta(4.0)
            .with_smoothness(2.0)
            .with_tau(15)
            .with_mu(0.1)
            .with_l1(l1)
            .with_batch_size(8)
            .with_rounds(60)
            .with_eval_every(60)
            .with_runner(RunnerKind::Parallel)
            .with_seed(7);
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        let acc = h.records.last().unwrap().test_accuracy;
        let loss = h.final_loss().unwrap_or(f64::NAN);
        let nonzero = h.final_model.iter().filter(|v| v.abs() > 1e-6).count();
        println!(
            "{l1:>8} {:>11.1}% {loss:>12.4} {nonzero:>11}/{}",
            acc * 100.0,
            h.final_model.len()
        );
    }
    println!("\nLarger l1 zeroes out more of the {}-dim model while the task only", dim);
    println!("needs {informative} informative features — sparsity costs little accuracy.");
}
