//! Uplink compression study: what happens to FedProxVR when the local
//! models are Top-K sparsified or quantised before aggregation — the
//! communication-efficiency direction the paper cites (Konečný et al.).
//!
//! Built from the library's public pieces (per-round `runner` + manual
//! aggregation) to show the training loop is composable.
//!
//! ```sh
//! cargo run --release --example compression_study
//! ```

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::core::{eval, runner, server};
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::models::{LossModel, MultinomialLogistic};
use fedprox::net::Compressor;
use fedprox::prelude::*;

fn main() {
    let shards = generate(
        &SyntheticConfig { alpha: 1.0, beta: 1.0, seed: 13, ..Default::default() },
        &[120, 90, 150, 80, 110, 100],
    );
    let (train, test) = split_federation(&shards, 13);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = MultinomialLogistic::new(60, 10);
    let weights: Vec<f64> = {
        let sizes: Vec<usize> = devices.iter().map(Device::samples).collect();
        server::weights_from_sizes(&sizes)
    };
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(10)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_seed(13);
    let rounds = 40;
    let dim = model.dim();

    let schemes: [(&str, Compressor); 4] = [
        ("raw f64", Compressor::None),
        ("top-10%", Compressor::TopK { k: dim / 10 }),
        ("top-1%", Compressor::TopK { k: dim / 100 }),
        ("8-bit quant", Compressor::Uniform { bits: 8 }),
    ];

    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "uplink", "bytes/device", "train loss", "test acc"
    );
    for (name, scheme) in schemes {
        let mut global = model.init_params(13);
        for round in 0..rounds {
            let participants: Vec<usize> = (0..devices.len()).collect();
            let updates = runner::run_round_subset(
                &model,
                &devices,
                &participants,
                &global,
                &cfg,
                round,
                true,
                None,
            )
            .expect("round");
            // Compress each uplink *update* (w_n − w̄): deltas are what
            // sparsification tolerates — most coordinates barely move in
            // one round, so Top-K on the delta loses little, whereas
            // Top-K on the raw model would zero out 90% of the weights.
            let recovered: Vec<Vec<f64>> = updates
                .iter()
                .map(|u| {
                    let delta: Vec<f64> =
                        u.w.iter().zip(&global).map(|(w, g)| w - g).collect();
                    let back = Compressor::decompress(&scheme.compress(&delta));
                    back.iter().zip(&global).map(|(d, g)| g + d).collect()
                })
                .collect();
            let locals: Vec<(&[f64], f64)> = recovered
                .iter()
                .enumerate()
                .map(|(i, w)| (w.as_slice(), weights[i]))
                .collect();
            let mut agg = vec![0.0; dim];
            server::aggregate(&locals, &mut agg);
            global = agg;
        }
        let loss = eval::global_loss(&model, &devices, &global);
        let acc = eval::test_accuracy(&model, &test, &global);
        println!(
            "{name:<12} {:>14} {loss:>12.4} {:>11.1}%",
            scheme.wire_bytes(dim),
            acc * 100.0
        );
    }
    println!("\nTop-10% and 8-bit quantisation cut uplink bytes ~7-8x with little");
    println!("accuracy cost; top-1% is aggressive enough to slow convergence.");
}
