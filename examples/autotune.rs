//! Hands-free parameter selection: estimate the problem constants from
//! data, measure heterogeneity, solve the paper's training-time problem
//! (23) for your deployment's γ, and train with the result — the whole
//! Section 4.3 pipeline in one call.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::core::autotune::{autotune, AutoTuneRequest};
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::models::MultinomialLogistic;
use fedprox::prelude::*;

fn main() {
    let shards = generate(
        &SyntheticConfig { alpha: 1.0, beta: 1.0, seed: 99, ..Default::default() },
        &[150, 90, 200, 120, 80],
    );
    let (train, test) = split_federation(&shards, 99);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = MultinomialLogistic::new(60, 10);

    // Deployment: local compute is 1% the cost of a round trip.
    let req = AutoTuneRequest { gamma: 1e-2, tau_cap: 30, seed: 99, ..Default::default() };
    let report = autotune(&model, &devices, &req).expect("tuning failed");

    println!("estimated constants:");
    println!(
        "  L_max = {:.2}, L_typical = {:.2}, lambda = {:.4}",
        report.constants.smoothness_max,
        report.constants.smoothness_typical,
        report.constants.nonconvexity
    );
    println!("  measured sigma_bar^2 = {:.3}", report.sigma_bar_sq);
    println!("problem (23) optimum at gamma = {}:", req.gamma);
    println!(
        "  beta* = {:.2}, mu* = {:.2}, theta* = {:.3}, tau* = {:.0}{}, Theta* = {:.4}",
        report.optimum.beta,
        report.optimum.mu,
        report.optimum.theta,
        report.optimum.tau,
        if report.tau_clipped { " (clipped)" } else { "" },
        report.optimum.capital_theta
    );

    let cfg = report
        .config
        .clone()
        .with_rounds(40)
        .with_eval_every(10)
        .with_runner(RunnerKind::Parallel);
    println!(
        "\ntraining FedProxVR(SVRG) with the tuned config (tau = {}, eta = {:.4}):",
        cfg.tau,
        cfg.eta()
    );
    let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    for r in &h.records {
        println!(
            "  round {:>3}: loss {:.4}, accuracy {:.1}%",
            r.round,
            r.train_loss,
            r.test_accuracy * 100.0
        );
    }
    assert!(!h.diverged());
}
