//! Bring your own model: anything implementing [`LossModel`] can be
//! trained federatedly. Here — a robust (Huber-loss) regression model not
//! shipped by `fedprox-models`, trained with FedProxVR on devices whose
//! data contains device-specific outliers.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::data::Dataset;
use fedprox::models::LossModel;
use fedprox::prelude::*;
use fedprox::tensor::{vecops, Matrix};

/// Linear model with Huber loss: quadratic near zero, linear in the
/// tails — L-smooth (L = max‖x‖²), satisfying the paper's Assumption 1.
struct HuberRegression {
    features: usize,
    delta: f64,
}

impl LossModel for HuberRegression {
    fn dim(&self) -> usize {
        self.features
    }

    fn init_params(&self, _seed: u64) -> Vec<f64> {
        vec![0.0; self.features]
    }

    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        let r = vecops::dot(w, data.x(i)) - data.y(i);
        if r.abs() <= self.delta {
            r * r / 2.0
        } else {
            self.delta * (r.abs() - self.delta / 2.0)
        }
    }

    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        let r = vecops::dot(w, data.x(i)) - data.y(i);
        let d = r.clamp(-self.delta, self.delta); // Huber derivative
        vecops::axpy(scale * d, data.x(i), out);
    }

    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        vecops::dot(w, x)
    }
}

fn main() {
    // True model y = 3 x0 − 2 x1; each device's data adds its own outlier
    // regime (heterogeneity!).
    let true_w = [3.0, -2.0];
    let devices: Vec<Device> = (0..6)
        .map(|id| {
            let n = 80;
            let mut f = Matrix::zeros(n, 2);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let x0 = ((i + id * 13) as f64 * 0.41).sin();
                let x1 = ((i + id * 7) as f64 * 0.77).cos();
                f.row_mut(i).copy_from_slice(&[x0, x1]);
                let clean = true_w[0] * x0 + true_w[1] * x1;
                // 10% outliers, direction depending on the device.
                let outlier = if i % 10 == 0 {
                    if id % 2 == 0 {
                        8.0
                    } else {
                        -8.0
                    }
                } else {
                    0.0
                };
                y.push(clean + outlier);
            }
            Device::new(id, Dataset::new(f, y, 0))
        })
        .collect();
    let test = devices[0].data.clone();

    let model = HuberRegression { features: 2, delta: 1.0 };
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
        .with_beta(4.0)
        .with_smoothness(1.0)
        .with_tau(15)
        .with_mu(0.2)
        .with_batch_size(8)
        .with_rounds(60)
        .with_eval_every(20)
        .with_runner(RunnerKind::Parallel)
        .with_seed(3);
    let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");

    println!("custom Huber model under FedProxVR(SARAH):");
    for r in &h.records {
        println!("  round {:>3}: train loss {:.4}", r.round, r.train_loss);
    }

    // Recover the fitted weights by re-running one local solve chain —
    // or simply report the loss trend; the point is the trait is enough.
    println!(
        "\nloss fell from {:.3} to {:.3}; outliers bounded by the Huber tails",
        h.records.first().unwrap().train_loss,
        h.final_loss().unwrap()
    );
}
