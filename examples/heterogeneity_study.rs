//! Heterogeneity study: how the data-divergence σ̄² of Assumption 1
//! impacts convergence, and how the proximal penalty μ counteracts it
//! (Remark 2 of the paper).
//!
//! Sweeps the Synthetic(α, β) heterogeneity knobs, measures the empirical
//! σ̄², the theoretical maximum local accuracy θ_max, and the realised
//! convergence of FedProxVR with and without the proximal term.
//!
//! ```sh
//! cargo run --release --example heterogeneity_study
//! ```

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::core::{eval, theory};
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::models::{LossModel, MultinomialLogistic};
use fedprox::prelude::*;

fn main() {
    let model = MultinomialLogistic::new(60, 10);
    let sizes = vec![100usize; 10];

    println!(
        "{:>10} {:>9} {:>10} | {:>12} {:>12} | {:>12} {:>12}",
        "alpha=beta", "sigma^2", "theta_max", "stable mu=0", "stable mu=1", "aggr. mu=0", "aggr. mu=1"
    );
    for het in [0.0, 0.5, 1.0, 2.0] {
        let cfg_data = SyntheticConfig {
            alpha: het,
            beta: het,
            iid: het == 0.0,
            seed: 11,
            ..Default::default()
        };
        let shards = generate(&cfg_data, &sizes);
        let (train, test) = split_federation(&shards, 11);
        let devices: Vec<Device> =
            train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();

        // Empirical heterogeneity at the initial model.
        let w0 = model.init_params(11);
        let sigma_sq = eval::empirical_sigma_bar_sq(&model, &devices, &w0).unwrap_or(f64::NAN);
        let theta_max = theory::theta_max(sigma_sq);

        // Two step-size regimes: a stable one (Lemma 1-ish) where the
        // proximal term only adds drag, and an aggressive one where it is
        // what keeps the aggregate from blowing up (the Fig. 4 regime).
        let run = |mu: f64, smoothness: f64| -> f64 {
            let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
                .with_beta(4.0)
                .with_smoothness(smoothness)
                .with_tau(20)
                .with_mu(mu)
                .with_batch_size(8)
                .with_rounds(40)
                .with_eval_every(40)
                .with_runner(RunnerKind::Parallel)
                .with_seed(11);
            FederatedTrainer::new(&model, &devices, &test, cfg)
                .run()
                .expect("run")
                .final_loss()
                .unwrap_or(f64::INFINITY)
        };
        println!(
            "{:>10} {:>9.3} {:>10.3} | {:>12.4} {:>12.4} | {:>12.4} {:>12.4}",
            het,
            sigma_sq,
            theta_max,
            run(0.0, 2.0),
            run(1.0, 2.0),
            run(0.0, 0.25),
            run(1.0, 0.25),
        );
    }
    println!("\nAs heterogeneity grows, sigma^2 rises and the admissible theta_max of");
    println!("Remark 2(1) shrinks. In the stable step-size regime the proximal term");
    println!("only adds drag (mu=1 slightly behind mu=0 — Remark 2(2)'s trade-off);");
    println!("in the aggressive regime it is what keeps the loss from exploding");
    println!("(right pair of columns — the Fig. 4 effect).");
}
