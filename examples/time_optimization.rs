//! Training-time optimization (Section 4.3 of the paper): given a
//! deployment's compute/communication cost ratio γ = d_cmp/d_com, find
//! the (β, μ) that minimise total training time, then *validate* the
//! choice by running the networked simulation with those parameters and
//! comparing simulated wall-clock times.
//!
//! ```sh
//! cargo run --release --example time_optimization
//! ```

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::core::config::{NetRunnerOptions, RunnerKind};
use fedprox::core::paramopt;
use fedprox::core::theory::TheoryParams;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::models::MultinomialLogistic;
use fedprox::net::{LinkSpec, NetOptions};
use fedprox::prelude::*;

fn main() {
    // Deployment model: communication is 100x the per-iteration compute.
    let d_com = 0.5; // seconds per model exchange
    let d_cmp = 0.005; // seconds per local iteration
    let gamma = d_cmp / d_com;

    // 1. Solve problem (23) for this gamma.
    let constants =
        TheoryParams { smoothness: 1.0, lambda: 0.5, mu: f64::NAN, sigma_bar_sq: 1.0 };
    let opt = paramopt::solve(&constants, gamma).expect("feasible optimum");
    println!("gamma = {gamma:.4}");
    println!(
        "optimal parameters: beta* = {:.2}, mu* = {:.2}, theta* = {:.3}, tau* = {:.0}, Theta* = {:.4}",
        opt.beta, opt.mu, opt.theta, opt.tau, opt.capital_theta
    );

    // 2. Validate in the networked simulation: the optimal tau against a
    //    deliberately communication-wasteful tau (fewer local steps →
    //    more rounds for the same accuracy target).
    let sizes = [150, 100, 120, 90, 130, 80];
    let shards = generate(
        &SyntheticConfig { alpha: 1.0, beta: 1.0, seed: 7, ..Default::default() },
        &sizes,
    );
    let (train, test) = split_federation(&shards, 7);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = MultinomialLogistic::new(60, 10);

    let target_accuracy = 0.70;
    // The theory's tau* assumes the full convergence horizon; for this
    // small validation we cap it.
    let tau_opt = (opt.tau as usize).min(40);
    for (label, tau) in [("optimized tau", tau_opt), ("tau = 2 (chatty)", 2)] {
        let net = NetOptions {
            downlink: LinkSpec::constant(d_com / 2.0),
            uplink: LinkSpec::constant(d_com / 2.0),
            ..Default::default()
        };
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_beta(5.0)
            .with_smoothness(3.0)
            .with_tau(tau)
            .with_mu(0.5)
            .with_batch_size(8)
            .with_rounds(120)
            .with_eval_every(2)
            .with_seed(7)
            .with_runner(RunnerKind::Network(NetRunnerOptions {
                net,
                // Calibrate so one local iteration costs ~d_cmp.
                sec_per_grad_eval: d_cmp / 16.0,
            }));
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        let reached = h
            .records
            .iter()
            .find(|r| r.test_accuracy >= target_accuracy)
            .map(|r| (r.round, r.sim_time));
        match reached {
            Some((round, t)) => println!(
                "{label:>18}: reached {:.0}% accuracy at round {round}, simulated {t:.1}s",
                target_accuracy * 100.0
            ),
            None => println!(
                "{label:>18}: did not reach {:.0}% in budget (final acc {:.1}%, {:.1}s)",
                target_accuracy * 100.0,
                h.best_accuracy() * 100.0,
                h.total_sim_time
            ),
        }
    }
    println!("\nWith expensive communication (small gamma), running more local");
    println!("iterations per round reaches the target in less simulated time —");
    println!("the trade-off Fig. 1 of the paper quantifies.");
}
