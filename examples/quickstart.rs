//! Quickstart: train FedProxVR (SARAH) on a heterogeneous synthetic
//! federation and compare it against FedAvg, in ~30 lines of library use.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! With `--features telemetry`, pass `--trace PATH` to also record a
//! fedtrace JSONL event trace of the run and print its summary tables,
//! and/or `--prof PATH` to record a fedprof span-tree profile (inspect
//! with `fedprof report PATH`).

// Example code: panicking with context keeps the walkthrough focused
// on the federated-learning API rather than error plumbing.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox::prelude::*;
use fedprox::core::config::FedConfig as Cfg;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::models::MultinomialLogistic;

/// Minimal hand-rolled scan for `--flag PATH` (the example deliberately
/// has no argument-parsing dependency).
fn path_from_args(flag: &str) -> Option<String> {
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == flag {
            return argv.next();
        }
    }
    None
}

fn main() {
    let trace_path = path_from_args("--trace");
    let prof_path = path_from_args("--prof");
    #[cfg(feature = "telemetry")]
    if trace_path.is_some() || prof_path.is_some() {
        fedprox_telemetry::collector::arm();
    }
    #[cfg(not(feature = "telemetry"))]
    for (flag, requested) in
        [("--trace", trace_path.is_some()), ("--prof", prof_path.is_some())]
    {
        if requested {
            eprintln!(
                "warning: {flag} ignored: rebuild with `--features telemetry` to record it"
            );
        }
    }

    // 1. A heterogeneous federation: 8 devices, power-law-ish sizes,
    //    device-specific data distributions (Synthetic(1,1) of the paper).
    let sizes = [120, 80, 200, 60, 150, 90, 110, 70];
    let shards = generate(&SyntheticConfig { alpha: 1.0, beta: 1.0, seed: 42, ..Default::default() }, &sizes);
    let (train, test) = split_federation(&shards, 42);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();

    // 2. The convex model of the paper's experiments.
    let model = MultinomialLogistic::new(60, 10);

    // 3. Train both algorithms with the same budget.
    for algorithm in [Algorithm::FedAvg, Algorithm::FedProxVr(EstimatorKind::Sarah)] {
        let cfg: Cfg = FedConfig::new(algorithm)
            .with_beta(5.0) // step size eta = 1/(beta * L)
            .with_smoothness(3.0)
            .with_tau(10) // local iterations per round
            .with_mu(0.5) // proximal penalty (ignored by FedAvg)
            .with_batch_size(8)
            .with_rounds(60)
            .with_eval_every(10)
            .with_runner(RunnerKind::Parallel)
            .with_seed(42);
        let history = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");

        println!("== {}", algorithm.name());
        for r in &history.records {
            println!(
                "  round {:>3}: train loss {:.4}, test accuracy {:.1}%",
                r.round,
                r.train_loss,
                r.test_accuracy * 100.0
            );
        }
        println!(
            "  best accuracy {:.1}%  (diverged: {})\n",
            history.best_accuracy() * 100.0,
            history.diverged()
        );
    }

    #[cfg(feature = "telemetry")]
    if trace_path.is_some() || prof_path.is_some() {
        use fedprox_telemetry::event::Event;
        use fedprox_telemetry::{collector, jsonl, summary};
        let events = collector::drain();
        collector::disarm();
        if let Some(path) = trace_path {
            match std::fs::write(&path, jsonl::to_jsonl(&events)) {
                Ok(()) => println!("trace: {} events written to {path}", events.len()),
                Err(e) => eprintln!("trace: failed to write {path}: {e}"),
            }
            print!("{}", summary::TelemetryReport::from_events(&events).render(10));
        }
        if let Some(path) = prof_path {
            let prof: Vec<Event> = events
                .iter()
                .filter(|e| matches!(e, Event::PathStat { .. } | Event::TraceTruncated { .. }))
                .cloned()
                .collect();
            match std::fs::write(&path, jsonl::to_jsonl(&prof)) {
                Ok(()) => println!(
                    "prof: {} span-tree paths written to {path} \
                     (inspect with `fedprof report {path}`)",
                    prof.len()
                ),
                Err(e) => eprintln!("prof: failed to write {path}: {e}"),
            }
        }
    }
    #[cfg(not(feature = "telemetry"))]
    drop((trace_path, prof_path));
}
