//! Tier-1 conformance gate: the workspace sources must satisfy every
//! fedlint rule (R1–R5). Violations fail this test with the same
//! `rule-id: file:line: message` lines the `fedlint` binary prints, so
//! a red run tells you exactly what to fix (or to justify with a
//! `// fedlint: allow(<rule>) — reason` annotation).
//!
//! A second test runs the full AST/call-graph engine (D/P/F rules) and
//! gates it against the committed `LINT_BASELINE.json` — the same check
//! `ci.sh` runs via `fedlint check --gate`.

use fedprox_conformance::engine::{self, Baseline};
use fedprox_conformance::check_workspace;
use std::path::Path;

#[test]
fn workspace_is_fedlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = check_workspace(root).expect("walk workspace sources");
    let mut lines = String::new();
    for v in report.bad_annotations.iter().chain(&report.violations) {
        lines.push_str(&format!("{v}\n"));
    }
    assert!(
        report.is_clean(),
        "fedlint found {} violation(s) and {} malformed annotation(s):\n{lines}",
        report.violations.len(),
        report.bad_annotations.len()
    );
    // The escape hatch must stay an exception, not the norm: every
    // allowance carries a written justification, and the count is pinned
    // so silently accumulating new ones needs a conscious bump here.
    assert!(
        report.allowed.len() <= 16,
        "annotated allowances grew to {} — review whether the new sites \
         really cannot propagate errors",
        report.allowed.len()
    );
    for site in &report.allowed {
        assert!(
            !site.reason.trim().is_empty(),
            "empty allow reason at {}:{}",
            site.file,
            site.line
        );
    }
}

#[test]
fn workspace_passes_the_committed_lint_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = engine::analyze(root).expect("analyze workspace");
    let text = std::fs::read_to_string(root.join("LINT_BASELINE.json"))
        .expect("read LINT_BASELINE.json (regenerate with `fedlint baseline --out`)");
    let baseline = Baseline::parse(&text).expect("parse committed baseline");
    let result = engine::gate(&analysis, &baseline);
    assert!(
        result.ok(),
        "fedlint gate breached the committed baseline — either fix the \
         regression or consciously re-baseline with `cargo run -p \
         fedprox-conformance --bin fedlint -- baseline --out \
         LINT_BASELINE.json`:\n{}",
        result.breaches.join("\n")
    );
    // The committed baseline must also stay tight: a budget above the
    // current count would let regressions land unnoticed until it fills.
    let current = Baseline::from_analysis(&analysis);
    assert_eq!(
        current.emit(),
        text.trim_end().to_string() + "\n",
        "LINT_BASELINE.json is stale (budgets differ from the live \
         analysis) — regenerate it so the gate stays exact"
    );
}
