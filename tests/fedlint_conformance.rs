//! Tier-1 conformance gate: the workspace sources must satisfy every
//! fedlint rule (R1–R5). Violations fail this test with the same
//! `rule-id: file:line: message` lines the `fedlint` binary prints, so
//! a red run tells you exactly what to fix (or to justify with a
//! `// fedlint: allow(<rule>) — reason` annotation).

use fedprox_conformance::check_workspace;
use std::path::Path;

#[test]
fn workspace_is_fedlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = check_workspace(root).expect("walk workspace sources");
    let mut lines = String::new();
    for v in report.bad_annotations.iter().chain(&report.violations) {
        lines.push_str(&format!("{v}\n"));
    }
    assert!(
        report.is_clean(),
        "fedlint found {} violation(s) and {} malformed annotation(s):\n{lines}",
        report.violations.len(),
        report.bad_annotations.len()
    );
    // The escape hatch must stay an exception, not the norm: every
    // allowance carries a written justification, and the count is pinned
    // so silently accumulating new ones needs a conscious bump here.
    assert!(
        report.allowed.len() <= 16,
        "annotated allowances grew to {} — review whether the new sites \
         really cannot propagate errors",
        report.allowed.len()
    );
    for site in &report.allowed {
        assert!(
            !site.reason.trim().is_empty(),
            "empty allow reason at {}:{}",
            site.file,
            site.line
        );
    }
}
