//! Exact-count telemetry regression: for a small deterministic run the
//! instrumentation must report *precisely* the work the algorithm
//! performs — R round spans, R·N local solves, R·N·τ inner steps,
//! R·N·(τ+1) proximal applications — not merely "some events". Any
//! off-by-one here means an instrumentation site moved, double-fires, or
//! silently stopped firing.
//!
//! The whole file is gated on the `telemetry` feature; without it the
//! macros compile to no-ops and there is nothing to count.

#![cfg(feature = "telemetry")]
// Module-level helpers below sit outside #[test] fns, where
// clippy.toml's allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use fedprox::core::config::NetRunnerOptions;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::prelude::*;
use fedprox_telemetry::event::Event;
use fedprox_telemetry::{collector, jsonl};

/// The collector is process-global; these tests arm/reset/drain it, so
/// they must not interleave.
static COLLECTOR_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const DEVICES: usize = 3;
const ROUNDS: usize = 4;
const TAU: usize = 5;
const EVAL_EVERY: usize = 2;

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards = generate(&SyntheticConfig { seed, ..Default::default() }, &[50, 70, 40]);
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

fn cfg(runner: RunnerKind) -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(TAU)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(ROUNDS)
        .with_eval_every(EVAL_EVERY)
        .with_seed(11)
        .with_runner(runner)
}

/// Arm the collector, run one training job, and return (history, events).
fn traced_run(runner: RunnerKind) -> (History, Vec<Event>) {
    let (devices, test) = federation(9);
    let model = MultinomialLogistic::new(60, 10);
    collector::reset();
    collector::arm();
    let h = FederatedTrainer::new(&model, &devices, &test, cfg(runner)).run().expect("run");
    let events = collector::drain();
    collector::disarm();
    (h, events)
}

fn counter(events: &[Event], which: &str) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            Event::Counter { name, value } if name == which => Some(*value),
            _ => None,
        })
        .unwrap_or_else(|| panic!("counter {which} missing from trace"))
}

fn span_count(events: &[Event], which_layer: &str, which_name: &str) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            Event::SpanStat { layer, name, count, .. }
                if layer == which_layer && name == which_name =>
            {
                Some(*count)
            }
            _ => None,
        })
        .unwrap_or_else(|| panic!("span {which_layer}/{which_name} missing from trace"))
}

#[test]
fn sequential_run_produces_exact_aggregate_counts() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (h, events) = traced_run(RunnerKind::Sequential);
    assert!(!h.diverged());

    let r = ROUNDS as u64;
    let rn = (ROUNDS * DEVICES) as u64;
    // One round span per round; one device-update span and one local
    // solve (with its anchor full gradient) per device per round.
    assert_eq!(span_count(&events, "core", "round"), r);
    assert_eq!(span_count(&events, "core", "device_update"), rn);
    assert_eq!(span_count(&events, "optim", "local_solve"), rn);
    assert_eq!(counter(&events, "optim.anchor_full_grad"), rn);
    // τ inner steps per solve; τ+1 prox applications (lines 4 and 5–9 of
    // Algorithm 1: the anchor step plus one per inner iteration).
    assert_eq!(counter(&events, "optim.inner_step"), rn * TAU as u64);
    assert_eq!(counter(&events, "optim.prox_apply"), rn * (TAU as u64 + 1));
    // Round 0 baseline + one evaluation per eval_every boundary.
    assert_eq!(span_count(&events, "core", "evaluate"), h.records.len() as u64);
    // The estimator's own gradient accounting is the History's: the
    // counter must agree bit-for-bit with the final cumulative total.
    assert_eq!(
        counter(&events, "optim.grad_evals"),
        h.records.last().expect("no records").grad_evals,
    );
}

#[test]
fn parallel_and_sequential_runs_count_identically() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_, seq) = traced_run(RunnerKind::Sequential);
    let (_, par) = traced_run(RunnerKind::Parallel);
    for name in ["optim.inner_step", "optim.prox_apply", "optim.anchor_full_grad", "optim.grad_evals"] {
        assert_eq!(counter(&seq, name), counter(&par, name), "{name} drifted across runners");
    }
    assert_eq!(
        span_count(&seq, "core", "device_update"),
        span_count(&par, "core", "device_update"),
    );
}

#[test]
fn networked_run_emits_per_round_simulation_events() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (h, events) = traced_run(RunnerKind::Network(NetRunnerOptions::default()));
    assert!(!h.diverged());

    let r = ROUNDS as u64;
    let rn = (ROUNDS * DEVICES) as u64;
    let device_rounds =
        events.iter().filter(|e| matches!(e, Event::DeviceRound { .. })).count() as u64;
    let byte_events = events.iter().filter(|e| matches!(e, Event::Bytes { .. })).count() as u64;
    let round_ends = events.iter().filter(|e| matches!(e, Event::RoundEnd { .. })).count() as u64;
    assert_eq!(device_rounds, rn, "one DeviceRound per device per round");
    assert_eq!(byte_events, 2 * r, "down + up traffic per round");
    assert_eq!(round_ends, r, "one RoundEnd per round");

    // DeviceRound timings are virtual-clock-derived: finish must be the
    // component sum, and per round exactly one median device has lag 0.
    for e in &events {
        if let Event::DeviceRound { download_s, compute_s, upload_s, finish_s, .. } = e {
            assert!((download_s + compute_s + upload_s - finish_s).abs() < 1e-12);
        }
    }
    // RoundEnd times are non-decreasing in simulated time.
    let ends: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            Event::RoundEnd { sim_time_s, .. } => Some(*sim_time_s),
            _ => None,
        })
        .collect();
    assert!(ends.windows(2).all(|w| w[0] <= w[1]), "sim time went backwards: {ends:?}");
}

fn path_count(events: &[Event], which: &str) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            Event::PathStat { path, count, .. } if path == which => Some(*count),
            _ => None,
        })
        .unwrap_or_else(|| panic!("path {which} missing from trace"))
}

/// The span tree must mirror the algorithm's call structure *exactly*:
/// R `round` roots, R·N `device_update` children, one `local_solve`
/// under each, and one tensor-layer `softmax` leaf per sample gradient
/// computed inside the solves — with the flat per-op aggregates and the
/// path aggregates describing the same spans.
#[test]
fn span_tree_paths_nest_exactly() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (h, events) = traced_run(RunnerKind::Sequential);
    assert!(!h.diverged());

    let r = ROUNDS as u64;
    let rn = (ROUNDS * DEVICES) as u64;
    // The 4-level chain round ⊃ device_update ⊃ local_solve ⊃ softmax
    // (softmax is the tensor leaf the logistic model reaches: one call
    // per sample-gradient, inside cross_entropy_grad_from_logits).
    assert_eq!(path_count(&events, "round"), r);
    assert_eq!(path_count(&events, "round/device_update"), rn);
    assert_eq!(path_count(&events, "round/device_update/local_solve"), rn);
    assert_eq!(
        path_count(&events, "round/device_update/local_solve/softmax"),
        counter(&events, "optim.grad_evals"),
        "one tensor softmax per sample gradient inside the solves"
    );
    // Evaluations: the round-0 baseline runs before any round span
    // opens (a root path); every later evaluation nests under its round.
    assert_eq!(path_count(&events, "evaluate"), 1);
    assert_eq!(path_count(&events, "round/evaluate"), h.records.len() as u64 - 1);

    // Path aggregates and flat span stats must describe the same spans:
    // summing a span's counts over every path it terminates equals its
    // flat per-op count.
    for (layer, name) in [
        ("core", "round"),
        ("core", "device_update"),
        ("optim", "local_solve"),
        ("core", "evaluate"),
        ("tensor", "softmax"),
    ] {
        let suffix = format!("/{name}");
        let from_paths: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::PathStat { path, count, .. }
                    if path == name || path.ends_with(&suffix) =>
                {
                    Some(*count)
                }
                _ => None,
            })
            .sum();
        assert_eq!(
            from_paths,
            span_count(&events, layer, name),
            "path-tree and flat counts disagree for {layer}/{name}"
        );
    }

    // Structural invariants on every path: self ⊆ total for both time
    // and allocation columns, max ≤ total, and no orphans (every
    // non-root path's parent was also observed).
    let mut max_depth = 0;
    for e in &events {
        let Event::PathStat {
            path,
            total_micros,
            self_micros,
            max_micros,
            total_bytes,
            self_bytes,
            total_allocs,
            self_allocs,
            ..
        } = e
        else {
            continue;
        };
        max_depth = max_depth.max(path.split('/').count());
        assert!(
            *self_micros >= 0.0 && self_micros <= total_micros,
            "self time out of range on {path}"
        );
        assert!(*max_micros <= *total_micros + 1e-9, "max > total on {path}");
        assert!(self_bytes <= total_bytes, "self bytes > total on {path}");
        assert!(self_allocs <= total_allocs, "self allocs > total on {path}");
        if let Some((parent, _)) = path.rsplit_once('/') {
            assert!(
                events.iter().any(
                    |p| matches!(p, Event::PathStat { path: pp, .. } if pp == parent)
                ),
                "orphan path {path}: parent {parent} never recorded"
            );
        }
    }
    assert!(max_depth >= 4, "span tree flattened to {max_depth} levels");
}

/// Overflowing the raw span buffer *without* a streaming sink must
/// surface exactly one `TraceTruncated` marker carrying the exact
/// dropped count — never zero markers (silent loss) and never two
/// (double accounting) — while the aggregates keep counting every span.
#[test]
fn span_cap_without_sink_yields_exactly_one_truncation_marker() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const EXTRA: usize = 9;
    let (devices, test) = federation(9);
    let model = MultinomialLogistic::new(60, 10);
    collector::reset();
    collector::arm();
    let h = FederatedTrainer::new(&model, &devices, &test, cfg(RunnerKind::Sequential))
        .run()
        .expect("run");
    // The training run stays under the cap; this filler pushes the
    // buffer exactly EXTRA-plus-run-spans past it.
    for _ in 0..collector::SPAN_EVENT_CAP + EXTRA {
        let _s = collector::SpanGuard::begin("test", "filler", &[]);
    }
    let events = collector::drain();
    collector::disarm();
    assert!(!h.diverged());
    // Aggregates see every span, raw records stop at the cap, and the
    // difference is precisely what the single marker reports.
    let total: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanStat { count, .. } => Some(*count),
            _ => None,
        })
        .sum();
    let raw = events.iter().filter(|e| matches!(e, Event::Span { .. })).count();
    assert_eq!(raw, collector::SPAN_EVENT_CAP, "raw records must stop at the cap");
    let markers: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::TraceTruncated { dropped_spans } => Some(*dropped_spans),
            _ => None,
        })
        .collect();
    assert_eq!(
        markers,
        vec![total - collector::SPAN_EVENT_CAP as u64],
        "exactly one TraceTruncated marker with the exact dropped count"
    );
}

/// The same overflow *with* a sink attached must spill every raw span
/// to the file instead of truncating: no `TraceTruncated` marker
/// anywhere, and the streamed file plus drained tail together hold
/// every span recorded.
#[test]
fn span_cap_with_sink_spills_every_span_without_truncation() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const EXTRA: usize = 9;
    let path = std::env::temp_dir().join("fedprox_test_span_spill.jsonl");
    collector::reset();
    collector::arm();
    collector::stream_to(path.to_str().expect("utf8 temp path")).expect("attach sink");
    let n = collector::SPAN_EVENT_CAP + EXTRA;
    for _ in 0..n {
        let _s = collector::SpanGuard::begin("test", "filler", &[]);
    }
    let tail = collector::drain();
    collector::disarm();
    let text = std::fs::read_to_string(&path).expect("read streamed trace");
    std::fs::remove_file(&path).ok();
    let streamed = jsonl::parse(&text).expect("streamed trace parses");
    let raw_total =
        streamed.iter().chain(&tail).filter(|e| matches!(e, Event::Span { .. })).count();
    assert_eq!(raw_total, n, "a streaming run must keep every raw span");
    assert!(
        streamed.iter().chain(&tail).all(|e| !matches!(e, Event::TraceTruncated { .. })),
        "a streaming run spills — it must never emit a truncation marker"
    );
}

/// The flight-recorder ring holds exactly the most recent structured
/// run events, and — because everything in it derives from the virtual
/// clock and seeded streams, never wall time — its contents are bitwise
/// identical across same-seed runs.
#[test]
fn flight_ring_holds_most_recent_events_bitwise_deterministically() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ring_run = || {
        let (devices, test) = federation(9);
        let model = MultinomialLogistic::new(60, 10);
        collector::reset();
        collector::arm();
        let h = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            cfg(RunnerKind::Network(NetRunnerOptions::default())),
        )
        .run()
        .expect("run");
        let ring = collector::flight_snapshot();
        let events = collector::drain();
        collector::disarm();
        (h, ring, events)
    };
    let (ha, ra, ea) = ring_run();
    let (hb, rb, _) = ring_run();
    assert!(!ha.diverged() && !hb.diverged());
    assert!(!ra.is_empty() && ra.len() <= collector::FLIGHT_RING_CAP);
    // This run is small enough that nothing was evicted: the ring is
    // exactly the structured run-event prefix of the drain, in order.
    assert_eq!(
        ra.as_slice(),
        &ea[..ra.len()],
        "ring does not match the run-event stream"
    );
    // Bitwise determinism, both in memory and through the codec.
    assert_eq!(ra, rb, "same-seed flight rings differ");
    assert_eq!(jsonl::to_jsonl(&ra), jsonl::to_jsonl(&rb));
    // Overflow the ring with a deterministic tail: it must keep exactly
    // the most recent FLIGHT_RING_CAP events.
    collector::reset();
    collector::arm();
    let extra = 17u32;
    let total = collector::FLIGHT_RING_CAP as u32 + extra;
    for i in 0..total {
        collector::record_event(Event::RoundEnd { round: i, sim_time_s: f64::from(i) });
    }
    let ring = collector::flight_snapshot();
    collector::drain();
    collector::disarm();
    assert_eq!(ring.len(), collector::FLIGHT_RING_CAP);
    assert!(matches!(ring[0], Event::RoundEnd { round, .. } if round == extra));
    assert!(
        matches!(ring[ring.len() - 1], Event::RoundEnd { round, .. } if round == total - 1)
    );
}

#[test]
fn drained_events_roundtrip_through_jsonl() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_, events) = traced_run(RunnerKind::Sequential);
    assert!(!events.is_empty());
    let text = jsonl::to_jsonl(&events);
    let parsed = jsonl::parse(&text).expect("serialized trace failed to parse");
    assert_eq!(events, parsed, "JSONL encode/decode is not lossless");
}
