//! Ablations of the paper's design choices (DESIGN.md §4):
//! fixed vs diminishing step size (footnote 1), last vs uniform-random
//! iterate (Algorithm 1 line 10), and partial participation.

use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::optim::solver::IterateChoice;
use fedprox::optim::StepSize;
use fedprox::prelude::*;

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards = generate(
        &SyntheticConfig { seed, ..Default::default() },
        &[100, 140, 80, 120],
    );
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

fn base() -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(10)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(25)
        .with_eval_every(25)
        .with_runner(RunnerKind::Parallel)
        .with_seed(21)
}

#[test]
fn fixed_step_beats_diminishing_at_equal_budget() {
    // Footnote 1: "using a fixed step size is more practical than
    // diminishing step size". With η_t = η₀/(t+1), later local steps are
    // tiny, wasting most of τ.
    // Federation seed 2: seed 1 draws a shard mix where the comparison
    // sits inside run-to-run noise; 2-4 all show the claimed gap clearly.
    let (devices, test) = federation(2);
    let model = MultinomialLogistic::new(60, 10);
    let fixed = FederatedTrainer::new(&model, &devices, &test, base()).run().expect("run");
    let diminishing = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        base().with_step_override(StepSize::Diminishing { c: 1.0 / 15.0 }),
    )
    .run().expect("run");
    assert!(
        fixed.final_loss().unwrap() < diminishing.final_loss().unwrap(),
        "fixed {} vs diminishing {}",
        fixed.final_loss().unwrap(),
        diminishing.final_loss().unwrap()
    );
}

#[test]
fn last_iterate_converges_faster_than_uniform_random() {
    // The theory needs the uniform-random iterate; practice prefers the
    // last (the default). Confirm the expected ordering.
    let (devices, test) = federation(2);
    let model = MultinomialLogistic::new(60, 10);
    let last = FederatedTrainer::new(&model, &devices, &test, base()).run().expect("run");
    let random = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        base().with_iterate_choice(IterateChoice::UniformRandom),
    )
    .run().expect("run");
    assert!(
        last.final_loss().unwrap() < random.final_loss().unwrap(),
        "last {} vs uniform-random {}",
        last.final_loss().unwrap(),
        random.final_loss().unwrap()
    );
    // Both still make progress.
    assert!(random.final_loss().unwrap() < random.records[0].train_loss);
}

#[test]
fn partial_participation_trades_progress_for_compute() {
    let (devices, test) = federation(3);
    let model = MultinomialLogistic::new(60, 10);
    let full = FederatedTrainer::new(&model, &devices, &test, base()).run().expect("run");
    let half = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        base().with_participation(0.5),
    )
    .run().expect("run");
    // Half the devices per round ⇒ roughly half the gradient work.
    let full_work = full.records.last().unwrap().grad_evals;
    let half_work = half.records.last().unwrap().grad_evals;
    assert!(
        (half_work as f64) < 0.75 * full_work as f64,
        "half {half_work} vs full {full_work}"
    );
    // Still learns.
    assert!(half.final_loss().unwrap() < half.records[0].train_loss * 0.8);
}

#[test]
fn closed_form_prox_equals_iterative_inside_training() {
    // End-to-end cross-validation of eq. (10): one proximal local solve
    // using the closed form matches a numerically-solved prox.
    use fedprox::optim::estimator::EstimatorKind as EK;
    use fedprox::optim::solver::{LocalSolver, LocalSolverConfig};
    use fedprox::optim::{IterativeProx, QuadraticProx};
    use rand::SeedableRng;

    let (devices, _) = federation(4);
    let model = MultinomialLogistic::new(60, 10);
    let w0 = {
        use fedprox::models::LossModel;
        model.init_params(1)
    };
    let cfg = LocalSolverConfig {
        kind: EK::Svrg,
        step: StepSize::Constant(0.02),
        tau: 5,
        batch_size: 8,
        choice: fedprox::optim::solver::IterateChoice::Last,
    };
    let closed = QuadraticProx::new(0.5, w0.clone());
    let iterative = IterativeProx::new(QuadraticProx::new(0.5, w0.clone()), 4000, 0.02);
    let mut rng1 = rand::rngs::StdRng::seed_from_u64(9);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
    let a = LocalSolver.solve(&model, &devices[0].data, &closed, &w0, &cfg, &mut rng1);
    let b = LocalSolver.solve(&model, &devices[0].data, &iterative, &w0, &cfg, &mut rng2);
    let rel = fedprox::tensor::vecops::dist(&a.w, &b.w)
        / fedprox::tensor::vecops::norm(&a.w).max(1e-9);
    assert!(rel < 1e-4, "closed vs iterative prox diverged: rel {rel}");
}
