//! Failure-injection tests for the networked backend: message drops,
//! stragglers, and bandwidth-limited links must change *timing*, never
//! *math*.

use fedprox::core::config::NetRunnerOptions;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::net::runtime::FnWorker;
use fedprox::net::{DeviceReply, NetError, NetOptions, NetworkRuntime};
use fedprox::net::{DelayModel, LinkSpec};
use fedprox::prelude::*;

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards = generate(&SyntheticConfig { seed, ..Default::default() }, &[60, 80, 50]);
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

fn cfg(runner: RunnerKind) -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(6)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(5)
        .with_seed(77)
        .with_runner(runner)
}

#[test]
fn message_drops_do_not_change_the_trajectory() {
    let (devices, test) = federation(1);
    let model = MultinomialLogistic::new(60, 10);
    let clean = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(NetRunnerOptions::default())),
    )
    .run().expect("run");
    let lossy_opts = NetRunnerOptions {
        net: NetOptions { drop_prob: 0.4, seed: 3, ..Default::default() },
        ..Default::default()
    };
    let lossy = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(lossy_opts)),
    )
    .run().expect("run");
    // Identical math...
    for (a, b) in clean.records.iter().zip(&lossy.records) {
        assert_eq!(a.train_loss, b.train_loss);
    }
    // ...but retransmissions make the lossy run slower in simulated time.
    assert!(lossy.total_sim_time > clean.total_sim_time);
}

#[test]
fn straggler_slows_time_not_accuracy() {
    let (devices, test) = federation(2);
    let model = MultinomialLogistic::new(60, 10);
    // Compute must dominate link latency for the straggler to matter:
    // use a visible per-gradient cost in both runs.
    let base_opts = NetRunnerOptions { sec_per_grad_eval: 1e-3, ..Default::default() };
    let base = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(base_opts)),
    )
    .run().expect("run");
    let straggler_opts = NetRunnerOptions {
        net: NetOptions::default().with_straggler(1, 25.0),
        sec_per_grad_eval: 1e-3,
    };
    let slow = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(straggler_opts)),
    )
    .run().expect("run");
    assert_eq!(
        base.records.last().unwrap().test_accuracy,
        slow.records.last().unwrap().test_accuracy
    );
    assert!(slow.total_sim_time > 2.0 * base.total_sim_time);
}

#[test]
fn bandwidth_limits_scale_time_with_model_size() {
    let (devices, test) = federation(3);
    let model = MultinomialLogistic::new(60, 10);
    let narrow = NetRunnerOptions {
        net: NetOptions {
            downlink: LinkSpec {
                latency: DelayModel::Constant(0.001),
                bytes_per_sec: 50_000.0,
            },
            uplink: LinkSpec {
                latency: DelayModel::Constant(0.001),
                bytes_per_sec: 50_000.0,
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(narrow)),
    )
    .run().expect("run");
    // Model = 610 params ≈ 4.9 KB ⇒ ~0.1 s per direction per round at
    // 50 kB/s; five rounds of down+up must exceed 0.9 s of pure transfer.
    assert!(h.total_sim_time > 0.9, "sim time {}", h.total_sim_time);
    assert!(h.records.last().unwrap().bytes > 5 * 2 * 4_000);
}

/// The panic hook is process-global; serialize the tests that silence it
/// so a concurrent test never observes (or restores) the wrong hook.
static PANIC_HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` with panic backtraces suppressed (the injected worker failures
/// are expected; their default backtrace spam would drown real output).
fn run_quietly<T>(f: impl FnOnce() -> T) -> T {
    let _guard = PANIC_HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Three well-behaved echo workers, except device `bad` panics on `round`.
fn panicking_workers(bad: u32, bad_round: u32) -> Vec<FnWorker<impl FnMut(u32, &[f64]) -> DeviceReply + Send>> {
    (0..3u32)
        .map(|id| {
            FnWorker(move |round: u32, global: &[f64]| {
                assert!(
                    id != bad || round != bad_round,
                    "injected device failure (test fixture)"
                );
                DeviceReply {
                    params: global.to_vec(),
                    weight: 1.0 / 3.0,
                    grad_evals: 10,
                    compute_time: 0.01,
                }
            })
        })
        .collect()
}

#[test]
fn worker_panic_surfaces_the_failing_device_id() {
    // The runtime catches the injected panic and must convert it into a
    // typed error naming the device, not tear down the whole process.
    let result = run_quietly(|| {
        NetworkRuntime.run(
            panicking_workers(1, 2),
            vec![0.0; 4],
            5,
            &NetOptions::default(),
            |_, _| true,
        )
    });
    assert_eq!(result.unwrap_err(), NetError::WorkerPanic { device: Some(1) });
}

#[test]
fn worker_panic_error_message_names_the_device() {
    let result = run_quietly(|| {
        NetworkRuntime.run(
            panicking_workers(2, 0),
            vec![0.0; 4],
            3,
            &NetOptions::default(),
            |_, _| true,
        )
    });
    let err = result.unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("device 2"), "unhelpful message: {msg}");
    assert!(msg.contains("panic"), "unhelpful message: {msg}");
}

/// Telemetry must survive an early shutdown: a run that dies mid-flight
/// still leaves the collector drainable and the summary renderable.
#[cfg(feature = "telemetry")]
#[test]
fn telemetry_finalizes_after_worker_panic() {
    use fedprox_telemetry::{collector, summary::TelemetryReport};
    collector::arm();
    let result = run_quietly(|| {
        NetworkRuntime.run(
            panicking_workers(0, 1),
            vec![0.0; 4],
            4,
            &NetOptions::default(),
            |_, _| true,
        )
    });
    assert!(matches!(result, Err(NetError::WorkerPanic { .. })));
    let events = collector::drain();
    collector::disarm();
    assert!(!events.is_empty(), "armed run recorded nothing before the failure");
    // The summary pipeline must not choke on a truncated trace.
    let rendered = TelemetryReport::from_events(&events).render(5);
    assert!(rendered.contains("fedtrace"), "summary did not render: {rendered}");
}

#[test]
fn planned_crash_at_round_degrades_gracefully() {
    let (devices, test) = federation(5);
    let model = MultinomialLogistic::new(60, 10);
    let c = cfg(RunnerKind::Network(NetRunnerOptions::default()))
        .with_resilience(Resilience::with_plan(FaultPlan::new().crash(1, 3)));
    let h = FederatedTrainer::new(&model, &devices, &test, c).run().expect("run");
    assert!(!h.diverged(), "crash-tolerant run must complete");
    assert_eq!(h.rounds_run, 5);
    assert_eq!(h.participation.len(), 5);
    for p in &h.participation {
        assert!(!p.skipped);
        if p.round >= 3 {
            assert_eq!(p.outcomes[1], DeviceOutcome::Crashed);
            assert_eq!(p.responders(), 2);
            assert!(
                p.responder_weight > 0.0 && p.responder_weight < 1.0,
                "weight {} not renormalizable",
                p.responder_weight
            );
        } else {
            assert_eq!(p.responders(), 3);
            assert!((p.responder_weight - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn offline_window_rejoins() {
    let (devices, test) = federation(6);
    let model = MultinomialLogistic::new(60, 10);
    let c = cfg(RunnerKind::Network(NetRunnerOptions::default()))
        .with_resilience(Resilience::with_plan(FaultPlan::new().offline(0, 2, 3)));
    let h = FederatedTrainer::new(&model, &devices, &test, c).run().expect("run");
    assert!(!h.diverged());
    let outcomes: Vec<DeviceOutcome> =
        h.participation.iter().map(|p| p.outcomes[0]).collect();
    assert_eq!(
        outcomes,
        vec![
            DeviceOutcome::Responded,
            DeviceOutcome::Offline,
            DeviceOutcome::Offline,
            DeviceOutcome::Responded,
            DeviceOutcome::Responded,
        ],
        "device 0 must sit out exactly rounds 2–3 and rejoin"
    );
}

#[test]
fn quorum_shortfall_skips_rounds_and_keeps_the_model() {
    let (devices, test) = federation(7);
    let model = MultinomialLogistic::new(60, 10);
    // Device 1 holds the largest shard; with it offline the remaining
    // weight (~0.58) misses a 0.7 quorum, so rounds 2–3 are skipped —
    // counted, never fatal — and the global model is left untouched.
    let resil = Resilience::with_plan(FaultPlan::new().offline(1, 2, 3))
        .with_quorum(QuorumPolicy::weight_fraction(0.7));
    let c = cfg(RunnerKind::Network(NetRunnerOptions::default())).with_resilience(resil);
    let h = FederatedTrainer::new(&model, &devices, &test, c).run().expect("run");
    assert!(!h.diverged());
    assert_eq!(h.rounds_run, 5);
    let skipped: Vec<usize> =
        h.participation.iter().filter(|p| p.skipped).map(|p| p.round).collect();
    assert_eq!(skipped, vec![2, 3]);
    // eval_every = 1: the evaluated loss is bitwise frozen across the
    // skipped rounds and moves again once quorum is restored.
    assert_eq!(h.records[1].round, 1);
    assert_eq!(h.records[2].train_loss.to_bits(), h.records[1].train_loss.to_bits());
    assert_eq!(h.records[3].train_loss.to_bits(), h.records[1].train_loss.to_bits());
    assert_ne!(h.records[4].train_loss.to_bits(), h.records[3].train_loss.to_bits());
}

#[test]
fn lognormal_jitter_changes_time_deterministically_per_seed() {
    let (devices, test) = federation(4);
    let model = MultinomialLogistic::new(60, 10);
    let jittery = |seed: u64| NetRunnerOptions {
        net: NetOptions {
            downlink: LinkSpec {
                latency: DelayModel::LogNormal { mu: -3.0, sigma: 1.0 },
                bytes_per_sec: f64::INFINITY,
            },
            seed,
            ..Default::default()
        },
        ..Default::default()
    };
    let a = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(jittery(5))),
    )
    .run().expect("run");
    let b = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(jittery(5))),
    )
    .run().expect("run");
    let c = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Network(jittery(6))),
    )
    .run().expect("run");
    assert_eq!(a.total_sim_time, b.total_sim_time);
    assert_ne!(a.total_sim_time, c.total_sim_time);
    // Math identical regardless of delay seed.
    for (x, y) in a.records.iter().zip(&c.records) {
        assert_eq!(x.train_loss, y.train_loss);
    }
}
