//! End-to-end fedresil tests over the local backends: fault plans and
//! quorum gates ride through `FedConfig`, the `History` documents
//! participation, retry backoff is charged to the simulated clock, and
//! the `participation_gap` health rule watches the responder fraction.

use fedprox::core::config::NetRunnerOptions;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::net::NetOptions;
use fedprox::prelude::*;

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards =
        generate(&SyntheticConfig { seed, ..Default::default() }, &[70, 100, 50, 80]);
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

fn cfg(runner: RunnerKind) -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(6)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(8)
        .with_seed(5)
        .with_runner(runner)
}

fn plan() -> FaultPlan {
    FaultPlan::new().crash(3, 4).offline(1, 2, 3)
}

#[test]
fn sequential_and_parallel_agree_under_faults() {
    let (devices, test) = federation(21);
    let model = MultinomialLogistic::new(60, 10);
    let seq = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Sequential).with_resilience(Resilience::with_plan(plan())),
    )
    .run().expect("run");
    let par = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Parallel).with_resilience(Resilience::with_plan(plan())),
    )
    .run().expect("run");
    assert!(!seq.diverged() && !par.diverged());
    assert_eq!(seq.records.len(), par.records.len());
    for (a, b) in seq.records.iter().zip(&par.records) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "round {}", a.round);
        assert_eq!(a.grad_norm_sq.to_bits(), b.grad_norm_sq.to_bits());
    }
    assert_eq!(seq.participation, par.participation);
    // The plan left its footprint: device 1 offline for rounds 2–3,
    // device 3 crashed from round 4 on.
    assert_eq!(seq.participation[1].outcomes[1], DeviceOutcome::Offline);
    assert_eq!(seq.participation[3].outcomes[1], DeviceOutcome::Responded);
    assert_eq!(seq.participation[7].outcomes[3], DeviceOutcome::Crashed);
}

#[test]
fn history_json_carries_participation_records() {
    let (devices, test) = federation(22);
    let model = MultinomialLogistic::new(60, 10);
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Sequential).with_resilience(Resilience::with_plan(plan())),
    )
    .run().expect("run");
    assert_eq!(h.participation.len(), 8);
    let back = History::from_json(&h.to_json()).expect("serialized History must parse");
    assert_eq!(back.participation, h.participation);
    assert_eq!(back.records, h.records);
}

#[test]
fn retry_backoff_is_charged_to_the_simulated_clock() {
    let (devices, test) = federation(23);
    let model = MultinomialLogistic::new(60, 10);
    let run_with = |retry: RetryPolicy| {
        let opts = NetRunnerOptions {
            net: NetOptions { drop_prob: 0.4, seed: 3, retry, ..Default::default() },
            ..Default::default()
        };
        FederatedTrainer::new(
            &model,
            &devices,
            &test,
            cfg(RunnerKind::Network(opts)),
        )
        .run()
        .expect("run")
    };
    let plain = run_with(RetryPolicy::default());
    let backoff = run_with(RetryPolicy::exponential(1000, 0.05, 1.0));
    // Identical math — backoff only delays retransmissions…
    for (a, b) in plain.records.iter().zip(&backoff.records) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits(), "round {}", a.round);
    }
    // …so the same drops cost strictly more simulated time.
    assert!(
        backoff.total_sim_time > plain.total_sim_time,
        "backoff {} vs plain {}",
        backoff.total_sim_time,
        plain.total_sim_time
    );
}

#[cfg(feature = "telemetry")]
#[test]
fn participation_gap_fires_once_for_a_sustained_shortfall() {
    use fedprox_telemetry::event::{AnomalyRule, Event};
    let (devices, test) = federation(24);
    let model = MultinomialLogistic::new(60, 10);
    // Three of four devices sit out rounds 2–7: the responder fraction
    // (0.25) stays below the default 0.5 floor, so the rule fires at the
    // third consecutive shortfall — and only there.
    let resil = Resilience::with_plan(
        FaultPlan::new().offline(0, 2, 7).offline(1, 2, 7).offline(2, 2, 7),
    );
    fedprox_telemetry::collector::reset();
    fedprox_telemetry::collector::arm();
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(RunnerKind::Sequential).with_resilience(resil),
    )
    .run().expect("run");
    let events = fedprox_telemetry::collector::drain();
    fedprox_telemetry::collector::disarm();
    assert!(!h.diverged());
    let gap_rounds: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            Event::Anomaly { round, rule: AnomalyRule::ParticipationGap, value, limit, .. } => {
                assert!(*value < *limit, "anomaly must carry the shortfall: {value} vs {limit}");
                Some(*round)
            }
            _ => None,
        })
        .collect();
    assert_eq!(gap_rounds, vec![4], "gap must fire once, at the third shortfall round");
}
