//! The event-driven backend's correctness contract (DESIGN.md §13):
//! trajectory inheritance from the sequential backend, sampling
//! determinism, 1/p aggregation reweighting, stable-id fault addressing
//! on sampled rounds, and the active-set memory bound.
//!
//! Everything here serializes on one lock: the allocation-traffic tests
//! read the process-wide counting allocator (pulled in via the
//! `fedprox-perfbench` dev-dependency), and concurrent test threads
//! would pollute the per-round deltas.

// Module-level helpers below sit outside #[test] fns, where
// clippy.toml's allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig, SyntheticPool};
use fedprox::data::partition::ZipfPopulation;
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::prelude::*;
use fedprox::sim::sampler::bernoulli_reweight;
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A test panicking while holding the lock must not wedge the rest.
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards =
        generate(&SyntheticConfig { seed, ..Default::default() }, &[60, 90, 40, 80]);
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

fn base_cfg() -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_tau(5)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(8)
        .with_seed(7)
}

/// A round record's trajectory content — every field except the
/// sim-time/byte columns, which the sequential backend leaves at zero
/// and the engine fills from the virtual clock.
fn record_bits(r: &RoundRecord) -> (usize, u64, u64, u64, Option<u64>, u64) {
    (
        r.round,
        r.train_loss.to_bits(),
        r.test_accuracy.to_bits(),
        r.grad_norm_sq.to_bits(),
        r.theta_measured.map(f64::to_bits),
        r.grad_evals,
    )
}

fn model_bits(h: &History) -> Vec<u64> {
    h.final_model.iter().map(|x| x.to_bits()).collect()
}

fn assert_trajectories_match(seq: &History, sim: &History, what: &str) {
    assert_eq!(seq.records.len(), sim.records.len(), "{what}: record counts");
    for (a, b) in seq.records.iter().zip(&sim.records) {
        assert_eq!(record_bits(a), record_bits(b), "{what}: round {}", a.round);
    }
    assert_eq!(model_bits(seq), model_bits(sim), "{what}: final model");
    assert_eq!(seq.rounds_run, sim.rounds_run, "{what}: rounds_run");
    assert_eq!(seq.divergence, sim.divergence, "{what}: divergence");
}

#[test]
fn full_sampling_reproduces_the_sequential_trajectory_bitwise() {
    let _g = lock();
    let (devices, test) = federation(3);
    let model = MultinomialLogistic::new(60, 10);
    let seq = FederatedTrainer::new(&model, &devices, &test, base_cfg())
        .run()
        .expect("sequential");
    let cfg = base_cfg().with_runner(RunnerKind::EventDriven(SimRunnerOptions::default()));
    let sim = SimEngine::new(&model, Population::Materialized(&devices), Some(&test), cfg)
        .run()
        .expect("sim");
    assert_trajectories_match(&seq, &sim, "p=1");
    // The engine additionally reports virtual time the sequential
    // backend has no notion of.
    assert!(sim.total_sim_time > 0.0 && seq.total_sim_time == 0.0);
}

#[test]
fn uniform_k_reproduces_sequential_partial_participation_bitwise() {
    let _g = lock();
    let (devices, test) = federation(5);
    let model = MultinomialLogistic::new(60, 10);
    let p = 0.5;
    let seq = FederatedTrainer::new(&model, &devices, &test, base_cfg().with_participation(p))
        .run()
        .expect("sequential");
    // K = ⌈pN⌉ consumes the identical (seed, round) sampling stream.
    let k = ((p * devices.len() as f64).ceil() as usize).clamp(1, devices.len());
    let cfg = base_cfg().with_runner(RunnerKind::EventDriven(
        SimRunnerOptions::default().with_sampler(SamplerSpec::UniformK(k)),
    ));
    let sim = SimEngine::new(&model, Population::Materialized(&devices), Some(&test), cfg)
        .run()
        .expect("sim");
    assert_trajectories_match(&seq, &sim, "uniform-k");
}

#[test]
fn faulted_full_sampling_matches_sequential_including_participation() {
    let _g = lock();
    let (devices, test) = federation(11);
    let model = MultinomialLogistic::new(60, 10);
    // Device 1 crashes at round 3, device 2 sits out rounds 2–4; a
    // 3-responder quorum then skips rounds 3 and 4.
    let resilience = Resilience::with_plan(FaultPlan::new().crash(1, 3).offline(2, 2, 4))
        .with_quorum(QuorumPolicy { min_responders: 3, ..QuorumPolicy::default() });
    let seq = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        base_cfg().with_resilience(resilience.clone()),
    )
    .run()
    .expect("sequential");
    let cfg = base_cfg()
        .with_resilience(resilience)
        .with_runner(RunnerKind::EventDriven(SimRunnerOptions::default()));
    let sim = SimEngine::new(&model, Population::Materialized(&devices), Some(&test), cfg)
        .run()
        .expect("sim");
    assert_trajectories_match(&seq, &sim, "faulted p=1");
    // Dense participation records (materialized population) are the
    // sequential backend's exact layout, so whole-record equality holds.
    assert_eq!(seq.participation, sim.participation);
    assert!(seq.participation.iter().any(|r| r.skipped), "fixture should skip rounds");
}

fn lazy_population(devices: usize, seed: u64) -> LazyPopulation {
    let zipf = ZipfPopulation::new(devices, 40, 120, 1.5, 4.0, seed);
    let pool = SyntheticPool::new(SyntheticConfig { seed, ..Default::default() });
    LazyPopulation::new(zipf, pool)
}

fn lazy_cfg(sampler: SamplerSpec, shards: usize, seed: u64) -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_tau(3)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(4)
        .with_seed(seed)
        .with_runner(RunnerKind::EventDriven(
            SimRunnerOptions::default().with_sampler(sampler).with_shards(shards),
        ))
}

#[test]
fn sampled_runs_are_bitwise_stable_and_shard_count_invariant() {
    let _g = lock();
    let model = MultinomialLogistic::new(60, 10);
    let run = |shards: usize| {
        let pop = Population::Lazy(lazy_population(2_000, 5));
        SimEngine::new(&model, pop, None, lazy_cfg(SamplerSpec::UniformK(12), shards, 5))
            .run()
            .expect("sim")
    };
    let (a, b) = (run(8), run(8));
    assert_eq!(model_bits(&a), model_bits(&b), "same seed, same shards");
    assert_eq!(a.participation, b.participation);
    // Sharding is a memory/locality knob: 1 shard and 64 shards replay
    // the identical schedule, trajectory and virtual time.
    let c = run(1);
    let d = run(64);
    assert_eq!(model_bits(&a), model_bits(&c), "shards=1");
    assert_eq!(model_bits(&a), model_bits(&d), "shards=64");
    assert_eq!(a.total_sim_time.to_bits(), c.total_sim_time.to_bits());
    assert_eq!(a.total_sim_time.to_bits(), d.total_sim_time.to_bits());
    assert_eq!(a.participation, c.participation);
}

#[test]
fn bernoulli_reweighting_restores_the_full_participation_weight_total() {
    let _g = lock();
    // Unit level: Σ w_i/p + residual == Σ w_i == 1 for any active set.
    let weights = [0.12, 0.3, 0.08, 0.25];
    for p in [0.05, 0.25, 0.8] {
        let (scaled, residual) = bernoulli_reweight(&weights, p);
        let total = scaled.iter().sum::<f64>() + residual;
        assert!((total - 1.0).abs() < 1e-12, "p={p}: total {total}");
    }
    // p = 1 short-circuits to the raw weights, so the engine's
    // Bernoulli(1.0) run is bitwise its Full run.
    let model = MultinomialLogistic::new(60, 10);
    let run = |sampler: SamplerSpec| {
        let pop = Population::Lazy(lazy_population(300, 17));
        SimEngine::new(&model, pop, None, lazy_cfg(sampler, 8, 17)).run().expect("sim")
    };
    let full = run(SamplerSpec::Full);
    let bern = run(SamplerSpec::Bernoulli(1.0));
    assert_eq!(model_bits(&full), model_bits(&bern));
}

#[test]
fn fault_plans_address_sampled_devices_by_stable_id() {
    let _g = lock();
    let model = MultinomialLogistic::new(60, 10);
    let seed = 23;
    // Find a device the round-1 sample actually contains, then crash it
    // from round 1. The compact participation record must blame exactly
    // that stable id, wherever it lands in the sampled set.
    let pop = Population::Lazy(lazy_population(5_000, seed));
    let probe = SimEngine::new(&model, pop, None, lazy_cfg(SamplerSpec::UniformK(10), 8, seed))
        .run()
        .expect("probe");
    let round1 = &probe.participation[0];
    let sampled = round1.sampled.as_ref().expect("lazy records are compact");
    let victim = sampled[sampled.len() / 2] as usize;

    let resilience = Resilience::with_plan(FaultPlan::new().crash(victim, 1));
    let pop = Population::Lazy(lazy_population(5_000, seed));
    let faulted = SimEngine::new(
        &model,
        pop,
        None,
        lazy_cfg(SamplerSpec::UniformK(10), 8, seed).with_resilience(resilience),
    )
    .run()
    .expect("faulted");
    let rec = &faulted.participation[0];
    assert_eq!(rec.outcome_of(victim), DeviceOutcome::Crashed);
    for &d in faulted.participation[0].sampled.as_ref().expect("compact") {
        if d as usize != victim {
            assert_eq!(rec.outcome_of(d as usize), DeviceOutcome::Responded, "device {d}");
        }
    }
    // A never-sampled device reports NotSelected, not a positional alias.
    let unsampled = (0..5_000).find(|d| !sampled.contains(&(*d as u32))).expect("exists");
    assert_eq!(rec.outcome_of(unsampled), DeviceOutcome::NotSelected);
}

/// Peak per-round allocation traffic of a sampled run, in bytes,
/// ignoring round 1 (one-off warmup: aggregation buffers, heaps).
fn peak_round_alloc(devices: usize, k: usize, seed: u64) -> u64 {
    let model = MultinomialLogistic::new(60, 10);
    let pop = Population::Lazy(lazy_population(devices, seed));
    let engine =
        SimEngine::new(&model, pop, None, lazy_cfg(SamplerSpec::UniformK(k), 8, seed));
    let mut last = fedprox_perfbench::alloc::stats();
    let mut peak = 0u64;
    engine
        .run_with(|stats| {
            let now = fedprox_perfbench::alloc::stats();
            let delta = now.since(&last).bytes;
            last = now;
            if stats.round > 1 {
                peak = peak.max(delta);
            }
        })
        .expect("sim");
    peak
}

#[test]
fn round_memory_is_bounded_by_the_active_set_not_the_population() {
    let _g = lock();
    if !fedprox_perfbench::alloc::counting_enabled() {
        eprintln!("counting allocator disabled; skipping the memory-bound check");
        return;
    }
    // 100k devices, 16 sampled per round: the absolute bound is the
    // active set's working memory (measured ~2 MiB/round), far below
    // anything that scales with N (the shard data alone would be GBs).
    let big = peak_round_alloc(100_000, 16, 31);
    assert!(
        big < 32 * 1024 * 1024,
        "per-round alloc traffic {big} bytes looks population-bound"
    );
    // And it tracks K, not N: 10× the population, same K, similar traffic.
    let small = peak_round_alloc(10_000, 16, 31);
    let ratio = big as f64 / small.max(1) as f64;
    assert!(ratio < 3.0, "alloc traffic scales with population: {small} -> {big} ({ratio:.2}x)");
}

#[test]
fn compute_heterogeneity_changes_time_but_never_the_trajectory() {
    let _g = lock();
    let model = MultinomialLogistic::new(60, 10);
    let run = |spread: f64| {
        let zipf = ZipfPopulation::new(800, 40, 120, 1.5, spread, 13);
        let pool = SyntheticPool::new(SyntheticConfig { seed: 13, ..Default::default() });
        let pop = Population::Lazy(LazyPopulation::new(zipf, pool));
        SimEngine::new(&model, pop, None, lazy_cfg(SamplerSpec::UniformK(10), 8, 13))
            .run()
            .expect("sim")
    };
    let uniform = run(1.0);
    let spread = run(8.0);
    assert_eq!(model_bits(&uniform), model_bits(&spread), "timing fed back into training");
    assert!(
        spread.total_sim_time > uniform.total_sim_time,
        "hardware spread should stretch the virtual clock: {} vs {}",
        spread.total_sim_time,
        uniform.total_sim_time
    );
}
