//! Property-based tests (proptest) on cross-crate invariants.

use fedprox::core::server;
use fedprox::core::theory::{federated_factor, Lemma1, TheoryParams};
use fedprox::data::partition::{power_law_sizes, PartitionSpec, Partitioner};
use fedprox::data::Dataset;
use fedprox::optim::{Proximal, QuadraticProx};
use fedprox::tensor::{vecops, Matrix};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prox_is_nonexpansive(
        x in vec_strategy(6),
        y in vec_strategy(6),
        anchor in vec_strategy(6),
        mu in 0.0f64..50.0,
        eta in 1e-3f64..2.0,
    ) {
        let p = QuadraticProx::new(mu, anchor);
        let mut px = vec![0.0; 6];
        let mut py = vec![0.0; 6];
        p.prox(eta, &x, &mut px);
        p.prox(eta, &y, &mut py);
        prop_assert!(vecops::dist(&px, &py) <= vecops::dist(&x, &y) * (1.0 + 1e-12));
    }

    #[test]
    fn prox_minimises_its_objective(
        x in vec_strategy(4),
        anchor in vec_strategy(4),
        mu in 0.01f64..20.0,
        eta in 1e-2f64..1.0,
        probe in vec_strategy(4),
    ) {
        // prox(x) minimises h(w) + ‖w−x‖²/(2η); any probe point must be no
        // better.
        let p = QuadraticProx::new(mu, anchor);
        let mut star = vec![0.0; 4];
        p.prox(eta, &x, &mut star);
        let obj = |w: &[f64]| p.value(w) + vecops::dist_sq(w, &x) / (2.0 * eta);
        prop_assert!(obj(&star) <= obj(&probe) + 1e-9);
    }

    #[test]
    fn aggregation_stays_in_coordinate_hull(
        a in vec_strategy(5),
        b in vec_strategy(5),
        c in vec_strategy(5),
        w1 in 0.01f64..1.0,
        w2 in 0.01f64..1.0,
        w3 in 0.01f64..1.0,
    ) {
        let mut out = vec![0.0; 5];
        server::aggregate(&[(&a, w1), (&b, w2), (&c, w3)], &mut out);
        for i in 0..5 {
            let lo = a[i].min(b[i]).min(c[i]);
            let hi = a[i].max(b[i]).max(c[i]);
            prop_assert!(out[i] >= lo - 1e-9 && out[i] <= hi + 1e-9);
        }
    }

    #[test]
    fn power_law_sizes_always_in_bounds(
        devices in 1usize..60,
        lo in 1usize..50,
        span in 1usize..3000,
        alpha in 0.2f64..3.0,
        seed in any::<u64>(),
    ) {
        let hi = lo + span;
        let sizes = power_law_sizes(devices, lo, hi, alpha, seed);
        prop_assert_eq!(sizes.len(), devices);
        prop_assert!(sizes.iter().all(|&s| s >= lo && s <= hi));
    }

    #[test]
    fn label_sharding_is_exact_and_bounded(
        per_class in 5usize..40,
        devices in 1usize..12,
        labels_per in 1usize..3,
        seed in any::<u64>(),
    ) {
        let classes = 10usize;
        let n = per_class * classes;
        let mut f = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            f.row_mut(i)[0] = i as f64;
            labels.push((i % classes) as f64);
        }
        let data = Dataset::new(f, labels, classes);
        let sizes = vec![per_class; devices];
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes, labels_per_device: labels_per },
            seed,
        ).partition(&data);
        for sh in &shards {
            prop_assert_eq!(sh.len(), per_class);
            prop_assert!(sh.distinct_labels().len() <= labels_per);
        }
    }

    #[test]
    fn tau_bounds_ordering_holds_everywhere(
        beta in 3.1f64..200.0,
        mu in 0.6f64..100.0,
        theta in 0.01f64..0.99,
    ) {
        let p = TheoryParams { smoothness: 1.0, lambda: 0.5, mu, sigma_bar_sq: 1.0 };
        // SVRG's upper bound never exceeds SARAH's (Remark 1(5)).
        prop_assert!(Lemma1::tau_upper_svrg(beta) <= Lemma1::tau_upper_sarah(beta));
        // The lower bound is positive and decreasing in θ.
        let lo = Lemma1::tau_lower(&p, beta, theta).unwrap();
        let lo_looser = Lemma1::tau_lower(&p, beta, (theta * 1.5).min(0.999)).unwrap();
        prop_assert!(lo > 0.0);
        prop_assert!(lo_looser <= lo * (1.0 + 1e-9));
    }

    #[test]
    fn federated_factor_monotone_in_theta(
        mu in 10.0f64..200.0,
        sigma in 0.0f64..5.0,
        t1 in 0.001f64..0.4,
        bump in 0.0f64..0.5,
    ) {
        let p = TheoryParams { smoothness: 1.0, lambda: 0.5, mu, sigma_bar_sq: sigma };
        let t2 = (t1 + bump).min(0.95);
        // Larger θ can only shrink Θ (Remark 2).
        prop_assert!(federated_factor(&p, t2) <= federated_factor(&p, t1) + 1e-12);
    }

    #[test]
    fn codec_roundtrips_arbitrary_models(
        params in proptest::collection::vec(any::<f64>(), 0..64),
        round in any::<u32>(),
        device in any::<u32>(),
        weight in 0.0f64..1.0,
    ) {
        use fedprox::net::Message;
        use fedprox::net::codec::{decode, encode};
        let msg = Message::LocalModel {
            device,
            round,
            params: params.clone(),
            weight,
            grad_evals: 123,
            compute_time: 0.5,
        };
        let decoded = decode(&encode(&msg)).unwrap();
        match decoded {
            Message::LocalModel { params: p2, device: d2, round: r2, .. } => {
                prop_assert_eq!(d2, device);
                prop_assert_eq!(r2, round);
                prop_assert_eq!(p2.len(), params.len());
                for (a, b) in p2.iter().zip(&params) {
                    prop_assert!(a.to_bits() == b.to_bits());
                }
            }
            other => prop_assert!(false, "wrong variant {:?}", other),
        }
    }
}
