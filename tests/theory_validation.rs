//! Empirical validation of the paper's theory: Lemma 1's local accuracy,
//! Theorem 1's stationarity decay, and the Section 4.3 time model.

use fedprox::core::theory::{self, Lemma1, TheoryParams};
use fedprox::core::{eval, paramopt};
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::optim::solver::IterateChoice;
use fedprox::prelude::*;

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards = generate(
        &SyntheticConfig { alpha: 0.5, beta: 0.5, seed, ..Default::default() },
        &[120, 150, 90, 110],
    );
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

#[test]
fn more_local_iterations_give_smaller_measured_theta() {
    // Remark 1(2): smaller θ requires larger τ — equivalently, raising τ
    // should lower the measured local-accuracy ratio (11). Federation
    // seed 2: the θ estimate over 3 rounds is noisy, and seed 1 draws
    // data where the τ = 40 estimate lands high; 2-3 show the trend.
    let (devices, test) = federation(2);
    let model = MultinomialLogistic::new(60, 10);
    let measured_theta = |tau: usize| -> f64 {
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_beta(5.0)
            .with_smoothness(3.0)
            .with_tau(tau)
            .with_mu(1.0)
            .with_batch_size(8)
            .with_rounds(3)
            .with_measure_theta(true)
            .with_seed(4);
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        let thetas: Vec<f64> =
            h.records.iter().filter_map(|r| r.theta_measured).collect();
        thetas.iter().sum::<f64>() / thetas.len() as f64
    };
    let small_tau = measured_theta(2);
    let big_tau = measured_theta(40);
    assert!(
        big_tau < small_tau,
        "theta(tau=40) = {big_tau:.3} should be below theta(tau=2) = {small_tau:.3}"
    );
}

#[test]
fn random_iterate_satisfies_paper_criterion_on_average() {
    // With the UniformRandom iterate rule of Algorithm 1 line 10 and a
    // generous τ, the measured θ must improve on no-progress (θ = 1).
    let (devices, test) = federation(2);
    let model = MultinomialLogistic::new(60, 10);
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
        .with_beta(6.0)
        .with_smoothness(3.0)
        .with_tau(30)
        .with_mu(1.0)
        .with_batch_size(8)
        .with_rounds(4)
        .with_measure_theta(true)
        .with_iterate_choice(IterateChoice::UniformRandom)
        .with_seed(8);
    let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    for r in h.records.iter().skip(1) {
        let t = r.theta_measured.unwrap();
        assert!(t < 1.0, "round {}: theta {t}", r.round);
    }
}

#[test]
fn stationarity_gap_decays_with_rounds() {
    // Theorem 1: the averaged squared gradient norm is O(1/T).
    let (devices, test) = federation(3);
    let model = MultinomialLogistic::new(60, 10);
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(10)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(30)
        .with_eval_every(1)
        .with_seed(5);
    let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    let gaps: Vec<f64> = h.records.iter().map(|r| r.grad_norm_sq).collect();
    let early: f64 = gaps[1..6].iter().sum::<f64>() / 5.0;
    let late: f64 = gaps[gaps.len() - 5..].iter().sum::<f64>() / 5.0;
    assert!(late < early, "gap should shrink: early {early:.4} late {late:.4}");
}

#[test]
fn federated_factor_sign_predicts_divergence_tendency() {
    // Configurations with Θ > 0 (big μ, small θ) should converge;
    // the μ = 0 (Θ undefined / μ̃ < 0) regime is the Fig. 4 divergence case.
    let p_good = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: 30.0, sigma_bar_sq: 1.0 };
    assert!(theory::federated_factor(&p_good, 0.05) > 0.0);
    let p_bad = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: 0.51, sigma_bar_sq: 1.0 };
    assert!(theory::federated_factor(&p_bad, 0.05) < 0.0);
}

#[test]
fn corollary1_bound_is_anticonservative_never_violated() {
    // T rounds with factor Θ guarantee avg gap ≤ Δ/(ΘT). We can't know Δ
    // exactly, but the bound must be monotone and positive.
    for t in [10usize, 100, 1000] {
        let b = theory::stationarity_bound(2.0, 0.05, t).unwrap();
        assert!(b > 0.0);
        assert!(theory::stationarity_bound(2.0, 0.05, t * 10).unwrap() < b);
    }
}

#[test]
fn paramopt_objective_matches_eq19_shape() {
    // The optimized objective (1 + γτ)/Θ is the per-ε-unit training time;
    // doubling γ must not decrease the optimum's objective.
    let base = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: f64::NAN, sigma_bar_sq: 1.0 };
    let o1 = paramopt::solve(&base, 1e-3).unwrap();
    let o2 = paramopt::solve(&base, 2e-3).unwrap();
    assert!(o2.objective >= o1.objective);
    // And the τ* from eq. (16) is consistent with Lemma 1 at the optimum.
    let p = TheoryParams { mu: o1.mu, ..base };
    let lo = Lemma1::tau_lower(&p, o1.beta, o1.theta).unwrap();
    assert!((lo - o1.tau).abs() / o1.tau < 1e-6, "lower {lo} vs tau* {}", o1.tau);
}

#[test]
fn theorem1_bound_holds_end_to_end() {
    // Run FedProxVR in a Lemma 1-feasible regime and check the measured
    // average stationarity gap sits below Corollary 1's Δ/(ΘT) bound,
    // with every constant estimated from the run itself. The bound is
    // loose by construction, so this is a one-sided sanity check — but a
    // real one: a sign error in Θ or the gap bookkeeping would trip it.
    let (devices, test) = federation(42);
    let model = MultinomialLogistic::new(60, 10);
    let w0 = {
        use fedprox::models::LossModel;
        model.init_params(42)
    };

    // Constants: generous (worst-case-ish) L, convex loss → λ small.
    let est = fedprox::models::estimate::estimate_constants(
        &model,
        &devices[0].data,
        &w0,
        &fedprox::models::estimate::EstimateConfig::default(),
    );
    let l = est.smoothness_max.max(1.0);
    let sigma = eval::empirical_sigma_bar_sq(&model, &devices, &w0).unwrap();

    // Pick the μ (from a coarse grid) that maximises Θ at a small θ.
    let p = TheoryParams { smoothness: l, lambda: 0.01, mu: f64::NAN, sigma_bar_sq: sigma };
    let theta = 0.05;
    let (best_mu, capital) = [10.0, 30.0, 100.0, 300.0, 1000.0]
        .iter()
        .map(|&mu| (mu, theory::federated_factor(&TheoryParams { mu, ..p }, theta)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(capital > 0.0, "no positive federated factor found");

    let rounds = 20;
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(6.0)
        .with_smoothness(l)
        .with_tau(30)
        .with_mu(best_mu)
        .with_batch_size(8)
        .with_rounds(rounds)
        .with_eval_every(1)
        .with_iterate_choice(IterateChoice::UniformRandom)
        .with_seed(42);
    let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    assert!(!h.diverged());

    // Δ(w̄⁰) upper estimate: initial loss minus the best loss seen (the
    // true optimum is below it, which only loosens the bound's numerator
    // estimate — acceptable for a one-sided check with margin).
    let f0 = h.records[0].train_loss;
    let fmin = h.records.iter().map(|r| r.train_loss).fold(f64::INFINITY, f64::min);
    let delta0 = (f0 - fmin).max(1e-9) * 2.0; // margin for the unseen optimum
    let bound = theory::stationarity_bound(delta0, capital, rounds).unwrap();
    let measured = h
        .records
        .iter()
        .skip(1)
        .map(|r| r.grad_norm_sq)
        .sum::<f64>()
        / rounds as f64;
    assert!(
        measured <= bound,
        "measured avg gap {measured} exceeded the Theorem 1 bound {bound} \
         (Theta = {capital}, Delta = {delta0})"
    );
}

#[test]
fn empirical_sigma_matches_generator_knob() {
    // Synthetic(2,2) must measure as more heterogeneous than iid data.
    let model = MultinomialLogistic::new(60, 10);
    let w = model.init_params(1);
    let measure = |alpha: f64, iid: bool| -> f64 {
        let shards = generate(
            &SyntheticConfig { alpha, beta: alpha, iid, seed: 10, ..Default::default() },
            &[200, 200, 200],
        );
        let devices: Vec<Device> =
            shards.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        eval::empirical_sigma_bar_sq(&model, &devices, &w).unwrap()
    };
    let iid = measure(0.0, true);
    let het = measure(2.0, false);
    assert!(het > 2.0 * iid, "het {het:.3} vs iid {iid:.3}");
}
