//! fedscope health-event regression tests: the JSONL codec must be
//! lossless over the full `health`/`anomaly` value space (a seeded
//! property sweep, not a handful of examples), and a seeded diverging
//! run must raise *precisely* the typed anomalies its failure mode
//! implies — exact counts, exact rounds, exact rules. Any extra or
//! missing anomaly means a monitor rule moved or double-fires.
//!
//! Gated on the `telemetry` feature: without it the health monitor is
//! compiled out and there is nothing to observe.

#![cfg(feature = "telemetry")]
// Module-level helpers below sit outside #[test] fns, where
// clippy.toml's allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use fedprox::core::DivergenceCause;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::MultinomialLogistic;
use fedprox::prelude::*;
use fedprox_telemetry::event::{AnomalyRule, Event};
use fedprox_telemetry::{collector, jsonl};

/// The collector is process-global; tests that arm it must not
/// interleave.
static COLLECTOR_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

// ---------------------------------------------------------------------
// Property sweep: JSONL round-trip over randomized health/anomaly events
// ---------------------------------------------------------------------

/// SplitMix64 — the same generator the data layer uses for seeding.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform in [0, 1).
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A finite float spanning many magnitudes (and both signs), so the
/// sweep exercises the codec's shortest-round-trip formatting across
/// exponents, not just friendly values.
fn spread(state: &mut u64) -> f64 {
    let sign = if splitmix(state) % 2 == 0 { 1.0 } else { -1.0 };
    let exp = (splitmix(state) % 41) as i32 - 20; // 1e-20 ..= 1e20
    sign * unit(state) * 10f64.powi(exp)
}

fn maybe_f64(state: &mut u64) -> Option<f64> {
    if splitmix(state) % 3 == 0 { None } else { Some(spread(state)) }
}

#[test]
fn randomized_health_and_anomaly_events_roundtrip_through_jsonl() {
    let mut s = 0x5EED_FED5_C0DE_0001u64;
    let mut events = Vec::new();
    for _ in 0..256 {
        events.push(Event::Health {
            round: (splitmix(&mut s) % 10_000) as u32,
            train_loss: spread(&mut s),
            loss_delta: spread(&mut s),
            grad_norm_sq: spread(&mut s),
            theta: maybe_f64(&mut s),
            theta_lo: maybe_f64(&mut s),
            theta_hi: maybe_f64(&mut s),
            bound: maybe_f64(&mut s),
            dir_mean_sq: spread(&mut s),
            dir_m2: spread(&mut s),
            dir_anchor_sq: spread(&mut s),
            dir_steps: splitmix(&mut s) % (1 << 40),
            skew: maybe_f64(&mut s),
        });
        let rules = AnomalyRule::all();
        events.push(Event::Anomaly {
            round: (splitmix(&mut s) % 10_000) as u32,
            rule: rules[(splitmix(&mut s) % rules.len() as u64) as usize],
            device: if splitmix(&mut s) % 3 == 0 {
                None
            } else {
                Some((splitmix(&mut s) % 1_000) as u32)
            },
            value: spread(&mut s),
            limit: spread(&mut s),
        });
    }
    let text = jsonl::to_jsonl(&events);
    let parsed = jsonl::parse(&text).expect("serialized health trace failed to parse");
    assert_eq!(events, parsed, "health/anomaly JSONL encode/decode is not lossless");
}

// ---------------------------------------------------------------------
// Seeded diverging runs: exact typed-anomaly accounting
// ---------------------------------------------------------------------

fn federation(seed: u64) -> (Vec<Device>, Dataset) {
    let shards = generate(&SyntheticConfig { seed, ..Default::default() }, &[50, 70, 40]);
    let (train, test) = split_federation(&shards, seed);
    (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
}

fn armed_run(cfg: FedConfig) -> (History, Vec<Event>) {
    let (devices, test) = federation(9);
    let model = MultinomialLogistic::new(60, 10);
    collector::reset();
    collector::arm();
    let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    let events = collector::drain();
    collector::disarm();
    (h, events)
}

fn split_health(events: &[Event]) -> (Vec<&Event>, Vec<&Event>) {
    (
        events.iter().filter(|e| matches!(e, Event::Health { .. })).collect(),
        events.iter().filter(|e| matches!(e, Event::Anomaly { .. })).collect(),
    )
}

#[test]
fn loss_guard_divergence_raises_exactly_one_typed_anomaly() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(5)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(6)
        .with_eval_every(1)
        .with_seed(7);
    // Any real loss trips the guard at the first evaluation.
    cfg.loss_guard = 1e-6;
    let (h, events) = armed_run(cfg);

    assert!(h.diverged());
    assert_eq!(h.divergence, DivergenceCause::LossGuard { round: 1 });
    assert_eq!(h.rounds_run, 1, "the run must stop at the guarded round");

    let (healths, anomalies) = split_health(&events);
    // Only the round-0 baseline evaluation produced a health sample —
    // the guarded round emits its anomaly *instead of* a sample.
    assert_eq!(healths.len(), 1, "unexpected health samples: {healths:?}");
    assert!(matches!(healths[0], Event::Health { round: 0, .. }));
    assert_eq!(anomalies.len(), 1, "unexpected anomalies: {anomalies:?}");
    match anomalies[0] {
        Event::Anomaly { round, rule, device, value, limit } => {
            assert_eq!(*round, 1);
            assert_eq!(*rule, AnomalyRule::LossGuard);
            assert_eq!(*device, None, "loss guard is a global rule");
            assert_eq!(*limit, 1e-6);
            assert!(value.is_finite() && *value > *limit);
        }
        _ => unreachable!(),
    }
}

// The NonFinite divergence path is deliberately *not* driven end-to-end
// here: in debug test builds the tensor numeric guards abort on the
// first non-finite op output (pinning the origin), so a run can never
// reach the round-level non-finite check — that path only exists in
// guard-free release builds. Its monitor rule and `DivergenceCause`
// attribution are unit-tested in `fedprox-core` instead.

#[test]
fn healthy_run_emits_samples_and_no_anomalies() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(5)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(6)
        .with_eval_every(2)
        .with_seed(7)
        .with_measure_theta(true);
    let (h, events) = armed_run(cfg);

    assert!(!h.diverged());
    let (healths, anomalies) = split_health(&events);
    // Round 0 baseline + evaluations at rounds 2, 4, 6.
    assert_eq!(healths.len(), h.records.len(), "one health sample per evaluated round");
    assert!(anomalies.is_empty(), "healthy run raised anomalies: {anomalies:?}");
    // Armed runs carry live direction statistics on evaluated rounds.
    let probed = healths.iter().any(|e| matches!(e, Event::Health { dir_steps, .. } if *dir_steps > 0));
    assert!(probed, "no health sample carried direction-probe data: {healths:?}");
    // Samples must round-trip, since `--health` files are their JSONL.
    let owned: Vec<Event> = events
        .iter()
        .filter(|e| matches!(e, Event::Health { .. } | Event::Anomaly { .. }))
        .cloned()
        .collect();
    let parsed = jsonl::parse(&jsonl::to_jsonl(&owned)).expect("health JSONL parse");
    assert_eq!(owned, parsed);
}
