//! End-to-end integration tests spanning the whole workspace: data
//! generation → partitioning → federated training → metrics.

use fedprox::core::config::NetRunnerOptions;
use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::data::Dataset;
use fedprox::models::{Mlp, MultinomialLogistic};
use fedprox::prelude::*;

fn synthetic_federation(seed: u64, sizes: &[usize]) -> (Vec<Device>, Dataset) {
    let shards =
        generate(&SyntheticConfig { seed, ..Default::default() }, sizes);
    let (train, test) = split_federation(&shards, seed);
    let devices = train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    (devices, test)
}

fn cfg(alg: Algorithm) -> FedConfig {
    FedConfig::new(alg)
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(8)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(15)
        .with_eval_every(5)
        .with_seed(99)
}

#[test]
fn all_algorithms_learn_synthetic_logistic() {
    let (devices, test) = synthetic_federation(1, &[80, 120, 60]);
    let model = MultinomialLogistic::new(60, 10);
    for alg in [
        Algorithm::FedAvg,
        Algorithm::FedProxVr(EstimatorKind::Svrg),
        Algorithm::FedProxVr(EstimatorKind::Sarah),
    ] {
        let h = FederatedTrainer::new(&model, &devices, &test, cfg(alg)).run().expect("run");
        assert!(!h.diverged(), "{} diverged", alg.name());
        let first = h.records[0].train_loss;
        let last = h.final_loss().unwrap();
        assert!(last < first * 0.9, "{}: {first:.3} -> {last:.3}", alg.name());
        assert!(h.best_accuracy() > 0.2, "{}: acc {}", alg.name(), h.best_accuracy());
    }
}

#[test]
fn nonconvex_mlp_learns_federatedly() {
    let (devices, test) = synthetic_federation(2, &[100, 100]);
    let model = Mlp::new(60, 16, 10);
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_rounds(20),
    )
    .run().expect("run");
    assert!(!h.diverged());
    assert!(h.final_loss().unwrap() < h.records[0].train_loss);
}

#[test]
fn three_backends_produce_identical_metrics() {
    let (devices, test) = synthetic_federation(3, &[60, 90, 40]);
    let model = MultinomialLogistic::new(60, 10);
    let base = cfg(Algorithm::FedProxVr(EstimatorKind::Sarah)).with_rounds(6);

    let h_seq = FederatedTrainer::new(&model, &devices, &test, base.clone()).run().expect("run");
    let h_par = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        base.clone().with_runner(RunnerKind::Parallel),
    )
    .run().expect("run");
    let h_net = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        base.with_runner(RunnerKind::Network(NetRunnerOptions::default())),
    )
    .run().expect("run");

    assert_eq!(h_seq.records.len(), h_par.records.len());
    assert_eq!(h_seq.records.len(), h_net.records.len());
    for ((a, b), c) in h_seq.records.iter().zip(&h_par.records).zip(&h_net.records) {
        assert_eq!(a.train_loss, b.train_loss, "seq vs par at round {}", a.round);
        assert_eq!(a.train_loss, c.train_loss, "seq vs net at round {}", a.round);
        assert_eq!(a.test_accuracy, c.test_accuracy);
    }
}

#[test]
fn single_sample_devices_work() {
    // Failure-injection: degenerate federation with 1-sample shards.
    let shards = generate(
        &SyntheticConfig { seed: 5, ..Default::default() },
        &[1, 1, 200],
    );
    let devices: Vec<Device> =
        shards.iter().cloned().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let test = shards[2].clone();
    let model = MultinomialLogistic::new(60, 10);
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_batch_size(4).with_rounds(5),
    )
    .run().expect("run");
    assert!(!h.diverged());
    assert_eq!(h.rounds_run, 5);
}

#[test]
fn histories_export_and_reimport() {
    let (devices, test) = synthetic_federation(6, &[50, 70]);
    let model = MultinomialLogistic::new(60, 10);
    let h = FederatedTrainer::new(&model, &devices, &test, cfg(Algorithm::FedAvg)).run().expect("run");
    let json = h.to_json();
    let back = History::from_json(&json).unwrap();
    // Compare within 1 ULP: the vendored serde_json's float parser is
    // occasionally off by one ULP on roundtrip, which is irrelevant for
    // experiment records.
    assert_eq!(back.records.len(), h.records.len());
    let close = |a: f64, b: f64| (a - b).abs() <= f64::EPSILON * a.abs().max(b.abs()).max(1.0);
    for (x, y) in back.records.iter().zip(&h.records) {
        assert_eq!(x.round, y.round);
        assert!(close(x.train_loss, y.train_loss));
        assert!(close(x.test_accuracy, y.test_accuracy));
        assert!(close(x.grad_norm_sq, y.grad_norm_sq));
        assert_eq!(x.grad_evals, y.grad_evals);
    }
    let csv = h.to_csv();
    assert_eq!(csv.trim().lines().count(), h.records.len() + 1);
}

#[test]
fn seeded_runs_are_fully_reproducible() {
    let (devices, test) = synthetic_federation(7, &[60, 60]);
    let model = MultinomialLogistic::new(60, 10);
    let a = FederatedTrainer::new(&model, &devices, &test, cfg(Algorithm::FedAvg)).run().expect("run");
    let b = FederatedTrainer::new(&model, &devices, &test, cfg(Algorithm::FedAvg)).run().expect("run");
    assert_eq!(a.records, b.records);
    let c = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(Algorithm::FedAvg).with_seed(100),
    )
    .run().expect("run");
    assert_ne!(a.records, c.records);
}
