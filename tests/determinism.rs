//! Determinism regression: the whole stack (synthetic data → partition →
//! FedProxVR-SVRG training) is seeded, so two runs with the same seed must
//! produce *bitwise-identical* round metrics — not merely close. Any drift
//! here means an unseeded RNG, iteration-order nondeterminism, or a
//! platform-dependent reduction crept in. A third run with a different
//! seed must differ, proving the comparison is not vacuous.

// Module-level helpers below sit outside #[test] fns, where
// clippy.toml's allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use fedprox::data::split::split_federation;
use fedprox::data::synthetic::{generate, SyntheticConfig};
use fedprox::prelude::*;

fn run(data_seed: u64, cfg_seed: u64) -> History {
    // Synthetic(α = 1, β = 1) — the paper's heterogeneous setting and the
    // SyntheticConfig default.
    let shards = generate(
        &SyntheticConfig { seed: data_seed, ..Default::default() },
        &[80, 120, 60],
    );
    let (train, test) = split_federation(&shards, data_seed);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = fedprox::models::MultinomialLogistic::new(60, 10);
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(8)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(10)
        .with_eval_every(2)
        .with_seed(cfg_seed);
    FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run")
}

/// Every float in a record, as raw bits, so NaN-safe exact equality and
/// "close but not equal" drift both show up.
fn fingerprint(h: &History) -> Vec<(usize, u64, u64, u64, u64)> {
    h.records
        .iter()
        .map(|r| {
            (
                r.round,
                r.train_loss.to_bits(),
                r.test_accuracy.to_bits(),
                r.grad_norm_sq.to_bits(),
                r.grad_evals,
            )
        })
        .collect()
}

/// The collector is process-global, and an armed window captures Health
/// events from *any* trainer in this process — so every trainer-running
/// test in this binary takes the lock, not just the armed ones.
static COLLECTOR_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn same_seed_runs_are_bitwise_identical() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = run(1, 42);
    let b = run(1, 42);
    assert!(!a.diverged() && !b.diverged());
    assert!(!a.records.is_empty());
    assert_eq!(fingerprint(&a), fingerprint(&b), "same-seed runs drifted");
}

#[test]
fn different_seed_runs_differ() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = run(1, 42);
    let c = run(1, 43);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&c),
        "different seeds produced identical trajectories — seeding is inert"
    );
}

/// The kernel layer is part of the determinism contract twice over:
/// (a) a full networked run under the tiled-parallel kernels, executed
/// twice with the same seed, must be bitwise-identical — trajectory and
/// final model — and (b) the tiled kernels must reproduce the scalar
/// cpu-reference trajectory at strict tolerance zero, so kernel choice
/// is observationally invisible to training.
#[test]
fn tiled_kernel_networked_runs_are_bitwise_identical_and_match_reference() {
    use fedprox_tensor::kernel::{with_kernel, Kernel};
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let networked = |kernel: Kernel| {
        with_kernel(kernel, || {
            let shards =
                generate(&SyntheticConfig { seed: 5, ..Default::default() }, &[80, 120, 60]);
            let (train, test) = split_federation(&shards, 5);
            let devices: Vec<Device> =
                train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
            let model = fedprox::models::MultinomialLogistic::new(60, 10);
            let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
                .with_beta(5.0)
                .with_smoothness(3.0)
                .with_tau(8)
                .with_mu(0.5)
                .with_batch_size(8)
                .with_rounds(10)
                .with_eval_every(2)
                .with_seed(21)
                .with_runner(RunnerKind::Network(
                    fedprox::core::config::NetRunnerOptions::default(),
                ));
            FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run")
        })
    };
    let a = networked(Kernel::TiledParallel);
    let b = networked(Kernel::TiledParallel);
    assert!(!a.diverged() && !b.diverged());
    assert!(!a.records.is_empty());
    assert_eq!(fingerprint(&a), fingerprint(&b), "tiled same-seed runs drifted");
    for (x, y) in a.final_model.iter().zip(&b.final_model) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    // Tiled vs cpu-reference: trajectory agreement at tolerance 0.
    let r = networked(Kernel::Reference);
    assert_eq!(
        fingerprint(&a),
        fingerprint(&r),
        "tiled kernels changed the trajectory relative to the cpu reference"
    );
    for (x, y) in a.final_model.iter().zip(&r.final_model) {
        assert_eq!(x.to_bits(), y.to_bits(), "tiled final model diverged from reference");
    }
}

/// A networked run under a fault plan: device 1 crashes at round 3 and
/// device 2's link drops 20% of attempts over the whole horizon.
fn run_faulted(cfg_seed: u64) -> History {
    let shards = generate(&SyntheticConfig { seed: 2, ..Default::default() }, &[80, 120, 60]);
    let (train, test) = split_federation(&shards, 2);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = fedprox::models::MultinomialLogistic::new(60, 10);
    let resil =
        Resilience::with_plan(FaultPlan::new().crash(1, 3).flaky(2, 0.2, 1, 10));
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(8)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(10)
        .with_eval_every(2)
        .with_seed(cfg_seed)
        .with_resilience(resil)
        .with_runner(RunnerKind::Network(
            fedprox::core::config::NetRunnerOptions::default(),
        ));
    FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run")
}

/// The fault-injection machinery is part of the determinism contract:
/// a faulted run re-executed with the same seed must reproduce the model
/// trajectory, the simulated clock, and every participation record
/// bit-for-bit.
#[test]
fn faulted_networked_runs_are_bitwise_identical() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = run_faulted(9);
    let b = run_faulted(9);
    assert!(!a.diverged() && !b.diverged());
    assert_eq!(a.participation.len(), 10);
    assert!(
        a.participation.iter().skip(2).all(|p| p.outcomes[1] == DeviceOutcome::Crashed),
        "device 1 must stay crashed from round 3 on"
    );
    assert_eq!(fingerprint(&a), fingerprint(&b), "faulted same-seed runs drifted");
    assert_eq!(a.participation, b.participation);
    assert_eq!(a.total_sim_time.to_bits(), b.total_sim_time.to_bits());
    assert_eq!(a.final_model.len(), b.final_model.len());
    for (x, y) in a.final_model.iter().zip(&b.final_model) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    // And a different seed still changes the trajectory.
    let c = run_faulted(10);
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

/// A zero-fault resilience policy must leave the *model* trajectory
/// bitwise-identical to a strict run: every device responds every round
/// and the renormalization weight sum is exactly 1. (Simulated time may
/// differ — the resilient runtime draws its delays from per-(round,
/// device) streams rather than the strict mode's single sequential
/// stream — so only the math is compared.)
#[test]
fn zero_fault_resilience_keeps_the_strict_trajectory() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let strict = run(1, 42);
    let shards = generate(&SyntheticConfig { seed: 1, ..Default::default() }, &[80, 120, 60]);
    let (train, test) = split_federation(&shards, 1);
    let devices: Vec<Device> =
        train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let model = fedprox::models::MultinomialLogistic::new(60, 10);
    let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(3.0)
        .with_tau(8)
        .with_mu(0.5)
        .with_batch_size(8)
        .with_rounds(10)
        .with_eval_every(2)
        .with_seed(42)
        .with_resilience(Resilience::default());
    let resilient = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    assert_eq!(
        fingerprint(&strict),
        fingerprint(&resilient),
        "an empty fault plan changed the training math"
    );
    for (x, y) in strict.final_model.iter().zip(&resilient.final_model) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(resilient.participation.len(), 10);
    assert!(resilient.participation.iter().all(|p| p.responders() == 3 && !p.skipped));
    assert!(strict.participation.is_empty());
}

/// Telemetry is observation, never perturbation: arming the collector
/// mid-process must leave the training math bitwise-untouched. (The
/// telemetry-off build is covered by the tests above being byte-for-byte
/// identical across `--features telemetry` on and off.)
#[cfg(feature = "telemetry")]
#[test]
fn armed_telemetry_does_not_perturb_the_trajectory() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plain = run(1, 42);
    fedprox_telemetry::collector::reset();
    fedprox_telemetry::collector::arm();
    let traced = run(1, 42);
    let events = fedprox_telemetry::collector::drain();
    fedprox_telemetry::collector::disarm();
    assert!(!events.is_empty(), "armed run recorded no events");
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&traced),
        "recording telemetry changed the training trajectory"
    );
}

/// Profiling is part of the determinism contract: an armed collector
/// building span trees (scope-stack pushes, path aggregation, self-time
/// accounting) must leave the training math bitwise-untouched, and the
/// deterministic columns of the profile itself — per-path activation
/// counts — must be identical across same-seed runs. (Wall-clock and,
/// in facade tests, allocation columns are zero/noise respectively;
/// the alloc-column gate runs in CI on the bench binaries, where the
/// counting-allocator probe is installed.)
#[cfg(feature = "telemetry")]
#[test]
fn armed_profiling_is_bitwise_deterministic() {
    use fedprox_telemetry::event::Event;
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plain = run(1, 42);
    let profiled = || {
        fedprox_telemetry::collector::reset();
        fedprox_telemetry::collector::arm();
        let h = run(1, 42);
        let events = fedprox_telemetry::collector::drain();
        fedprox_telemetry::collector::disarm();
        let paths: Vec<(String, u64)> = events
            .into_iter()
            .filter_map(|e| match e {
                Event::PathStat { path, count, .. } => Some((path, count)),
                _ => None,
            })
            .collect();
        (h, paths)
    };
    let (ha, pa) = profiled();
    let (hb, pb) = profiled();
    assert!(!ha.diverged() && !hb.diverged());
    assert!(
        pa.iter().any(|(p, _)| p.split('/').count() >= 4),
        "profiled run built no ≥4-level span tree: {pa:?}"
    );
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&ha),
        "building span trees changed the training trajectory"
    );
    assert_eq!(pa, pb, "same-seed profiles recorded different span trees");
}

/// The observability pipeline is pure observation: arming the collector
/// and streaming the obs event feed to disk — run-ledger header first,
/// exactly as the bench binaries' `--obs PATH` wiring does — must leave
/// the trajectory, the simulated clock, and the final model bitwise
/// identical to the unarmed run.
#[cfg(feature = "telemetry")]
#[test]
fn armed_obs_stream_is_invisible_to_trajectory_and_model() {
    use fedprox_telemetry::{collector, event::Event};
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let networked = || {
        let shards = generate(&SyntheticConfig { seed: 3, ..Default::default() }, &[80, 120, 60]);
        let (train, test) = split_federation(&shards, 3);
        let devices: Vec<Device> =
            train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        let model = fedprox::models::MultinomialLogistic::new(60, 10);
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_beta(5.0)
            .with_smoothness(3.0)
            .with_tau(8)
            .with_mu(0.5)
            .with_batch_size(8)
            .with_rounds(10)
            .with_eval_every(2)
            .with_seed(42)
            .with_runner(RunnerKind::Network(
                fedprox::core::config::NetRunnerOptions::default(),
            ));
        FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run")
    };
    let plain = networked();
    let path = std::env::temp_dir().join("fedprox_test_obs_determinism.jsonl");
    collector::reset();
    collector::arm();
    collector::stream_to(path.to_str().expect("utf8 temp path")).expect("attach obs sink");
    collector::record_event(Event::RunMeta {
        version: 1,
        config: "deadbeefdeadbeef".into(),
        seed: 42,
        kernel: "reference".into(),
        faults: String::new(),
        features: "telemetry".into(),
        crates: String::new(),
    });
    let traced = networked();
    let _tail = collector::drain();
    collector::disarm();
    let text = std::fs::read_to_string(&path).expect("read obs stream");
    std::fs::remove_file(&path).ok();
    // The stream is real: ledger header first, then the round feed.
    assert!(
        text.lines().next().is_some_and(|l| l.contains("\"t\":\"run_meta\"")),
        "obs stream must open with the run-ledger header"
    );
    assert!(
        text.contains("\"t\":\"device_round\""),
        "obs stream must carry the per-device round feed"
    );
    // And invisible: trajectory, clock, and model are bit-identical.
    assert!(!plain.diverged() && !traced.diverged());
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&traced),
        "streaming the obs feed changed the training trajectory"
    );
    assert_eq!(plain.total_sim_time.to_bits(), traced.total_sim_time.to_bits());
    assert_eq!(plain.final_model.len(), traced.final_model.len());
    for (x, y) in plain.final_model.iter().zip(&traced.final_model) {
        assert_eq!(x.to_bits(), y.to_bits(), "obs streaming perturbed the final model");
    }
}

/// The fedscope health stream is part of the determinism contract:
/// health samples and anomalies derive only from the seeded trajectory
/// (never from wall clocks), so two armed same-seed runs must serialize
/// to byte-identical `--health` JSONL.
#[cfg(feature = "telemetry")]
#[test]
fn armed_health_stream_is_bitwise_reproducible() {
    use fedprox_telemetry::event::Event;
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let health_jsonl = || {
        fedprox_telemetry::collector::reset();
        fedprox_telemetry::collector::arm();
        let h = run(1, 42);
        let events = fedprox_telemetry::collector::drain();
        fedprox_telemetry::collector::disarm();
        let health: Vec<Event> = events
            .into_iter()
            .filter(|e| matches!(e, Event::Health { .. } | Event::Anomaly { .. }))
            .collect();
        (h, fedprox_telemetry::jsonl::to_jsonl(&health))
    };
    let (ha, a) = health_jsonl();
    let (hb, b) = health_jsonl();
    assert!(!ha.diverged() && !hb.diverged());
    assert!(!a.is_empty(), "armed run produced no health samples");
    assert_eq!(a, b, "same-seed health streams serialized differently");
}
