//! Every model in the zoo, trained federatedly — the System Model's
//! example losses (linear regression, SVM) included, plus the sparse
//! FedProxVR extension.

use fedprox::data::Dataset;
use fedprox::models::{Cnn, CnnSpec, LinearRegression, Mlp, SmoothedSvm};
use fedprox::prelude::*;
use fedprox::tensor::Matrix;

fn regression_devices(n_dev: usize) -> (Vec<Device>, Dataset) {
    let true_w = [1.5, -2.0, 0.5];
    let make = |id: usize, n: usize| -> Dataset {
        let mut f = Matrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let x = [
                ((i * 3 + id * 17) as f64 * 0.31).sin(),
                ((i * 7 + id * 5) as f64 * 0.53).cos(),
                ((i + id) as f64 * 0.11).sin(),
            ];
            f.row_mut(i).copy_from_slice(&x);
            // Device-specific intercept shift = heterogeneity.
            y.push(true_w.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>()
                + 0.05 * id as f64);
        }
        Dataset::new(f, y, 0)
    };
    let devices: Vec<Device> =
        (0..n_dev).map(|id| Device::new(id, make(id, 60))).collect();
    let test = make(99, 40);
    (devices, test)
}

fn binary_devices(n_dev: usize) -> (Vec<Device>, Dataset) {
    let make = |id: usize, n: usize| -> Dataset {
        let mut f = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let cx = if cls == 0 { -2.0 } else { 2.0 };
            f.row_mut(i)[0] = cx + ((i * 13 + id * 7) as f64 * 0.47).sin();
            f.row_mut(i)[1] = cx * 0.5 + ((i * 11 + id * 3) as f64 * 0.29).cos();
            y.push(cls as f64);
        }
        Dataset::new(f, y, 2)
    };
    let devices: Vec<Device> =
        (0..n_dev).map(|id| Device::new(id, make(id, 50))).collect();
    let test = make(77, 60);
    (devices, test)
}

fn cfg(alg: Algorithm) -> FedConfig {
    FedConfig::new(alg)
        .with_beta(4.0)
        .with_smoothness(1.0)
        .with_tau(10)
        .with_mu(0.2)
        .with_batch_size(8)
        .with_rounds(20)
        .with_eval_every(10)
        .with_runner(RunnerKind::Parallel)
        .with_seed(31)
}

#[test]
fn linear_regression_federated() {
    let (devices, test) = regression_devices(5);
    let model = LinearRegression::with_intercept(3);
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(Algorithm::FedProxVr(EstimatorKind::Sarah)),
    )
    .run().expect("run");
    assert!(!h.diverged());
    assert!(
        h.final_loss().unwrap() < 0.1 * h.records[0].train_loss,
        "linreg: {} -> {}",
        h.records[0].train_loss,
        h.final_loss().unwrap()
    );
}

#[test]
fn svm_federated_reaches_high_accuracy() {
    let (devices, test) = binary_devices(4);
    let model = SmoothedSvm::new(2, 0.5).with_l2(0.01);
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)),
    )
    .run().expect("run");
    assert!(!h.diverged());
    assert!(h.best_accuracy() > 0.95, "svm acc {}", h.best_accuracy());
}

#[test]
fn mlp_federated_all_algorithms() {
    let (devices, test) = binary_devices(3);
    let model = Mlp::new(2, 8, 2);
    for alg in [Algorithm::FedAvg, Algorithm::FedProx, Algorithm::Fsvrg] {
        let h = FederatedTrainer::new(&model, &devices, &test, cfg(alg)).run().expect("run");
        assert!(!h.diverged(), "{}", alg.name());
        assert!(
            h.final_loss().unwrap() < h.records[0].train_loss,
            "{} did not descend",
            alg.name()
        );
    }
}

#[test]
fn hidden_cnn_federated() {
    // Tiny CNN with the McMahan-style dense layer on 8x8 inputs.
    let spec = CnnSpec::tiny_hidden();
    let dim = spec.side * spec.side;
    let make = |id: usize, n: usize| -> Dataset {
        let mut f = Matrix::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % spec.classes;
            for j in 0..dim {
                // Class-dependent intensity bands + noise-ish hash.
                let base = 0.2 + 0.3 * cls as f64;
                let h = (((i * 31 + j * 7 + id * 13) % 17) as f64) / 17.0;
                f.row_mut(i)[j] = (base + 0.2 * h).min(1.0);
            }
            y.push(cls as f64);
        }
        Dataset::new(f, y, spec.classes)
    };
    let devices: Vec<Device> = (0..3).map(|id| Device::new(id, make(id, 24))).collect();
    let test = make(9, 18);
    let model = Cnn::new(spec);
    let h = FederatedTrainer::new(
        &model,
        &devices,
        &test,
        cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_rounds(10).with_smoothness(2.0),
    )
    .run().expect("run");
    assert!(!h.diverged());
    assert!(h.final_loss().unwrap() < h.records[0].train_loss);
}

#[test]
fn sparse_fedproxvr_zeroes_noise_features() {
    // 2 informative + 18 noise features; L1 should kill most of the noise
    // block in the final global model.
    let make = |id: usize, n: usize| -> Dataset {
        let mut f = Matrix::zeros(n, 20);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let sign = if cls == 0 { -1.0 } else { 1.0 };
            f.row_mut(i)[0] = sign * (1.0 + ((i + id) as f64 * 0.37).sin().abs());
            f.row_mut(i)[1] = sign * 0.7;
            for j in 2..20 {
                f.row_mut(i)[j] = (((i * 7 + j * 13 + id * 3) % 11) as f64 - 5.0) / 5.0;
            }
            y.push(cls as f64);
        }
        Dataset::new(f, y, 2)
    };
    let devices: Vec<Device> = (0..4).map(|id| Device::new(id, make(id, 60))).collect();
    let test = make(8, 40);
    let model = fedprox::models::MultinomialLogistic::new(20, 2);
    let run = |l1: f64| {
        FederatedTrainer::new(
            &model,
            &devices,
            &test,
            cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_l1(l1).with_rounds(40),
        )
        .run()
        .expect("run")
    };
    let dense = run(0.0);
    let sparse = run(0.05);
    let nonzero = |h: &History| h.final_model.iter().filter(|v| v.abs() > 1e-6).count();
    assert!(
        nonzero(&sparse) < nonzero(&dense),
        "sparse {} vs dense {}",
        nonzero(&sparse),
        nonzero(&dense)
    );
    // And it still classifies.
    assert!(sparse.best_accuracy() > 0.9, "sparse acc {}", sparse.best_accuracy());
}
