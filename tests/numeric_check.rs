//! Guard-layer proof (runs only under `--features check`): inject a NaN
//! into real kernels and assert the numeric guard aborts with the
//! offending-op context, end to end through the facade. With the feature
//! off this file compiles to nothing, so plain `cargo test` stays guard-
//! free in release and debug-asserted in debug.
#![cfg(feature = "check")]

use fedprox::tensor::{activations, guard, vecops, Matrix};
use std::panic::catch_unwind;

fn guard_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let payload = catch_unwind(f).expect_err("guard must fire");
    payload
        .downcast_ref::<String>()
        .cloned()
        .expect("guard panics carry a formatted String payload")
}

#[test]
fn guards_are_compiled_in() {
    assert!(guard::guards_active(), "check feature must force guards on");
}

#[test]
fn matmul_guard_names_the_op() {
    let a = Matrix::from_rows(&[&[1.0, f64::NAN], &[0.0, 1.0]]);
    let b = Matrix::identity(2);
    let msg = guard_message(move || {
        let _ = a.matmul(&b);
    });
    assert!(msg.contains("numeric guard: matmul"), "{msg}");
    assert!(msg.contains("NaN"), "{msg}");
}

#[test]
fn softmax_guard_fires_on_nan_logits() {
    let msg = guard_message(|| {
        let mut logits = [0.0, f64::NAN, 1.0];
        activations::softmax_inplace(&mut logits);
    });
    assert!(msg.contains("numeric guard: softmax"), "{msg}");
}

#[test]
fn reduction_guard_fires_on_overflow_to_infinity() {
    let msg = guard_message(|| {
        let _ = vecops::dot(&[f64::MAX, f64::MAX], &[f64::MAX, f64::MAX]);
    });
    assert!(msg.contains("numeric guard: dot reduction"), "{msg}");
    assert!(msg.contains("inf"), "{msg}");
}

#[test]
fn estimator_guard_reports_svrg_direction() {
    use fedprox::data::Dataset;
    use fedprox::models::LinearRegression;
    use fedprox::optim::estimator::{Estimator, EstimatorKind};

    // Poison the *injected* anchor gradient (the FSVRG-style server-side
    // anchor), keeping the data clean: every inner kernel stays finite,
    // so the estimator's own direction check is the first guard to fire
    // and must name eq. (8a).
    let clean = Dataset::new(
        Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
        vec![1.0, -1.0],
        0,
    );
    let model = LinearRegression::new(2);
    let w0 = vec![0.1, -0.2];
    let bad_anchor = vec![0.0, f64::NAN];
    let mut est =
        Estimator::begin_with_anchor_grad(EstimatorKind::Svrg, &model, &w0, &bad_anchor);
    let msg = guard_message(move || {
        est.step(&model, &clean, &[0], &[0.2, -0.1]);
    });
    assert!(msg.contains("numeric guard: SVRG direction (8a)"), "{msg}");
}
