//! Property-based tests of the dataset substrates.

use fedprox_data::images::{generate as gen_images, ImageConfig, ImageStyle};
use fedprox_data::partition::{power_law_sizes, PartitionSpec, Partitioner};
use fedprox_data::split::train_test_split;
use fedprox_data::stats::{gini, label_distribution, tv_distance};
use fedprox_data::synthetic::{generate as gen_synth, SyntheticConfig};
use fedprox_data::Dataset;
use fedprox_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_shards_valid(seed in any::<u64>(), n1 in 1usize..80, n2 in 1usize..80) {
        let cfg = SyntheticConfig { seed, ..Default::default() };
        let shards = gen_synth(&cfg, &[n1, n2]);
        prop_assert_eq!(shards.len(), 2);
        prop_assert_eq!(shards[0].len(), n1);
        prop_assert_eq!(shards[1].len(), n2);
        for s in &shards {
            for i in 0..s.len() {
                prop_assert!(s.x(i).iter().all(|v| v.is_finite()));
                prop_assert!(s.class_of(i) < 10);
            }
        }
    }

    #[test]
    fn image_samples_always_in_unit_cube(seed in any::<u64>(), n in 1usize..30) {
        for style in [ImageStyle::MnistLike, ImageStyle::FashionLike] {
            let cfg = ImageConfig { style, ..ImageConfig::mnist(seed) };
            let d = gen_images(&cfg, n);
            prop_assert_eq!(d.len(), n);
            for i in 0..n {
                prop_assert!(d.x(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn split_partitions_exactly(n in 2usize..200, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let mut f = Matrix::zeros(n, 1);
        for i in 0..n {
            f.row_mut(i)[0] = i as f64;
        }
        let d = Dataset::new(f, vec![0.0; n], 1);
        let (tr, te) = train_test_split(&d, frac, seed);
        prop_assert_eq!(tr.len() + te.len(), n);
        // No sample lost or duplicated.
        let mut ids: Vec<i64> = tr
            .features()
            .as_slice()
            .iter()
            .chain(te.features().as_slice())
            .map(|&v| v as i64)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    #[test]
    fn iid_partition_preserves_label_distribution(seed in any::<u64>()) {
        // Large iid shards should have label distributions close to global.
        let per_class = 60;
        let classes = 5;
        let n = per_class * classes;
        let mut f = Matrix::zeros(n, 1);
        let labels: Vec<f64> = (0..n).map(|i| (i % classes) as f64).collect();
        for i in 0..n {
            f.row_mut(i)[0] = i as f64;
        }
        let d = Dataset::new(f, labels, classes);
        let shards = Partitioner::new(
            PartitionSpec::Iid { sizes: vec![100, 100, 100] },
            seed,
        )
        .partition(&d);
        let global = label_distribution(&d);
        for s in &shards {
            let tv = tv_distance(&label_distribution(s), &global);
            prop_assert!(tv < 0.35, "iid shard too skewed: tv {tv}");
        }
    }

    #[test]
    fn gini_bounded(values in proptest::collection::vec(0usize..10_000, 1..40)) {
        let g = gini(&values);
        prop_assert!((-1e-9..=1.0).contains(&g), "gini {g}");
    }

    #[test]
    fn power_law_deterministic(devices in 1usize..50, seed in any::<u64>()) {
        let a = power_law_sizes(devices, 10, 500, 1.3, seed);
        let b = power_law_sizes(devices, 10, 500, 1.3, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn idx_roundtrip_any_image_dataset(seed in any::<u64>(), n in 1usize..12) {
        use fedprox_data::idx::{dataset_from_buffers, to_idx_buffers};
        let d = gen_images(&ImageConfig::fashion(seed), n);
        let (im, lab) = to_idx_buffers(&d, 28, 28);
        let back = dataset_from_buffers(&im, &lab).unwrap();
        prop_assert_eq!(back.len(), n);
        for i in 0..n {
            prop_assert_eq!(back.class_of(i), d.class_of(i));
        }
    }
}
