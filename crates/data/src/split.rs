//! Seeded train/test splitting. The paper splits every dataset 75% train /
//! 25% test.

use crate::dataset::Dataset;
use crate::synthetic::device_rng;
use rand::seq::SliceRandom;

/// Split `data` into `(train, test)` with `train_frac` of the samples in
/// the training part, after a seeded shuffle.
pub fn train_test_split(data: &Dataset, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!((0.0..=1.0).contains(&train_frac), "train_frac must be in [0,1]");
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut device_rng(seed, 0x5411));
    let cut = (data.len() as f64 * train_frac).round() as usize;
    let (tr, te) = order.split_at(cut.min(data.len()));
    (data.subset(tr), data.subset(te))
}

/// The paper's split: 75% train, 25% test.
pub fn paper_split(data: &Dataset, seed: u64) -> (Dataset, Dataset) {
    train_test_split(data, 0.75, seed)
}

/// Split every shard of a federation 75/25 and pool the per-shard test
/// parts into one global test set — mirroring how the paper forms test
/// data from the same heterogeneous distributions.
pub fn split_federation(shards: &[Dataset], seed: u64) -> (Vec<Dataset>, Dataset) {
    assert!(!shards.is_empty(), "split_federation: no shards");
    let mut train = Vec::with_capacity(shards.len());
    let mut tests = Vec::with_capacity(shards.len());
    for (i, s) in shards.iter().enumerate() {
        let (tr, te) = train_test_split(s, 0.75, seed.wrapping_add(i as u64));
        train.push(tr);
        tests.push(te);
    }
    let test_refs: Vec<&Dataset> = tests.iter().collect();
    (train, Dataset::concat(&test_refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::Matrix;

    fn toy(n: usize) -> Dataset {
        let mut f = Matrix::zeros(n, 1);
        for i in 0..n {
            f.row_mut(i)[0] = i as f64;
        }
        Dataset::new(f, (0..n).map(|i| (i % 3) as f64).collect(), 3)
    }

    #[test]
    fn sizes_add_up() {
        let d = toy(100);
        let (tr, te) = paper_split(&d, 1);
        assert_eq!(tr.len(), 75);
        assert_eq!(te.len(), 25);
    }

    #[test]
    fn disjoint_and_exhaustive() {
        let d = toy(40);
        let (tr, te) = train_test_split(&d, 0.6, 2);
        let mut seen: Vec<f64> = tr
            .features()
            .as_slice()
            .iter()
            .chain(te.features().as_slice())
            .cloned()
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<f64> = (0..40).map(|i| i as f64).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn deterministic() {
        let d = toy(50);
        let (a, _) = train_test_split(&d, 0.5, 7);
        let (b, _) = train_test_split(&d, 0.5, 7);
        assert_eq!(a, b);
        let (c, _) = train_test_split(&d, 0.5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn extreme_fractions() {
        let d = toy(10);
        let (tr, te) = train_test_split(&d, 1.0, 3);
        assert_eq!(tr.len(), 10);
        assert_eq!(te.len(), 0);
        let (tr, te) = train_test_split(&d, 0.0, 3);
        assert_eq!(tr.len(), 0);
        assert_eq!(te.len(), 10);
    }

    #[test]
    fn federation_split_pools_tests() {
        let shards = vec![toy(40), toy(80)];
        let (train, test) = split_federation(&shards, 5);
        assert_eq!(train.len(), 2);
        assert_eq!(train[0].len(), 30);
        assert_eq!(train[1].len(), 60);
        assert_eq!(test.len(), 10 + 20);
    }
}
