//! Procedural MNIST-like and Fashion-MNIST-like image generators.
//!
//! The real datasets cannot be downloaded in this environment, so these
//! generators substitute class-conditional structured images (DESIGN.md §2):
//! 28x28 grayscale in `[0, 1]`, 10 classes, each class defined by a
//! geometric prototype (digit-like strokes for MNIST-like, garment
//! silhouettes for Fashion-like). Each sample perturbs its prototype with
//! a random integer shift (±2 px), per-pixel Gaussian noise, and a random
//! intensity scale — enough variability that the classification task is
//! non-trivial but learnable by both the multinomial-logistic and CNN
//! models, which is all the paper's experiments require.
//!
//! If real IDX files exist on disk, prefer [`crate::idx::load_mnist_dir`].

use crate::dataset::Dataset;
use crate::synthetic::device_rng;
use fedprox_tensor::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Image side length (images are `SIDE x SIDE`).
pub const SIDE: usize = 28;
/// Number of classes.
pub const CLASSES: usize = 10;

/// Which prototype family to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageStyle {
    /// Digit-like stroke prototypes.
    MnistLike,
    /// Garment-silhouette prototypes.
    FashionLike,
}

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct ImageConfig {
    /// Prototype family.
    pub style: ImageStyle,
    /// Std-dev of the additive per-pixel Gaussian noise.
    pub noise: f64,
    /// Maximum absolute shift in pixels applied per sample.
    pub max_shift: i32,
    /// Number of random clutter patches (4x4, random intensity) stamped
    /// onto each sample. Clutter keeps the classification task from
    /// saturating at 100% — real MNIST/Fashion-MNIST plateau in the
    /// 84–99% range for linear models, and the experiments need that
    /// head-room to show convergence differences.
    pub clutter: usize,
    /// Master seed.
    pub seed: u64,
}

impl ImageConfig {
    /// Default MNIST-like configuration.
    pub fn mnist(seed: u64) -> Self {
        ImageConfig { style: ImageStyle::MnistLike, noise: 0.3, max_shift: 3, clutter: 3, seed }
    }
    /// Default Fashion-MNIST-like configuration.
    pub fn fashion(seed: u64) -> Self {
        ImageConfig { style: ImageStyle::FashionLike, noise: 0.35, max_shift: 3, clutter: 4, seed }
    }
    /// A low-noise variant (used by tests that need near-prototype
    /// samples).
    pub fn clean(style: ImageStyle, seed: u64) -> Self {
        ImageConfig { style, noise: 0.1, max_shift: 1, clutter: 0, seed }
    }
}

/// Generate `n` labelled images with labels drawn uniformly.
pub fn generate(cfg: &ImageConfig, n: usize) -> Dataset {
    let protos = prototypes(cfg.style);
    let mut rng = device_rng(cfg.seed, 0x1A6E);
    let noise = Normal::new(0.0, cfg.noise).expect("noise std");
    let mut feats = Matrix::zeros(n, SIDE * SIDE);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..CLASSES);
        render_sample(&protos[class], cfg, &mut rng, &noise, feats.row_mut(i));
        labels.push(class as f64);
    }
    Dataset::new(feats, labels, CLASSES)
}

/// Generate exactly `count` images of each requested `(class, count)` pair.
pub fn generate_per_class(cfg: &ImageConfig, counts: &[(usize, usize)]) -> Dataset {
    let protos = prototypes(cfg.style);
    let total: usize = counts.iter().map(|&(_, c)| c).sum();
    let mut rng = device_rng(cfg.seed, 0x1A6F);
    let noise = Normal::new(0.0, cfg.noise).expect("noise std");
    let mut feats = Matrix::zeros(total, SIDE * SIDE);
    let mut labels = Vec::with_capacity(total);
    let mut row = 0;
    for &(class, count) in counts {
        assert!(class < CLASSES, "class out of range");
        for _ in 0..count {
            render_sample(&protos[class], cfg, &mut rng, &noise, feats.row_mut(row));
            labels.push(class as f64);
            row += 1;
        }
    }
    Dataset::new(feats, labels, CLASSES)
}

fn render_sample(
    proto: &[f64],
    cfg: &ImageConfig,
    rng: &mut impl Rng,
    noise: &Normal<f64>,
    out: &mut [f64],
) {
    let dx = rng.gen_range(-cfg.max_shift..=cfg.max_shift);
    let dy = rng.gen_range(-cfg.max_shift..=cfg.max_shift);
    let scale = rng.gen_range(0.7..1.2);
    for y in 0..SIDE {
        for x in 0..SIDE {
            let sy = y as i32 - dy;
            let sx = x as i32 - dx;
            let base = if sy >= 0 && sy < SIDE as i32 && sx >= 0 && sx < SIDE as i32 {
                proto[sy as usize * SIDE + sx as usize]
            } else {
                0.0
            };
            let v = base * scale + noise.sample(rng);
            out[y * SIDE + x] = v.clamp(0.0, 1.0);
        }
    }
    // Clutter: random 4x4 patches of random intensity.
    for _ in 0..cfg.clutter {
        let px = rng.gen_range(0..SIDE - 3);
        let py = rng.gen_range(0..SIDE - 3);
        let v: f64 = rng.gen_range(0.0..1.0);
        for oy in 0..4 {
            for ox in 0..4 {
                out[(py + oy) * SIDE + px + ox] = v;
            }
        }
    }
}

/// The 10 class prototypes of a style, each a `SIDE*SIDE` buffer in `[0, 1]`.
pub fn prototypes(style: ImageStyle) -> Vec<Vec<f64>> {
    (0..CLASSES)
        .map(|c| match style {
            ImageStyle::MnistLike => digit_prototype(c),
            ImageStyle::FashionLike => fashion_prototype(c),
        })
        .collect()
}

// --- drawing primitives ----------------------------------------------------

struct Canvas(Vec<f64>);

impl Canvas {
    fn new() -> Self {
        Canvas(vec![0.0; SIDE * SIDE])
    }
    fn put(&mut self, x: i32, y: i32, v: f64) {
        if (0..SIDE as i32).contains(&x) && (0..SIDE as i32).contains(&y) {
            let p = &mut self.0[y as usize * SIDE + x as usize];
            *p = p.max(v);
        }
    }
    /// Thick anti-alias-free line from (x0,y0) to (x1,y1).
    fn line(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, thick: i32) {
        let steps = (x1 - x0).abs().max((y1 - y0).abs()).max(1);
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let x = x0 as f64 + t * (x1 - x0) as f64;
            let y = y0 as f64 + t * (y1 - y0) as f64;
            for oy in -thick..=thick {
                for ox in -thick..=thick {
                    if ox * ox + oy * oy <= thick * thick {
                        self.put(x.round() as i32 + ox, y.round() as i32 + oy, 1.0);
                    }
                }
            }
        }
    }
    /// Circle outline centred at (cx,cy).
    fn circle(&mut self, cx: i32, cy: i32, r: i32, thick: i32) {
        let n = (8 * r).max(16);
        for s in 0..n {
            let a = s as f64 / n as f64 * std::f64::consts::TAU;
            let x = cx as f64 + r as f64 * a.cos();
            let y = cy as f64 + r as f64 * a.sin();
            for oy in -thick..=thick {
                for ox in -thick..=thick {
                    if ox * ox + oy * oy <= thick * thick {
                        self.put(x.round() as i32 + ox, y.round() as i32 + oy, 1.0);
                    }
                }
            }
        }
    }
    /// Filled axis-aligned rectangle.
    fn rect(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, v: f64) {
        for y in y0..=y1 {
            for x in x0..=x1 {
                self.put(x, y, v);
            }
        }
    }
}

fn digit_prototype(c: usize) -> Vec<f64> {
    let mut cv = Canvas::new();
    match c {
        0 => cv.circle(14, 14, 8, 1),
        1 => {
            cv.line(14, 4, 14, 24, 1);
            cv.line(10, 8, 14, 4, 1);
        }
        2 => {
            cv.circle(14, 9, 5, 1);
            cv.rect(0, 0, 27, 8, 0.0); // keep top arc only… simpler: redraw
            let mut c2 = Canvas::new();
            c2.line(8, 8, 14, 4, 1);
            c2.line(14, 4, 20, 8, 1);
            c2.line(20, 8, 8, 24, 1);
            c2.line(8, 24, 20, 24, 1);
            cv = c2;
        }
        3 => {
            cv.line(8, 5, 19, 5, 1);
            cv.line(19, 5, 13, 13, 1);
            cv.line(13, 13, 19, 16, 1);
            cv.circle(14, 19, 5, 1);
        }
        4 => {
            cv.line(16, 4, 8, 16, 1);
            cv.line(8, 16, 21, 16, 1);
            cv.line(16, 4, 16, 24, 1);
        }
        5 => {
            cv.line(19, 4, 9, 4, 1);
            cv.line(9, 4, 9, 13, 1);
            cv.line(9, 13, 17, 13, 1);
            cv.circle(14, 18, 5, 1);
        }
        6 => {
            cv.line(16, 4, 10, 14, 1);
            cv.circle(14, 18, 5, 1);
        }
        7 => {
            cv.line(8, 5, 20, 5, 1);
            cv.line(20, 5, 11, 24, 1);
        }
        8 => {
            cv.circle(14, 9, 4, 1);
            cv.circle(14, 19, 5, 1);
        }
        _ => {
            cv.circle(14, 10, 5, 1);
            cv.line(18, 12, 15, 24, 1);
        }
    }
    cv.0
}

fn fashion_prototype(c: usize) -> Vec<f64> {
    let mut cv = Canvas::new();
    match c {
        // t-shirt
        0 => {
            cv.rect(9, 8, 18, 22, 0.9);
            cv.rect(4, 8, 8, 12, 0.9);
            cv.rect(19, 8, 23, 12, 0.9);
        }
        // trouser
        1 => {
            cv.rect(9, 4, 18, 10, 0.9);
            cv.rect(9, 11, 12, 24, 0.9);
            cv.rect(15, 11, 18, 24, 0.9);
        }
        // pullover
        2 => {
            cv.rect(8, 7, 19, 23, 0.8);
            cv.rect(3, 7, 7, 18, 0.8);
            cv.rect(20, 7, 24, 18, 0.8);
        }
        // dress
        3 => {
            cv.rect(11, 5, 16, 12, 0.9);
            cv.line(11, 12, 7, 24, 2);
            cv.line(16, 12, 20, 24, 2);
            cv.rect(8, 20, 19, 24, 0.9);
        }
        // coat
        4 => {
            cv.rect(7, 6, 20, 24, 0.7);
            cv.line(14, 6, 14, 24, 1);
            cv.rect(3, 6, 6, 20, 0.7);
            cv.rect(21, 6, 24, 20, 0.7);
        }
        // sandal
        5 => {
            cv.line(6, 18, 21, 14, 1);
            cv.rect(6, 19, 21, 22, 0.9);
            cv.line(10, 14, 13, 19, 1);
        }
        // shirt
        6 => {
            cv.rect(9, 6, 18, 23, 0.6);
            cv.line(14, 6, 14, 23, 1);
            cv.line(9, 6, 12, 10, 1);
            cv.line(18, 6, 15, 10, 1);
        }
        // sneaker
        7 => {
            cv.rect(5, 16, 22, 22, 0.9);
            cv.rect(5, 12, 14, 16, 0.8);
        }
        // bag
        8 => {
            cv.rect(6, 12, 21, 23, 0.9);
            cv.circle(14, 9, 4, 1);
        }
        // ankle boot
        _ => {
            cv.rect(10, 6, 16, 18, 0.9);
            cv.rect(10, 18, 23, 23, 0.9);
        }
    }
    cv.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::vecops;

    #[test]
    fn generates_requested_count_and_shape() {
        let d = generate(&ImageConfig::mnist(1), 50);
        assert_eq!(d.len(), 50);
        assert_eq!(d.dim(), SIDE * SIDE);
        assert_eq!(d.num_classes(), CLASSES);
    }

    #[test]
    fn pixels_in_unit_interval() {
        let d = generate(&ImageConfig::fashion(2), 30);
        for i in 0..d.len() {
            assert!(d.x(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&ImageConfig::mnist(3), 20);
        let b = generate(&ImageConfig::mnist(3), 20);
        assert_eq!(a, b);
        let c = generate(&ImageConfig::mnist(4), 20);
        assert_ne!(a, c);
    }

    #[test]
    fn prototypes_are_distinct_across_classes() {
        for style in [ImageStyle::MnistLike, ImageStyle::FashionLike] {
            let ps = prototypes(style);
            for i in 0..CLASSES {
                assert!(vecops::norm(&ps[i]) > 1.0, "class {i} prototype nearly empty");
                for j in (i + 1)..CLASSES {
                    let d = vecops::dist(&ps[i], &ps[j]);
                    assert!(d > 1.0, "classes {i},{j} too similar (d={d})");
                }
            }
        }
    }

    #[test]
    fn same_class_samples_closer_than_cross_class() {
        // Average within-class distance must be below cross-class distance;
        // otherwise the task would be unlearnable.
        let cfg = ImageConfig::mnist(5);
        let d = generate_per_class(&cfg, &[(0, 20), (1, 20)]);
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                let dist = vecops::dist(d.x(i), d.x(j));
                if d.class_of(i) == d.class_of(j) {
                    within.push(dist);
                } else {
                    across.push(dist);
                }
            }
        }
        assert!(vecops::mean(&within) < vecops::mean(&across));
    }

    #[test]
    fn per_class_counts_exact() {
        let d = generate_per_class(&ImageConfig::fashion(6), &[(3, 7), (9, 5)]);
        let h = d.class_histogram();
        assert_eq!(h[3], 7);
        assert_eq!(h[9], 5);
        assert_eq!(d.len(), 12);
    }
}
