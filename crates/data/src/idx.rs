//! Loader for the MNIST/Fashion-MNIST IDX binary format.
//!
//! When the real files (`train-images-idx3-ubyte`, `train-labels-idx1-ubyte`,
//! and the `t10k-*` pair) are present in a directory, the experiment
//! harness uses them instead of the procedural generators; otherwise it
//! falls back silently (DESIGN.md §2). Pixel values are scaled to `[0, 1]`.

use crate::dataset::Dataset;
use fedprox_tensor::Matrix;
use std::fs;
use std::io;
use std::path::Path;

/// Magic number of an IDX3 (images) file.
const MAGIC_IMAGES: u32 = 0x0000_0803;
/// Magic number of an IDX1 (labels) file.
const MAGIC_LABELS: u32 = 0x0000_0801;

fn read_u32(buf: &[u8], off: usize) -> io::Result<u32> {
    buf.get(off..off + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "idx: truncated header"))
}

/// Parse an IDX3 image buffer into `(n, rows, cols, pixels)`.
pub fn parse_images(buf: &[u8]) -> io::Result<(usize, usize, usize, Vec<f64>)> {
    if read_u32(buf, 0)? != MAGIC_IMAGES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "idx: bad image magic"));
    }
    let n = read_u32(buf, 4)? as usize;
    let rows = read_u32(buf, 8)? as usize;
    let cols = read_u32(buf, 12)? as usize;
    let need = 16 + n * rows * cols;
    if buf.len() < need {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "idx: truncated image data"));
    }
    let pixels = buf[16..need].iter().map(|&b| b as f64 / 255.0).collect();
    Ok((n, rows, cols, pixels))
}

/// Parse an IDX1 label buffer.
pub fn parse_labels(buf: &[u8]) -> io::Result<Vec<u8>> {
    if read_u32(buf, 0)? != MAGIC_LABELS {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "idx: bad label magic"));
    }
    let n = read_u32(buf, 4)? as usize;
    let need = 8 + n;
    if buf.len() < need {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "idx: truncated label data"));
    }
    Ok(buf[8..need].to_vec())
}

/// Combine parsed images + labels into a [`Dataset`].
pub fn dataset_from_buffers(images: &[u8], labels: &[u8]) -> io::Result<Dataset> {
    let (n, rows, cols, pixels) = parse_images(images)?;
    let labs = parse_labels(labels)?;
    if labs.len() != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("idx: {n} images vs {} labels", labs.len()),
        ));
    }
    let feats = Matrix::from_vec(n, rows * cols, pixels);
    let labels: Vec<f64> = labs.into_iter().map(|l| l as f64).collect();
    Ok(Dataset::new(feats, labels, 10))
}

/// Load `(train, test)` from a directory containing the four standard
/// MNIST file names. Returns `None` if any file is missing, `Err` on
/// malformed files.
pub fn load_mnist_dir(dir: &Path) -> io::Result<Option<(Dataset, Dataset)>> {
    let names = [
        "train-images-idx3-ubyte",
        "train-labels-idx1-ubyte",
        "t10k-images-idx3-ubyte",
        "t10k-labels-idx1-ubyte",
    ];
    let paths: Vec<_> = names.iter().map(|n| dir.join(n)).collect();
    if !paths.iter().all(|p| p.exists()) {
        return Ok(None);
    }
    let bufs: Vec<Vec<u8>> = paths.iter().map(fs::read).collect::<Result<_, _>>()?;
    let train = dataset_from_buffers(&bufs[0], &bufs[1])?;
    let test = dataset_from_buffers(&bufs[2], &bufs[3])?;
    Ok(Some((train, test)))
}

/// Serialize a dataset to the IDX pair format (used by tests to round-trip
/// and by users who want to export generated data).
pub fn to_idx_buffers(data: &Dataset, rows: usize, cols: usize) -> (Vec<u8>, Vec<u8>) {
    assert_eq!(rows * cols, data.dim(), "to_idx_buffers: dims don't match");
    let n = data.len();
    let mut images = Vec::with_capacity(16 + n * rows * cols);
    images.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
    images.extend_from_slice(&(n as u32).to_be_bytes());
    images.extend_from_slice(&(rows as u32).to_be_bytes());
    images.extend_from_slice(&(cols as u32).to_be_bytes());
    for i in 0..n {
        for &p in data.x(i) {
            images.push((p.clamp(0.0, 1.0) * 255.0).round() as u8);
        }
    }
    let mut labels = Vec::with_capacity(8 + n);
    labels.extend_from_slice(&MAGIC_LABELS.to_be_bytes());
    labels.extend_from_slice(&(n as u32).to_be_bytes());
    for i in 0..n {
        labels.push(data.class_of(i) as u8);
    }
    (images, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::{generate, ImageConfig};

    #[test]
    fn roundtrip_through_idx() {
        let d = generate(&ImageConfig::mnist(1), 12);
        let (im, lab) = to_idx_buffers(&d, 28, 28);
        let d2 = dataset_from_buffers(&im, &lab).unwrap();
        assert_eq!(d2.len(), 12);
        assert_eq!(d2.dim(), 784);
        for i in 0..d.len() {
            assert_eq!(d.class_of(i), d2.class_of(i));
            // Quantisation to u8 loses at most 1/255 per pixel (+0.5 rounding).
            for (a, b) in d.x(i).iter().zip(d2.x(i)) {
                assert!((a - b).abs() <= 0.5 / 255.0 + 1e-9);
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = vec![0u8; 32];
        buf[3] = 0x42;
        assert!(parse_images(&buf).is_err());
        assert!(parse_labels(&buf).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let d = generate(&ImageConfig::mnist(2), 3);
        let (im, lab) = to_idx_buffers(&d, 28, 28);
        assert!(parse_images(&im[..im.len() - 1]).is_err());
        assert!(parse_labels(&lab[..lab.len() - 1]).is_err());
        assert!(parse_images(&im[..8]).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let d = generate(&ImageConfig::mnist(3), 4);
        let (im, _) = to_idx_buffers(&d, 28, 28);
        let (_, lab2) = to_idx_buffers(&d.subset(&[0, 1]), 28, 28);
        assert!(dataset_from_buffers(&im, &lab2).is_err());
    }

    #[test]
    fn missing_dir_returns_none() {
        let r = load_mnist_dir(Path::new("/nonexistent-fedprox-data")).unwrap();
        assert!(r.is_none());
    }
}
