//! Device partitioners reproducing the paper's heterogeneity protocol:
//! power-law sample counts and **two of the ten labels per device**.

use crate::dataset::Dataset;
use crate::synthetic::device_rng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draw per-device sample counts from a bounded discrete power law
/// (Pareto-like): `P(size = s) ∝ s^{-alpha}` over `[min_size, max_size]`.
/// The paper's per-dataset ranges ([37, 3277] Synthetic, [454, 3939] MNIST,
/// [37, 1350] Fashion-MNIST) are reproduced by choosing the bounds.
pub fn power_law_sizes(
    devices: usize,
    min_size: usize,
    max_size: usize,
    alpha: f64,
    seed: u64,
) -> Vec<usize> {
    assert!(min_size >= 1 && max_size >= min_size, "power_law_sizes: bad range");
    assert!(alpha > 0.0, "power_law_sizes: alpha must be positive");
    let mut rng = device_rng(seed, 0x51AE);
    (0..devices)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            bounded_pareto(u, min_size, max_size, alpha)
        })
        .collect()
}

/// Inverse-CDF sample of a bounded discrete power law
/// `P(size = s) ∝ s^{-alpha}` over `[min_size, max_size]` at quantile
/// `u ∈ [0, 1)` (continuous bounded Pareto, rounded).
fn bounded_pareto(u: f64, min_size: usize, max_size: usize, alpha: f64) -> usize {
    let a = 1.0 - alpha;
    let (lo, hi) = (min_size as f64, max_size as f64);
    let s = if (a.abs()) < 1e-9 {
        // alpha == 1: log-uniform.
        (lo.ln() + u * (hi.ln() - lo.ln())).exp()
    } else {
        (lo.powf(a) + u * (hi.powf(a) - lo.powf(a))).powf(1.0 / a)
    };
    (s.round() as usize).clamp(min_size, max_size)
}

/// A lazily-indexable power-law (Zipf-like) device population: per-device
/// sample counts and a per-device compute-speed factor (hardware
/// heterogeneity spread), each drawn from an independent
/// [`device_rng`]`(seed, id)` stream keyed by the **stable device id**
/// only.
///
/// [`ZipfPopulation::size_of`] is O(1) and order-independent, so a
/// million-device federation never materializes its size vector — the
/// property the event-driven backend's samplers rely on to keep
/// per-round memory bounded by the active set. The one O(N) pass is the
/// construction-time total-sample sum (needed for aggregation weights
/// `D_n / D`).
#[derive(Debug, Clone)]
pub struct ZipfPopulation {
    devices: usize,
    min_size: usize,
    max_size: usize,
    alpha: f64,
    compute_spread: f64,
    seed: u64,
    total: u64,
}

impl ZipfPopulation {
    /// Build a population of `devices` devices with sizes power-law
    /// distributed over `[min_size, max_size]` with exponent `alpha`,
    /// and compute-speed factors log-uniform in `[1, compute_spread]`.
    pub fn new(
        devices: usize,
        min_size: usize,
        max_size: usize,
        alpha: f64,
        compute_spread: f64,
        seed: u64,
    ) -> Self {
        assert!(devices > 0, "ZipfPopulation: empty population");
        assert!(min_size >= 1 && max_size >= min_size, "ZipfPopulation: bad size range");
        assert!(alpha > 0.0, "ZipfPopulation: alpha must be positive");
        assert!(compute_spread >= 1.0, "ZipfPopulation: compute_spread must be >= 1");
        let mut pop = ZipfPopulation {
            devices,
            min_size,
            max_size,
            alpha,
            compute_spread,
            seed,
            total: 0,
        };
        pop.total = (0..devices).map(|d| pop.size_of(d) as u64).sum();
        pop
    }

    fn stream(&self, device: usize) -> rand::rngs::StdRng {
        device_rng(self.seed ^ 0x21F0_715A, device as u64)
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices
    }

    /// Always false (construction rejects empty populations).
    pub fn is_empty(&self) -> bool {
        self.devices == 0
    }

    /// Device `d`'s sample count `D_d` — O(1), stable across runs.
    pub fn size_of(&self, device: usize) -> usize {
        assert!(device < self.devices, "ZipfPopulation: device out of range");
        let u: f64 = self.stream(device).gen_range(0.0..1.0);
        bounded_pareto(u, self.min_size, self.max_size, self.alpha)
    }

    /// Device `d`'s compute-speed multiplier, log-uniform in
    /// `[1, compute_spread]` (1.0 everywhere when the spread is 1) —
    /// models slow hardware in the event-driven timing layer.
    pub fn compute_factor_of(&self, device: usize) -> f64 {
        assert!(device < self.devices, "ZipfPopulation: device out of range");
        if self.compute_spread <= 1.0 {
            return 1.0;
        }
        let mut rng = self.stream(device);
        let _size_draw: f64 = rng.gen_range(0.0..1.0);
        let u: f64 = rng.gen_range(0.0..1.0);
        (u * self.compute_spread.ln()).exp()
    }

    /// Total federation sample count `D = Σ D_d`.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Aggregation weight `D_d / D` (the same formula
    /// `fedprox_core::server::weights_from_sizes` applies densely).
    pub fn weight_of(&self, device: usize) -> f64 {
        self.size_of(device) as f64 / self.total as f64
    }

    /// Materialize the full size vector (small populations only).
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.devices).map(|d| self.size_of(d)).collect()
    }
}

/// How a [`Partitioner`] assigns samples to devices.
#[derive(Debug, Clone)]
pub enum PartitionSpec {
    /// i.i.d.: shuffle and deal samples round-robin with power-law counts.
    Iid {
        /// Per-device sample counts.
        sizes: Vec<usize>,
    },
    /// Each device receives samples from exactly `labels_per_device`
    /// classes (the paper uses 2 of 10), with power-law sample counts.
    LabelShards {
        /// Per-device sample counts.
        sizes: Vec<usize>,
        /// How many distinct labels each device may hold.
        labels_per_device: usize,
    },
}

/// Splits a centralized [`Dataset`] into per-device shards.
#[derive(Debug, Clone)]
pub struct Partitioner {
    spec: PartitionSpec,
    seed: u64,
}

impl Partitioner {
    /// Create a partitioner with the given spec and seed.
    pub fn new(spec: PartitionSpec, seed: u64) -> Self {
        Partitioner { spec, seed }
    }

    /// Partition `data` into shards. Sample indices are drawn without
    /// replacement where supply allows and with replacement when a device
    /// requests more samples of a label than remain (the generators make
    /// this rare; it keeps requested power-law sizes exact).
    pub fn partition(&self, data: &Dataset) -> Vec<Dataset> {
        match &self.spec {
            PartitionSpec::Iid { sizes } => self.partition_iid(data, sizes),
            PartitionSpec::LabelShards { sizes, labels_per_device } => {
                self.partition_label_shards(data, sizes, *labels_per_device)
            }
        }
    }

    fn partition_iid(&self, data: &Dataset, sizes: &[usize]) -> Vec<Dataset> {
        let mut rng = device_rng(self.seed, 0x11D);
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        sizes
            .iter()
            .map(|&s| {
                let idx: Vec<usize> =
                    (0..s).map(|k| order[(cursor + k) % order.len()]).collect();
                cursor += s;
                data.subset(&idx)
            })
            .collect()
    }

    fn partition_label_shards(
        &self,
        data: &Dataset,
        sizes: &[usize],
        labels_per_device: usize,
    ) -> Vec<Dataset> {
        let classes = data.num_classes();
        assert!(classes > 0, "label shards require a classification dataset");
        assert!(
            labels_per_device >= 1 && labels_per_device <= classes,
            "labels_per_device out of range"
        );
        // Bucket sample indices per class, shuffled.
        let mut rng = device_rng(self.seed, 0x5AAD);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); classes];
        for i in 0..data.len() {
            buckets[data.class_of(i)].push(i);
        }
        for b in buckets.iter_mut() {
            b.shuffle(&mut rng);
        }
        let mut cursors = vec![0usize; classes];

        sizes
            .iter()
            .enumerate()
            .map(|(dev, &size)| {
                // Deterministic label pair assignment: device d takes
                // labels {d, d+1, …} mod classes — cycling so all labels
                // are used roughly equally across the federation.
                let labels: Vec<usize> =
                    (0..labels_per_device).map(|k| (dev + k) % classes).collect();
                let mut idx = Vec::with_capacity(size);
                for (j, &lab) in labels.iter().enumerate() {
                    // Split the device's quota across its labels.
                    let quota = size / labels.len()
                        + if j < size % labels.len() { 1 } else { 0 };
                    let bucket = &buckets[lab];
                    if bucket.is_empty() {
                        continue;
                    }
                    for _ in 0..quota {
                        // Without replacement until exhausted, then wrap.
                        let pos = cursors[lab] % bucket.len();
                        idx.push(bucket[pos]);
                        cursors[lab] += 1;
                    }
                }
                data.subset(&idx)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::Matrix;

    fn class_dataset(per_class: usize, classes: usize) -> Dataset {
        let n = per_class * classes;
        let mut f = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            f.row_mut(i)[0] = c as f64;
            f.row_mut(i)[1] = i as f64;
            labels.push(c as f64);
        }
        Dataset::new(f, labels, classes)
    }

    #[test]
    fn power_law_sizes_in_range_and_deterministic() {
        let s1 = power_law_sizes(100, 37, 3277, 1.5, 9);
        let s2 = power_law_sizes(100, 37, 3277, 1.5, 9);
        assert_eq!(s1, s2);
        assert!(s1.iter().all(|&s| (37..=3277).contains(&s)));
        // Power law: median well below midpoint.
        let mut sorted = s1.clone();
        sorted.sort_unstable();
        assert!(sorted[50] < (37 + 3277) / 2);
    }

    #[test]
    fn power_law_alpha_one_is_log_uniform() {
        let s = power_law_sizes(50, 10, 1000, 1.0, 4);
        assert!(s.iter().all(|&x| (10..=1000).contains(&x)));
    }

    #[test]
    fn zipf_population_is_stable_and_order_independent() {
        let pop = ZipfPopulation::new(1000, 40, 400, 1.5, 4.0, 9);
        // O(1) lookups agree with the materialized vector…
        let sizes = pop.sizes();
        assert_eq!(sizes.len(), 1000);
        for &d in &[0usize, 999, 41, 500] {
            assert_eq!(pop.size_of(d), sizes[d]);
        }
        // …are in range, reproducible, and total-consistent.
        assert!(sizes.iter().all(|&s| (40..=400).contains(&s)));
        let pop2 = ZipfPopulation::new(1000, 40, 400, 1.5, 4.0, 9);
        assert_eq!(pop2.sizes(), sizes);
        assert_eq!(pop.total_samples(), sizes.iter().map(|&s| s as u64).sum::<u64>());
        // Power law: median well below the midpoint.
        let mut sorted = sizes;
        sorted.sort_unstable();
        assert!(sorted[500] < (40 + 400) / 2);
        // Weights sum to 1.
        let wsum: f64 = (0..1000).map(|d| pop.weight_of(d)).sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weight sum {wsum}");
    }

    #[test]
    fn zipf_compute_factors_span_the_spread() {
        let pop = ZipfPopulation::new(500, 10, 20, 1.2, 8.0, 3);
        let factors: Vec<f64> = (0..500).map(|d| pop.compute_factor_of(d)).collect();
        assert!(factors.iter().all(|&f| (1.0..=8.0).contains(&f)));
        let lo = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = factors.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo > 2.0, "spread collapsed: {lo}..{hi}");
        // Spread 1.0 means no heterogeneity.
        let flat = ZipfPopulation::new(10, 10, 20, 1.2, 1.0, 3);
        assert!((0..10).all(|d| flat.compute_factor_of(d) == 1.0));
        // The factor draw does not perturb the size draw.
        let sized = ZipfPopulation::new(500, 10, 20, 1.2, 1.0, 3);
        assert_eq!(sized.sizes(), pop.sizes());
    }

    #[test]
    fn iid_partition_sizes_exact() {
        let data = class_dataset(50, 10);
        let sizes = vec![30, 70, 10];
        let shards = Partitioner::new(PartitionSpec::Iid { sizes: sizes.clone() }, 3)
            .partition(&data);
        for (sh, &s) in shards.iter().zip(&sizes) {
            assert_eq!(sh.len(), s);
        }
    }

    #[test]
    fn label_shards_limit_labels_per_device() {
        let data = class_dataset(100, 10);
        let sizes = vec![40; 20];
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes, labels_per_device: 2 },
            17,
        )
        .partition(&data);
        for sh in &shards {
            let labs = sh.distinct_labels();
            assert!(labs.len() <= 2, "device has {} labels", labs.len());
            assert_eq!(sh.len(), 40);
        }
    }

    #[test]
    fn label_shards_cover_all_labels_across_federation() {
        let data = class_dataset(100, 10);
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes: vec![20; 10], labels_per_device: 2 },
            1,
        )
        .partition(&data);
        let mut seen = vec![false; 10];
        for sh in &shards {
            for l in sh.distinct_labels() {
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "labels covered: {seen:?}");
    }

    #[test]
    fn label_shards_with_scarce_supply_wrap_without_panicking() {
        let data = class_dataset(3, 4); // only 3 samples per class
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes: vec![10, 10], labels_per_device: 2 },
            5,
        )
        .partition(&data);
        assert_eq!(shards[0].len(), 10);
        assert_eq!(shards[1].len(), 10);
    }

    #[test]
    fn deterministic_partition() {
        let data = class_dataset(50, 10);
        let p = Partitioner::new(
            PartitionSpec::LabelShards { sizes: vec![25; 8], labels_per_device: 2 },
            99,
        );
        let a = p.partition(&data);
        let b = p.partition(&data);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
