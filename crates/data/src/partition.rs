//! Device partitioners reproducing the paper's heterogeneity protocol:
//! power-law sample counts and **two of the ten labels per device**.

use crate::dataset::Dataset;
use crate::synthetic::device_rng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draw per-device sample counts from a bounded discrete power law
/// (Pareto-like): `P(size = s) ∝ s^{-alpha}` over `[min_size, max_size]`.
/// The paper's per-dataset ranges ([37, 3277] Synthetic, [454, 3939] MNIST,
/// [37, 1350] Fashion-MNIST) are reproduced by choosing the bounds.
pub fn power_law_sizes(
    devices: usize,
    min_size: usize,
    max_size: usize,
    alpha: f64,
    seed: u64,
) -> Vec<usize> {
    assert!(min_size >= 1 && max_size >= min_size, "power_law_sizes: bad range");
    assert!(alpha > 0.0, "power_law_sizes: alpha must be positive");
    let mut rng = device_rng(seed, 0x51AE);
    // Inverse-CDF sampling of a continuous bounded Pareto, then rounding.
    let a = 1.0 - alpha;
    let (lo, hi) = (min_size as f64, max_size as f64);
    (0..devices)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            let s = if (a.abs()) < 1e-9 {
                // alpha == 1: log-uniform.
                (lo.ln() + u * (hi.ln() - lo.ln())).exp()
            } else {
                (lo.powf(a) + u * (hi.powf(a) - lo.powf(a))).powf(1.0 / a)
            };
            (s.round() as usize).clamp(min_size, max_size)
        })
        .collect()
}

/// How a [`Partitioner`] assigns samples to devices.
#[derive(Debug, Clone)]
pub enum PartitionSpec {
    /// i.i.d.: shuffle and deal samples round-robin with power-law counts.
    Iid {
        /// Per-device sample counts.
        sizes: Vec<usize>,
    },
    /// Each device receives samples from exactly `labels_per_device`
    /// classes (the paper uses 2 of 10), with power-law sample counts.
    LabelShards {
        /// Per-device sample counts.
        sizes: Vec<usize>,
        /// How many distinct labels each device may hold.
        labels_per_device: usize,
    },
}

/// Splits a centralized [`Dataset`] into per-device shards.
#[derive(Debug, Clone)]
pub struct Partitioner {
    spec: PartitionSpec,
    seed: u64,
}

impl Partitioner {
    /// Create a partitioner with the given spec and seed.
    pub fn new(spec: PartitionSpec, seed: u64) -> Self {
        Partitioner { spec, seed }
    }

    /// Partition `data` into shards. Sample indices are drawn without
    /// replacement where supply allows and with replacement when a device
    /// requests more samples of a label than remain (the generators make
    /// this rare; it keeps requested power-law sizes exact).
    pub fn partition(&self, data: &Dataset) -> Vec<Dataset> {
        match &self.spec {
            PartitionSpec::Iid { sizes } => self.partition_iid(data, sizes),
            PartitionSpec::LabelShards { sizes, labels_per_device } => {
                self.partition_label_shards(data, sizes, *labels_per_device)
            }
        }
    }

    fn partition_iid(&self, data: &Dataset, sizes: &[usize]) -> Vec<Dataset> {
        let mut rng = device_rng(self.seed, 0x11D);
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut rng);
        let mut cursor = 0usize;
        sizes
            .iter()
            .map(|&s| {
                let idx: Vec<usize> =
                    (0..s).map(|k| order[(cursor + k) % order.len()]).collect();
                cursor += s;
                data.subset(&idx)
            })
            .collect()
    }

    fn partition_label_shards(
        &self,
        data: &Dataset,
        sizes: &[usize],
        labels_per_device: usize,
    ) -> Vec<Dataset> {
        let classes = data.num_classes();
        assert!(classes > 0, "label shards require a classification dataset");
        assert!(
            labels_per_device >= 1 && labels_per_device <= classes,
            "labels_per_device out of range"
        );
        // Bucket sample indices per class, shuffled.
        let mut rng = device_rng(self.seed, 0x5AAD);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); classes];
        for i in 0..data.len() {
            buckets[data.class_of(i)].push(i);
        }
        for b in buckets.iter_mut() {
            b.shuffle(&mut rng);
        }
        let mut cursors = vec![0usize; classes];

        sizes
            .iter()
            .enumerate()
            .map(|(dev, &size)| {
                // Deterministic label pair assignment: device d takes
                // labels {d, d+1, …} mod classes — cycling so all labels
                // are used roughly equally across the federation.
                let labels: Vec<usize> =
                    (0..labels_per_device).map(|k| (dev + k) % classes).collect();
                let mut idx = Vec::with_capacity(size);
                for (j, &lab) in labels.iter().enumerate() {
                    // Split the device's quota across its labels.
                    let quota = size / labels.len()
                        + if j < size % labels.len() { 1 } else { 0 };
                    let bucket = &buckets[lab];
                    if bucket.is_empty() {
                        continue;
                    }
                    for _ in 0..quota {
                        // Without replacement until exhausted, then wrap.
                        let pos = cursors[lab] % bucket.len();
                        idx.push(bucket[pos]);
                        cursors[lab] += 1;
                    }
                }
                data.subset(&idx)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::Matrix;

    fn class_dataset(per_class: usize, classes: usize) -> Dataset {
        let n = per_class * classes;
        let mut f = Matrix::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            f.row_mut(i)[0] = c as f64;
            f.row_mut(i)[1] = i as f64;
            labels.push(c as f64);
        }
        Dataset::new(f, labels, classes)
    }

    #[test]
    fn power_law_sizes_in_range_and_deterministic() {
        let s1 = power_law_sizes(100, 37, 3277, 1.5, 9);
        let s2 = power_law_sizes(100, 37, 3277, 1.5, 9);
        assert_eq!(s1, s2);
        assert!(s1.iter().all(|&s| (37..=3277).contains(&s)));
        // Power law: median well below midpoint.
        let mut sorted = s1.clone();
        sorted.sort_unstable();
        assert!(sorted[50] < (37 + 3277) / 2);
    }

    #[test]
    fn power_law_alpha_one_is_log_uniform() {
        let s = power_law_sizes(50, 10, 1000, 1.0, 4);
        assert!(s.iter().all(|&x| (10..=1000).contains(&x)));
    }

    #[test]
    fn iid_partition_sizes_exact() {
        let data = class_dataset(50, 10);
        let sizes = vec![30, 70, 10];
        let shards = Partitioner::new(PartitionSpec::Iid { sizes: sizes.clone() }, 3)
            .partition(&data);
        for (sh, &s) in shards.iter().zip(&sizes) {
            assert_eq!(sh.len(), s);
        }
    }

    #[test]
    fn label_shards_limit_labels_per_device() {
        let data = class_dataset(100, 10);
        let sizes = vec![40; 20];
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes, labels_per_device: 2 },
            17,
        )
        .partition(&data);
        for sh in &shards {
            let labs = sh.distinct_labels();
            assert!(labs.len() <= 2, "device has {} labels", labs.len());
            assert_eq!(sh.len(), 40);
        }
    }

    #[test]
    fn label_shards_cover_all_labels_across_federation() {
        let data = class_dataset(100, 10);
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes: vec![20; 10], labels_per_device: 2 },
            1,
        )
        .partition(&data);
        let mut seen = vec![false; 10];
        for sh in &shards {
            for l in sh.distinct_labels() {
                seen[l] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "labels covered: {seen:?}");
    }

    #[test]
    fn label_shards_with_scarce_supply_wrap_without_panicking() {
        let data = class_dataset(3, 4); // only 3 samples per class
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes: vec![10, 10], labels_per_device: 2 },
            5,
        )
        .partition(&data);
        assert_eq!(shards[0].len(), 10);
        assert_eq!(shards[1].len(), 10);
    }

    #[test]
    fn deterministic_partition() {
        let data = class_dataset(50, 10);
        let p = Partitioner::new(
            PartitionSpec::LabelShards { sizes: vec![25; 8], labels_per_device: 2 },
            99,
        );
        let a = p.partition(&data);
        let b = p.partition(&data);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
