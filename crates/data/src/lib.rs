//! Federated dataset substrates for the FedProxVR reproduction.
//!
//! The paper evaluates on three datasets — a heterogeneity-controlled
//! "Synthetic" dataset (Li et al.'s Synthetic(α, β)), MNIST, and
//! Fashion-MNIST — partitioned across devices with power-law sample counts
//! and only **two of the ten labels per device**. This crate builds all of
//! that from scratch:
//!
//! * [`Dataset`] / [`FederatedDataset`] — in-memory sample stores,
//! * [`synthetic`] — the Synthetic(α, β) generator,
//! * [`images`] — procedural MNIST-like / Fashion-MNIST-like generators
//!   (substituting for the real downloads; see DESIGN.md §2),
//! * [`idx`] — a loader for real MNIST IDX files when they are available,
//! * [`partition`] — power-law + label-sharding partitioners,
//! * [`split`] — seeded train/test splitting (the paper uses 75/25),
//! * [`stats`] — empirical heterogeneity measurements (σ̄² proxies).

// fedlint: allow(clippy-allow-sync) — crate-wide: data generation is R1-exempt; a malformed dataset is a construction-time programming error, not a recoverable condition
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod dataset;
pub mod idx;
pub mod images;
pub mod partition;
pub mod preprocess;
pub mod split;
pub mod stats;
pub mod synthetic;

pub use dataset::{Dataset, FederatedDataset};
