//! The Synthetic(α, β) heterogeneous dataset of Li et al. (FedProx),
//! which the paper uses to control statistical heterogeneity.
//!
//! For each device `n`:
//!
//! * a model offset `u_n ~ N(0, α)` draws device-specific softmax weights
//!   `W_n[i,j] ~ N(u_n, 1)`, `b_n[i] ~ N(u_n, 1)`,
//! * a feature offset `B_n ~ N(0, β)` draws the feature mean
//!   `v_n[j] ~ N(B_n, 1)`,
//! * inputs are `x ~ N(v_n, Σ)` with diagonal `Σ_jj = j^{-1.2}`,
//! * labels are `y = argmax(softmax(W_n x + b_n))`.
//!
//! `α` controls *model* heterogeneity and `β` controls *feature*
//! heterogeneity; `(0, 0)` with `iid = true` reduces to a common model on
//! i.i.d. features. Larger (α, β) directly increases the paper's
//! σ̄²-divergence (measured empirically in [`crate::stats`]).

use crate::dataset::Dataset;
use fedprox_tensor::{activations::softmax_inplace, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Configuration for the Synthetic(α, β) generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Model-heterogeneity variance α.
    pub alpha: f64,
    /// Feature-heterogeneity variance β.
    pub beta: f64,
    /// Feature dimensionality (the paper/source uses 60).
    pub dim: usize,
    /// Number of classes (10).
    pub num_classes: usize,
    /// When true, every device shares one model and one feature mean —
    /// the i.i.d. control case.
    pub iid: bool,
    /// Master seed; device `n` derives stream `seed ⊕ h(n)`.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig { alpha: 1.0, beta: 1.0, dim: 60, num_classes: 10, iid: false, seed: 0 }
    }
}

/// Deterministic per-device RNG stream: mixes the master seed with the
/// device id via SplitMix64 so streams are independent and reproducible
/// regardless of generation order.
pub fn device_rng(seed: u64, device: u64) -> StdRng {
    let mut z = seed ^ device.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Generate the per-device shards. `sizes[n]` is device `n`'s sample count
/// (use [`crate::partition::power_law_sizes`] to draw the paper's
/// power-law counts).
pub fn generate(cfg: &SyntheticConfig, sizes: &[usize]) -> Vec<Dataset> {
    let pool = SyntheticPool::new(cfg.clone());
    sizes.iter().enumerate().map(|(n, &size)| pool.device_shard(n, size)).collect()
}

/// Lazy per-device synthesis of the same federation [`generate`] builds
/// eagerly.
///
/// Holds the cross-device state (the Σ diagonal and, in the i.i.d.
/// control case, the single shared model drawn from stream `u64::MAX`)
/// so a shard can be synthesized for one device at a time and dropped
/// after use. Device `n` consumes only its own `device_rng(seed, n)`
/// stream, so [`SyntheticPool::device_shard`] is bitwise identical to
/// `generate(cfg, sizes)[n]` regardless of which other devices are ever
/// materialized — the property the million-device event-driven backend
/// relies on to keep memory bounded by the sampled set.
#[derive(Debug, Clone)]
pub struct SyntheticPool {
    cfg: SyntheticConfig,
    diag_std: Vec<f64>,
    shared: Option<ModelDraw>,
}

impl SyntheticPool {
    /// Precompute the shared state for `cfg`.
    pub fn new(cfg: SyntheticConfig) -> Self {
        let diag_std: Vec<f64> =
            (1..=cfg.dim).map(|j| (j as f64).powf(-1.2).sqrt()).collect();
        // In the i.i.d. control case all devices share the model drawn
        // from stream u64::MAX (never a device id).
        let shared = if cfg.iid {
            let mut rng = device_rng(cfg.seed, u64::MAX);
            Some(draw_model(&mut rng, 0.0, &cfg))
        } else {
            None
        };
        SyntheticPool { cfg, diag_std, shared }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.cfg
    }

    /// Synthesize device `n`'s shard with `size` samples.
    pub fn device_shard(&self, n: usize, size: usize) -> Dataset {
        let cfg = &self.cfg;
        let unit = Normal::new(0.0, 1.0).expect("unit normal");
        let mut rng = device_rng(cfg.seed, n as u64);
        let (w, b, v) = if let Some((ref sw, ref sb, ref sv)) = self.shared {
            (sw.clone(), sb.clone(), sv.clone())
        } else {
            let u_n: f64 = if cfg.alpha > 0.0 {
                Normal::new(0.0, cfg.alpha.sqrt()).unwrap().sample(&mut rng)
            } else {
                0.0
            };
            let (w, b, _) = draw_model(&mut rng, u_n, cfg);
            let big_b: f64 = if cfg.beta > 0.0 {
                Normal::new(0.0, cfg.beta.sqrt()).unwrap().sample(&mut rng)
            } else {
                0.0
            };
            let v: Vec<f64> =
                (0..cfg.dim).map(|_| big_b + unit.sample(&mut rng)).collect();
            (w, b, v)
        };

        let mut feats = Matrix::zeros(size, cfg.dim);
        let mut labels = Vec::with_capacity(size);
        let mut logits = vec![0.0; cfg.num_classes];
        for i in 0..size {
            let row = feats.row_mut(i);
            for j in 0..cfg.dim {
                row[j] = v[j] + self.diag_std[j] * unit.sample(&mut rng);
            }
            logits.copy_from_slice(&w.matvec(row));
            for (l, bi) in logits.iter_mut().zip(&b) {
                *l += bi;
            }
            softmax_inplace(&mut logits);
            let y = argmax(&logits);
            labels.push(y as f64);
        }
        Dataset::new(feats, labels, cfg.num_classes)
    }
}

type ModelDraw = (Matrix, Vec<f64>, Vec<f64>);

fn draw_model(rng: &mut impl Rng, u_n: f64, cfg: &SyntheticConfig) -> ModelDraw {
    let unit = Normal::new(0.0, 1.0).expect("unit normal");
    let mut w = Matrix::zeros(cfg.num_classes, cfg.dim);
    for v in w.as_mut_slice() {
        *v = u_n + unit.sample(rng);
    }
    let b: Vec<f64> = (0..cfg.num_classes).map(|_| u_n + unit.sample(rng)).collect();
    let v: Vec<f64> = (0..cfg.dim).map(|_| unit.sample(rng)).collect();
    (w, b, v)
}

fn argmax(x: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_have_requested_sizes_and_dims() {
        let cfg = SyntheticConfig { seed: 7, ..Default::default() };
        let shards = generate(&cfg, &[10, 25, 3]);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].len(), 10);
        assert_eq!(shards[1].len(), 25);
        assert_eq!(shards[2].len(), 3);
        for s in &shards {
            assert_eq!(s.dim(), 60);
            assert_eq!(s.num_classes(), 10);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SyntheticConfig { seed: 42, ..Default::default() };
        let a = generate(&cfg, &[20, 20]);
        let b = generate(&cfg, &[20, 20]);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig { seed: 1, ..Default::default() }, &[30]);
        let b = generate(&SyntheticConfig { seed: 2, ..Default::default() }, &[30]);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn iid_devices_share_label_structure() {
        // With iid=true and many samples, per-device class histograms
        // should be much closer than with heavy heterogeneity.
        let n = 400;
        let iid = generate(
            &SyntheticConfig { iid: true, seed: 5, ..Default::default() },
            &[n, n],
        );
        let het = generate(
            &SyntheticConfig { alpha: 4.0, beta: 4.0, seed: 5, ..Default::default() },
            &[n, n],
        );
        let tv = |a: &Dataset, b: &Dataset| -> f64 {
            let ha = a.class_histogram();
            let hb = b.class_histogram();
            ha.iter()
                .zip(&hb)
                .map(|(&x, &y)| ((x as f64 / n as f64) - (y as f64 / n as f64)).abs())
                .sum::<f64>()
                / 2.0
        };
        assert!(
            tv(&iid[0], &iid[1]) < tv(&het[0], &het[1]) + 0.25,
            "iid TV {} vs het TV {}",
            tv(&iid[0], &iid[1]),
            tv(&het[0], &het[1])
        );
    }

    #[test]
    fn labels_cover_multiple_classes() {
        // A single non-iid shard may legitimately concentrate on one or
        // two classes (that is the heterogeneity being modelled), so the
        // coverage claim is about the federation: pooled across devices,
        // the generator must produce a genuinely multi-class problem.
        let cfg = SyntheticConfig { seed: 11, ..Default::default() };
        let shards = generate(&cfg, &[500, 500, 500, 500]);
        let mut labels = std::collections::BTreeSet::new();
        for s in &shards {
            labels.extend(s.distinct_labels());
        }
        assert!(labels.len() >= 3, "only {} distinct labels pooled", labels.len());
    }

    #[test]
    fn feature_variance_decays_with_index() {
        // Σ_jj = j^{-1.2}: later features should have smaller variance.
        let cfg = SyntheticConfig { alpha: 0.0, beta: 0.0, seed: 3, ..Default::default() };
        let shards = generate(&cfg, &[4000]);
        let d = &shards[0];
        let col_var = |j: usize| -> f64 {
            let vals: Vec<f64> = (0..d.len()).map(|i| d.x(i)[j]).collect();
            fedprox_tensor::vecops::variance(&vals)
        };
        assert!(col_var(0) > col_var(40));
    }

    #[test]
    fn lazy_pool_matches_eager_generate_bitwise() {
        let cfg = SyntheticConfig { alpha: 2.0, beta: 0.5, seed: 23, ..Default::default() };
        let sizes = [12, 40, 7, 25];
        let eager = generate(&cfg, &sizes);
        let pool = SyntheticPool::new(cfg);
        // Materialize out of order and only a subset: each shard must
        // still equal the eager one (streams are per-device).
        for &n in &[2usize, 0, 3] {
            assert_eq!(pool.device_shard(n, sizes[n]), eager[n], "device {n}");
        }
    }

    #[test]
    fn lazy_pool_matches_eager_generate_iid() {
        let cfg = SyntheticConfig { iid: true, seed: 31, ..Default::default() };
        let sizes = [15, 9];
        let eager = generate(&cfg, &sizes);
        let pool = SyntheticPool::new(cfg);
        assert_eq!(pool.device_shard(1, 9), eager[1]);
        assert_eq!(pool.device_shard(0, 15), eager[0]);
    }

    #[test]
    fn device_rng_streams_are_independent() {
        let mut a = device_rng(9, 0);
        let mut b = device_rng(9, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
        // And reproducible.
        let mut a2 = device_rng(9, 0);
        assert_eq!(a2.gen::<u64>(), xa);
    }
}
