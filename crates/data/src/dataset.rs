//! In-memory sample stores.

use fedprox_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A dense supervised dataset: one feature row per sample plus a label.
///
/// Labels are stored as `f64` so the same container serves classification
/// (label = class index) and regression (label = target value);
/// [`Dataset::class_of`] does the checked conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<f64>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset; `features.rows()` must equal `labels.len()`.
    /// `num_classes == 0` marks a regression dataset.
    pub fn new(features: Matrix, labels: Vec<f64>, num_classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "Dataset::new: {} feature rows vs {} labels",
            features.rows(),
            labels.len()
        );
        if num_classes > 0 {
            for (i, &l) in labels.iter().enumerate() {
                assert!(
                    l >= 0.0 && l.fract() == 0.0 && (l as usize) < num_classes,
                    "Dataset::new: label {l} at sample {i} outside 0..{num_classes}"
                );
            }
        }
        Dataset { features, labels, num_classes }
    }

    /// An empty dataset with `dim` feature columns.
    pub fn empty(dim: usize, num_classes: usize) -> Self {
        Dataset { features: Matrix::zeros(0, dim), labels: Vec::new(), num_classes }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes (0 for regression).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow the feature row of sample `i`.
    #[inline]
    pub fn x(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// Raw label of sample `i`.
    #[inline]
    pub fn y(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// Class index of sample `i`; panics for regression datasets.
    #[inline]
    pub fn class_of(&self, i: usize) -> usize {
        debug_assert!(self.num_classes > 0, "class_of on a regression dataset");
        self.labels[i] as usize
    }

    /// The full feature matrix.
    #[inline]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Copy the samples at `indices` into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut feats = Matrix::zeros(indices.len(), self.dim());
        let mut labels = Vec::with_capacity(indices.len());
        for (r, &i) in indices.iter().enumerate() {
            feats.row_mut(r).copy_from_slice(self.x(i));
            labels.push(self.y(i));
        }
        Dataset { features: feats, labels, num_classes: self.num_classes }
    }

    /// Concatenate several datasets (all must agree on dim / classes).
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "Dataset::concat: no parts");
        let dim = parts[0].dim();
        let classes = parts[0].num_classes;
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut feats = Matrix::zeros(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut r = 0;
        for d in parts {
            assert_eq!(d.dim(), dim, "Dataset::concat: dim mismatch");
            assert_eq!(d.num_classes, classes, "Dataset::concat: class mismatch");
            for i in 0..d.len() {
                feats.row_mut(r).copy_from_slice(d.x(i));
                labels.push(d.y(i));
                r += 1;
            }
        }
        Dataset { features: feats, labels, num_classes: classes }
    }

    /// Per-class sample counts (empty for regression).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        if self.num_classes > 0 {
            for i in 0..self.len() {
                h[self.class_of(i)] += 1;
            }
        }
        h
    }

    /// The distinct labels present, sorted.
    pub fn distinct_labels(&self) -> Vec<usize> {
        let mut present: Vec<usize> = self
            .class_histogram()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, _)| l)
            .collect();
        present.sort_unstable();
        present
    }
}

/// A federation: one training shard per device plus a shared test set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederatedDataset {
    /// Per-device training shards.
    pub shards: Vec<Dataset>,
    /// Held-out test set shared by all experiments.
    pub test: Dataset,
    /// Human-readable dataset name ("synthetic", "mnist-like", …).
    pub name: String,
}

impl FederatedDataset {
    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// Total number of training samples `D = Σ D_n`.
    pub fn total_samples(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Aggregation weights `D_n / D` (Algorithm 1, line 12).
    pub fn weights(&self) -> Vec<f64> {
        let total = self.total_samples() as f64;
        assert!(total > 0.0, "FederatedDataset::weights: empty federation");
        self.shards.iter().map(|s| s.len() as f64 / total).collect()
    }

    /// `(min, max)` shard sizes — the paper reports these ranges per
    /// dataset (e.g. [37, 3277] for Synthetic).
    pub fn size_range(&self) -> (usize, usize) {
        let min = self.shards.iter().map(Dataset::len).min().unwrap_or(0);
        let max = self.shards.iter().map(Dataset::len).max().unwrap_or(0);
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let f = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        Dataset::new(f, vec![0.0, 1.0, 1.0], 2)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.x(2), &[1.0, 1.0]);
        assert_eq!(d.class_of(1), 1);
        assert!(!d.is_empty());
        assert!(Dataset::empty(4, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside 0..2")]
    fn rejects_out_of_range_label() {
        let f = Matrix::zeros(1, 2);
        let _ = Dataset::new(f, vec![5.0], 2);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn rejects_length_mismatch() {
        let f = Matrix::zeros(2, 2);
        let _ = Dataset::new(f, vec![0.0], 2);
    }

    #[test]
    fn subset_picks_rows() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x(0), &[1.0, 1.0]);
        assert_eq!(s.y(1), 0.0);
    }

    #[test]
    fn concat_roundtrip() {
        let d = toy();
        let a = d.subset(&[0]);
        let b = d.subset(&[1, 2]);
        let c = Dataset::concat(&[&a, &b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.features(), d.features());
        assert_eq!(c.labels(), d.labels());
    }

    #[test]
    fn histogram_and_distinct() {
        let d = toy();
        assert_eq!(d.class_histogram(), vec![1, 2]);
        assert_eq!(d.distinct_labels(), vec![0, 1]);
    }

    #[test]
    fn federation_weights_sum_to_one() {
        let d = toy();
        let fed = FederatedDataset {
            shards: vec![d.subset(&[0]), d.subset(&[1, 2])],
            test: d.clone(),
            name: "toy".into(),
        };
        assert_eq!(fed.num_devices(), 2);
        assert_eq!(fed.total_samples(), 3);
        let w = fed.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fed.size_range(), (1, 2));
    }
}
