//! Feature preprocessing.
//!
//! The paper's step size `η = 1/(βL)` ties directly to the feature scale
//! (for the convex losses, L ∝ ‖x‖²), so controlling the scale of inputs
//! is part of reproducing the experiments. Statistics are always fitted
//! on *training* data and applied unchanged to test data.

use crate::dataset::Dataset;
use fedprox_tensor::Matrix;

/// Fitted per-feature standardisation (z-score) parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    /// Inverse standard deviation (0-variance features map to 0).
    inv_std: Vec<f64>,
}

impl Standardizer {
    /// Fit means and standard deviations on `data`.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "Standardizer::fit: empty dataset");
        let d = data.dim();
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for i in 0..data.len() {
            for (m, &x) in mean.iter_mut().zip(data.x(i)) {
                *m += x;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for i in 0..data.len() {
            for ((v, &x), &m) in var.iter_mut().zip(data.x(i)).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let inv_std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    1.0 / s
                } else {
                    0.0
                }
            })
            .collect();
        Standardizer { mean, inv_std }
    }

    /// Fit on the union of several shards (the federated train split).
    pub fn fit_shards(shards: &[Dataset]) -> Self {
        let refs: Vec<&Dataset> = shards.iter().collect();
        Self::fit(&Dataset::concat(&refs))
    }

    /// Apply to a dataset, producing a transformed copy.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        assert_eq!(data.dim(), self.mean.len(), "Standardizer: dim mismatch");
        let mut out = Matrix::zeros(data.len(), data.dim());
        for i in 0..data.len() {
            let row = out.row_mut(i);
            for ((o, &x), (&m, &is)) in
                row.iter_mut().zip(data.x(i)).zip(self.mean.iter().zip(&self.inv_std))
            {
                *o = (x - m) * is;
            }
        }
        Dataset::new(out, data.labels().to_vec(), data.num_classes())
    }
}

/// Scale every sample to unit Euclidean norm (zero rows stay zero).
/// After this, the softmax cross-entropy smoothness bound is ≤ 1,
/// making `η = 1/β` a principled choice.
pub fn unit_norm_rows(data: &Dataset) -> Dataset {
    let mut out = Matrix::zeros(data.len(), data.dim());
    for i in 0..data.len() {
        let norm = fedprox_tensor::vecops::norm(data.x(i));
        let row = out.row_mut(i);
        if norm > 1e-12 {
            for (o, &x) in row.iter_mut().zip(data.x(i)) {
                *o = x / norm;
            }
        }
    }
    Dataset::new(out, data.labels().to_vec(), data.num_classes())
}

/// Min-max scale each feature to `[0, 1]` using bounds fitted on `fit`
/// and applied to `apply` (constant features map to 0).
pub fn min_max_scale(fit: &Dataset, apply: &Dataset) -> Dataset {
    assert_eq!(fit.dim(), apply.dim());
    assert!(!fit.is_empty());
    let d = fit.dim();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for i in 0..fit.len() {
        for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(fit.x(i)) {
            *l = l.min(x);
            *h = h.max(x);
        }
    }
    let mut out = Matrix::zeros(apply.len(), d);
    for i in 0..apply.len() {
        let row = out.row_mut(i);
        for ((o, &x), (&l, &h)) in row.iter_mut().zip(apply.x(i)).zip(lo.iter().zip(&hi)) {
            *o = if h - l > 1e-12 { ((x - l) / (h - l)).clamp(0.0, 1.0) } else { 0.0 };
        }
    }
    Dataset::new(out, apply.labels().to_vec(), apply.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::vecops;

    fn toy() -> Dataset {
        let f = Matrix::from_rows(&[&[1.0, 10.0, 5.0], &[3.0, 30.0, 5.0], &[5.0, 50.0, 5.0]]);
        Dataset::new(f, vec![0.0, 1.0, 0.0], 2)
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let d = toy();
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        for j in 0..2 {
            let col: Vec<f64> = (0..t.len()).map(|i| t.x(i)[j]).collect();
            assert!(vecops::mean(&col).abs() < 1e-12);
            assert!((vecops::variance(&col) - 1.0).abs() < 1e-9);
        }
        // Constant feature maps to zero, not NaN.
        for i in 0..t.len() {
            assert_eq!(t.x(i)[2], 0.0);
        }
        // Labels preserved.
        assert_eq!(t.labels(), d.labels());
    }

    #[test]
    fn standardizer_train_stats_applied_to_test() {
        let train = toy();
        let s = Standardizer::fit(&train);
        let test = Dataset::new(Matrix::from_rows(&[&[3.0, 30.0, 5.0]]), vec![1.0], 2);
        let t = s.transform(&test);
        // (3 − mean(1,3,5)) / std = 0.
        assert!(t.x(0)[0].abs() < 1e-12);
    }

    #[test]
    fn unit_norm_makes_rows_unit() {
        let d = toy();
        let t = unit_norm_rows(&d);
        for i in 0..t.len() {
            assert!((vecops::norm(t.x(i)) - 1.0).abs() < 1e-12);
        }
        // Zero rows stay zero.
        let z = Dataset::new(Matrix::zeros(1, 3), vec![0.0], 2);
        let tz = unit_norm_rows(&z);
        assert_eq!(tz.x(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_in_unit_interval() {
        let d = toy();
        let t = min_max_scale(&d, &d);
        for i in 0..t.len() {
            assert!(t.x(i)[..2].iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert_eq!(t.x(i)[2], 0.0); // constant feature
        }
        assert_eq!(t.x(0)[0], 0.0);
        assert_eq!(t.x(2)[0], 1.0);
        // Out-of-range test values clamp.
        let test = Dataset::new(Matrix::from_rows(&[&[100.0, -5.0, 5.0]]), vec![0.0], 2);
        let tt = min_max_scale(&d, &test);
        assert_eq!(tt.x(0)[0], 1.0);
        assert_eq!(tt.x(0)[1], 0.0);
    }

    #[test]
    fn fit_shards_equals_fit_concat() {
        let d = toy();
        let a = d.subset(&[0]);
        let b = d.subset(&[1, 2]);
        let s1 = Standardizer::fit_shards(&[a.clone(), b.clone()]);
        let s2 = Standardizer::fit(&Dataset::concat(&[&a, &b]));
        assert_eq!(s1, s2);
    }
}
