//! Empirical heterogeneity measurements over a federation.
//!
//! The paper's σ_n-divergence (Assumption 1, eq. (5)) is a *gradient*
//! quantity and is measured in `fedprox-core::eval` where a model is
//! available; this module provides the data-level proxies used to sanity
//! check that a generated federation is actually heterogeneous: label
//! distribution skew, feature-mean dispersion, and size concentration.

use crate::dataset::Dataset;
use fedprox_tensor::vecops;

/// Summary statistics of a federation's data heterogeneity.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityReport {
    /// Mean total-variation distance between each device's label
    /// distribution and the global one (0 = identical, →1 = disjoint).
    pub label_skew_tv: f64,
    /// Mean Euclidean distance between each device's feature mean and the
    /// global feature mean.
    pub feature_mean_dispersion: f64,
    /// Gini coefficient of the shard sizes (0 = balanced).
    pub size_gini: f64,
    /// Smallest shard.
    pub min_size: usize,
    /// Largest shard.
    pub max_size: usize,
}

/// Compute the label distribution of a dataset as frequencies.
pub fn label_distribution(d: &Dataset) -> Vec<f64> {
    let h = d.class_histogram();
    let n = d.len().max(1) as f64;
    h.into_iter().map(|c| c as f64 / n).collect()
}

/// Total-variation distance between two distributions of equal support.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "tv_distance: support mismatch");
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0
}

/// Per-feature mean of a dataset.
pub fn feature_mean(d: &Dataset) -> Vec<f64> {
    let mut m = vec![0.0; d.dim()];
    if d.is_empty() {
        return m;
    }
    for i in 0..d.len() {
        vecops::add_assign(&mut m, d.x(i));
    }
    vecops::scale(1.0 / d.len() as f64, &mut m);
    m
}

/// Gini coefficient of non-negative values (0 for empty input).
pub fn gini(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    let sum: f64 = v.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v.iter().enumerate().map(|(i, x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Full heterogeneity report over shards.
pub fn heterogeneity_report(shards: &[Dataset]) -> HeterogeneityReport {
    assert!(!shards.is_empty(), "heterogeneity_report: no shards");
    let refs: Vec<&Dataset> = shards.iter().collect();
    let global = Dataset::concat(&refs);
    let global_labels = label_distribution(&global);
    let global_mean = feature_mean(&global);

    let label_skew_tv = vecops::mean(
        &shards
            .iter()
            .map(|s| tv_distance(&label_distribution(s), &global_labels))
            .collect::<Vec<_>>(),
    );
    let feature_mean_dispersion = vecops::mean(
        &shards
            .iter()
            .map(|s| vecops::dist(&feature_mean(s), &global_mean))
            .collect::<Vec<_>>(),
    );
    let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
    HeterogeneityReport {
        label_skew_tv,
        feature_mean_dispersion,
        size_gini: gini(&sizes),
        min_size: sizes.iter().copied().min().unwrap_or(0),
        max_size: sizes.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Partitioner, PartitionSpec};
    use fedprox_tensor::Matrix;

    fn class_dataset(per_class: usize, classes: usize) -> Dataset {
        let n = per_class * classes;
        let mut f = Matrix::zeros(n, 3);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            f.row_mut(i)[0] = c as f64;
            labels.push(c as f64);
        }
        Dataset::new(f, labels, classes)
    }

    #[test]
    fn tv_bounds() {
        assert_eq!(tv_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((tv_distance(&[0.5, 0.5], &[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gini_balanced_vs_skewed() {
        assert!(gini(&[10, 10, 10]) < 1e-12);
        assert!(gini(&[1, 1, 100]) > 0.5);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn label_sharding_is_more_skewed_than_iid() {
        let data = class_dataset(100, 10);
        let sizes = vec![50; 10];
        let iid = Partitioner::new(PartitionSpec::Iid { sizes: sizes.clone() }, 3)
            .partition(&data);
        let sharded = Partitioner::new(
            PartitionSpec::LabelShards { sizes, labels_per_device: 2 },
            3,
        )
        .partition(&data);
        let r_iid = heterogeneity_report(&iid);
        let r_sh = heterogeneity_report(&sharded);
        assert!(
            r_sh.label_skew_tv > r_iid.label_skew_tv + 0.3,
            "sharded {} vs iid {}",
            r_sh.label_skew_tv,
            r_iid.label_skew_tv
        );
    }

    #[test]
    fn feature_mean_of_uniform_rows() {
        let mut f = Matrix::zeros(2, 2);
        f.row_mut(0).copy_from_slice(&[1.0, 3.0]);
        f.row_mut(1).copy_from_slice(&[3.0, 5.0]);
        let d = Dataset::new(f, vec![0.0, 0.0], 1);
        assert_eq!(feature_mean(&d), vec![2.0, 4.0]);
    }

    #[test]
    fn report_size_fields() {
        let data = class_dataset(50, 10);
        let shards = Partitioner::new(
            PartitionSpec::Iid { sizes: vec![20, 80, 40] },
            1,
        )
        .partition(&data);
        let r = heterogeneity_report(&shards);
        assert_eq!(r.min_size, 20);
        assert_eq!(r.max_size, 80);
        assert!(r.size_gini > 0.0);
    }
}
