//! Per-round device timelines and eq. (19) critical-path attribution.
//!
//! The paper's time model charges each synchronous round with the
//! slowest participant's full leg — eq. (19): `T·(d_com + d_cmp·τ)`,
//! where `d_com` is the device's communication time (download +
//! upload) and `d_cmp·τ` its local compute for τ inner epochs. The
//! virtual clock in `crates/net` realizes exactly that accounting, so
//! the gating device of a round is simply the participant with the
//! largest `finish_s`, and its comm-vs-compute split *is* the round's
//! eq. (19) decomposition.
//!
//! [`Timeline::from_events`] reconstructs this from the simulation
//! events alone (`DeviceRound`, `Bytes`, `RoundEnd`, `Participation`),
//! which are bitwise-reproducible — so a timeline is a deterministic
//! function of (config, seed, fault plan), and two runs with matching
//! [`RunLedger`](crate::ledger::RunLedger)s have identical timelines.

use fedprox_telemetry::event::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One device's legs in one round (simulated seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceLeg {
    /// Device id.
    pub device: u32,
    /// Server → device transfer time.
    pub download_s: f64,
    /// Local computation time (`d_cmp·τ` in eq. (19)).
    pub compute_s: f64,
    /// Device → server transfer time.
    pub upload_s: f64,
    /// `download + compute + upload`.
    pub finish_s: f64,
    /// Lag versus the round's median finish.
    pub lag_s: f64,
}

impl DeviceLeg {
    /// Communication time (`d_com` in eq. (19)): both transfer legs.
    pub fn comm_s(&self) -> f64 {
        self.download_s + self.upload_s
    }
}

/// The round's critical path: who gated it and how the gating leg
/// splits into eq. (19)'s terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gating {
    /// The gating (slowest-finishing) device; ties break to the lowest
    /// device id, matching the deterministic event order.
    pub device: u32,
    /// The gating device's finish time — the round's duration under
    /// the synchronous model.
    pub finish_s: f64,
    /// The gating device's `d_com` (download + upload).
    pub comm_s: f64,
    /// The gating device's `d_cmp·τ`.
    pub compute_s: f64,
}

impl Gating {
    /// Fraction of the gating leg spent communicating; 0 when the leg
    /// is empty.
    pub fn comm_fraction(&self) -> f64 {
        if self.finish_s > 0.0 {
            self.comm_s / self.finish_s
        } else {
            0.0
        }
    }
}

/// One reconstructed round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTimeline {
    /// Global round index (1-based, matching `History` records).
    pub round: u32,
    /// Participating devices' legs, sorted by device id.
    pub devices: Vec<DeviceLeg>,
    /// Virtual-clock time at the end of this round, when a `round_end`
    /// event was present.
    pub sim_time_s: Option<f64>,
    /// Bytes server → devices this round.
    pub bytes_down: u64,
    /// Bytes devices → server this round.
    pub bytes_up: u64,
    /// Whether the round failed quorum and was skipped (global model
    /// unchanged); known only when participation records are present.
    pub skipped: bool,
    /// Critical path of the round; `None` when no device legs were
    /// recorded (e.g. every participant crashed).
    pub gating: Option<Gating>,
}

/// Cumulative gating attribution of one device across the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attribution {
    /// Device id.
    pub device: u32,
    /// Rounds this device gated.
    pub gated_rounds: u64,
    /// Total simulated time of the rounds it gated.
    pub gated_time_s: f64,
    /// Its `d_com` summed over gated rounds.
    pub comm_s: f64,
    /// Its `d_cmp·τ` summed over gated rounds.
    pub compute_s: f64,
}

/// The reconstructed run: rounds in order plus cross-run attribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    /// Rounds in ascending order.
    pub rounds: Vec<RoundTimeline>,
    /// Gating attribution, sorted by gated time descending (ties by
    /// device id).
    pub attribution: Vec<Attribution>,
    /// Virtual-clock time at the last observed `round_end`.
    pub total_sim_s: f64,
}

impl Timeline {
    /// Reconstruct the timeline from a flat event stream (an `--obs`
    /// file, a full trace, or a live drain). Wire rounds (0-based, on
    /// `device_round` / `bytes` / `round_end`) and participation rounds
    /// (1-based) are normalized onto the 1-based global index.
    pub fn from_events(events: &[Event]) -> Timeline {
        let mut rounds: BTreeMap<u32, RoundTimeline> = BTreeMap::new();
        fn entry(map: &mut BTreeMap<u32, RoundTimeline>, s: u32) -> &mut RoundTimeline {
            map.entry(s).or_insert_with(|| RoundTimeline {
                round: s,
                devices: Vec::new(),
                sim_time_s: None,
                bytes_down: 0,
                bytes_up: 0,
                skipped: false,
                gating: None,
            })
        }
        for ev in events {
            match ev {
                Event::DeviceRound {
                    round,
                    device,
                    download_s,
                    compute_s,
                    upload_s,
                    finish_s,
                    lag_s,
                } => {
                    entry(&mut rounds, round + 1).devices.push(DeviceLeg {
                        device: *device,
                        download_s: *download_s,
                        compute_s: *compute_s,
                        upload_s: *upload_s,
                        finish_s: *finish_s,
                        lag_s: *lag_s,
                    });
                }
                Event::Bytes { round, direction, bytes, .. } => {
                    let r = entry(&mut rounds, round + 1);
                    if direction == "down" {
                        r.bytes_down = r.bytes_down.saturating_add(*bytes);
                    } else {
                        r.bytes_up = r.bytes_up.saturating_add(*bytes);
                    }
                }
                Event::RoundEnd { round, sim_time_s } => {
                    entry(&mut rounds, round + 1).sim_time_s = Some(*sim_time_s);
                }
                Event::Participation { round, skipped, .. } => {
                    entry(&mut rounds, *round).skipped = *skipped > 0;
                }
                _ => {}
            }
        }

        let mut attribution: BTreeMap<u32, Attribution> = BTreeMap::new();
        let mut total_sim_s = 0.0f64;
        let mut rounds: Vec<RoundTimeline> = rounds.into_values().collect();
        for r in &mut rounds {
            r.devices.sort_by_key(|d| d.device);
            // Strict `>` over ascending device ids: ties gate to the
            // lowest id, deterministically.
            let mut gating: Option<Gating> = None;
            for d in &r.devices {
                if gating.is_none_or(|g| d.finish_s > g.finish_s) {
                    gating = Some(Gating {
                        device: d.device,
                        finish_s: d.finish_s,
                        comm_s: d.comm_s(),
                        compute_s: d.compute_s,
                    });
                }
            }
            r.gating = gating;
            if let Some(t) = r.sim_time_s {
                total_sim_s = total_sim_s.max(t);
            }
            if let Some(g) = r.gating {
                let a = attribution.entry(g.device).or_insert(Attribution {
                    device: g.device,
                    gated_rounds: 0,
                    gated_time_s: 0.0,
                    comm_s: 0.0,
                    compute_s: 0.0,
                });
                a.gated_rounds += 1;
                a.gated_time_s += g.finish_s;
                a.comm_s += g.comm_s;
                a.compute_s += g.compute_s;
            }
        }
        let mut attribution: Vec<Attribution> = attribution.into_values().collect();
        attribution.sort_by(|a, b| {
            b.gated_time_s.total_cmp(&a.gated_time_s).then_with(|| a.device.cmp(&b.device))
        });
        Timeline { rounds, attribution, total_sim_s }
    }

    /// Sum of eq. (19)'s terms over every gated round: `(Σ d_com,
    /// Σ d_cmp·τ)`. Their sum equals the total gated time, which for a
    /// full synchronous run is the virtual-clock total `T·(d_com +
    /// d_cmp·τ)`.
    pub fn eq19_totals(&self) -> (f64, f64) {
        self.attribution.iter().fold((0.0, 0.0), |(c, k), a| (c + a.comm_s, k + a.compute_s))
    }

    /// `fedobs timeline`: one row per (round, device).
    pub fn render_timeline(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fedobs timeline: {} rounds, {:.4} sim seconds",
            self.rounds.len(),
            self.total_sim_s
        );
        let _ = writeln!(
            s,
            "{:>6} {:>7} {:>11} {:>11} {:>11} {:>11} {:>9} {:>5}",
            "round", "device", "download_s", "compute_s", "upload_s", "finish_s", "lag_s", "gate"
        );
        for r in &self.rounds {
            if r.devices.is_empty() {
                let skip = if r.skipped { " (skipped: below quorum)" } else { "" };
                let _ = writeln!(s, "{:>6} {:>7}{}", r.round, "-", skip);
                continue;
            }
            for d in &r.devices {
                let gate = match r.gating {
                    Some(g) if g.device == d.device => "*",
                    _ => "",
                };
                let _ = writeln!(
                    s,
                    "{:>6} {:>7} {:>11.4} {:>11.4} {:>11.4} {:>11.4} {:>9.4} {:>5}",
                    r.round, d.device, d.download_s, d.compute_s, d.upload_s, d.finish_s, d.lag_s,
                    gate
                );
            }
        }
        s
    }

    /// `fedobs critpath`: per-round gating verdicts plus cumulative
    /// attribution, in eq. (19)'s terms.
    pub fn render_critpath(&self) -> String {
        let mut s = String::new();
        let (comm, compute) = self.eq19_totals();
        let _ = writeln!(
            s,
            "fedobs critical path: {} rounds, gated time {:.4}s = {:.4}s comm + {:.4}s compute (eq. 19)",
            self.rounds.len(),
            comm + compute,
            comm,
            compute
        );
        let _ = writeln!(
            s,
            "{:>6} {:>7} {:>11} {:>11} {:>11} {:>8}",
            "round", "gates", "finish_s", "comm_s", "compute_s", "comm%"
        );
        for r in &self.rounds {
            match r.gating {
                Some(g) => {
                    let _ = writeln!(
                        s,
                        "{:>6} {:>7} {:>11.4} {:>11.4} {:>11.4} {:>7.1}%",
                        r.round,
                        g.device,
                        g.finish_s,
                        g.comm_s,
                        g.compute_s,
                        g.comm_fraction() * 100.0
                    );
                }
                None => {
                    let _ = writeln!(s, "{:>6} {:>7}", r.round, "-");
                }
            }
        }
        let _ = writeln!(s, "\n== cumulative gating attribution ==");
        let _ = writeln!(
            s,
            "{:>7} {:>8} {:>13} {:>11} {:>11}",
            "device", "rounds", "gated_time_s", "comm_s", "compute_s"
        );
        for a in &self.attribution {
            let _ = writeln!(
                s,
                "{:>7} {:>8} {:>13.4} {:>11.4} {:>11.4}",
                a.device, a.gated_rounds, a.gated_time_s, a.comm_s, a.compute_s
            );
        }
        s
    }

    /// Machine-checkable `fedobs/v1` JSON (hand-rolled, matching the
    /// telemetry codec's number formatting).
    pub fn to_json(&self) -> String {
        fn f(out: &mut String, v: f64) {
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        let mut s = String::from("{\"schema\":\"fedobs/v1\",\"total_sim_s\":");
        f(&mut s, self.total_sim_s);
        s.push_str(",\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"round\":{},\"bytes_down\":{},\"bytes_up\":{},\"skipped\":{}",
                r.round,
                r.bytes_down,
                r.bytes_up,
                u32::from(r.skipped)
            );
            if let Some(t) = r.sim_time_s {
                s.push_str(",\"sim_time_s\":");
                f(&mut s, t);
            }
            match r.gating {
                Some(g) => {
                    let _ = write!(s, ",\"gating\":{{\"device\":{},\"finish_s\":", g.device);
                    f(&mut s, g.finish_s);
                    s.push_str(",\"comm_s\":");
                    f(&mut s, g.comm_s);
                    s.push_str(",\"compute_s\":");
                    f(&mut s, g.compute_s);
                    s.push_str("}}");
                }
                None => s.push('}'),
            }
        }
        s.push_str("],\"critpath\":[");
        for (i, a) in self.attribution.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"device\":{},\"gated_rounds\":{},\"gated_time_s\":",
                a.device, a.gated_rounds
            );
            f(&mut s, a.gated_time_s);
            s.push_str(",\"comm_s\":");
            f(&mut s, a.comm_s);
            s.push_str(",\"compute_s\":");
            f(&mut s, a.compute_s);
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(round: u32, device: u32, download: f64, compute: f64, upload: f64) -> Event {
        Event::DeviceRound {
            round,
            device,
            download_s: download,
            compute_s: compute,
            upload_s: upload,
            finish_s: download + compute + upload,
            lag_s: 0.0,
        }
    }

    fn straggler_trace() -> Vec<Event> {
        // Two rounds, device 1 stragglers on compute in both.
        vec![
            leg(0, 0, 0.05, 0.2, 0.05),
            leg(0, 1, 0.05, 0.9, 0.05),
            Event::Bytes { round: 0, kind: "global_model".into(), direction: "down".into(), bytes: 200 },
            Event::Bytes { round: 0, kind: "local_model".into(), direction: "up".into(), bytes: 240 },
            Event::RoundEnd { round: 0, sim_time_s: 1.0 },
            leg(1, 0, 0.05, 0.2, 0.05),
            leg(1, 1, 0.05, 0.7, 0.05),
            Event::RoundEnd { round: 1, sim_time_s: 1.8 },
        ]
    }

    #[test]
    fn gating_device_is_slowest_finisher() {
        let t = Timeline::from_events(&straggler_trace());
        assert_eq!(t.rounds.len(), 2);
        for r in &t.rounds {
            let g = r.gating.expect("gating");
            assert_eq!(g.device, 1, "round {}", r.round);
        }
        // Rounds are 1-based in the reconstruction.
        assert_eq!(t.rounds[0].round, 1);
        assert!((t.total_sim_s - 1.8).abs() < 1e-12);
    }

    #[test]
    fn gating_split_matches_eq19_terms() {
        let t = Timeline::from_events(&straggler_trace());
        let g = t.rounds[0].gating.expect("gating");
        assert!((g.comm_s - 0.1).abs() < 1e-12, "d_com = download + upload");
        assert!((g.compute_s - 0.9).abs() < 1e-12, "d_cmp·τ = compute leg");
        assert!((g.finish_s - (g.comm_s + g.compute_s)).abs() < 1e-12);
        let (comm, compute) = t.eq19_totals();
        assert!((comm - 0.2).abs() < 1e-12);
        assert!((compute - 1.6).abs() < 1e-12);
    }

    #[test]
    fn attribution_accumulates_across_rounds() {
        let t = Timeline::from_events(&straggler_trace());
        assert_eq!(t.attribution.len(), 1, "only the straggler ever gates");
        let a = t.attribution[0];
        assert_eq!(a.device, 1);
        assert_eq!(a.gated_rounds, 2);
        assert!((a.gated_time_s - 1.8).abs() < 1e-12);
    }

    #[test]
    fn gating_ties_break_to_lowest_device() {
        let events = vec![leg(0, 3, 0.1, 0.2, 0.1), leg(0, 1, 0.1, 0.2, 0.1)];
        let t = Timeline::from_events(&events);
        assert_eq!(t.rounds[0].gating.expect("gating").device, 1);
    }

    #[test]
    fn participation_marks_skipped_rounds() {
        let events = vec![Event::Participation {
            round: 2,
            responded: 1,
            crashed: 1,
            offline: 0,
            deadline_miss: 0,
            link_failed: 0,
            weight: 0.4,
            skipped: 1,
        }];
        let t = Timeline::from_events(&events);
        assert_eq!(t.rounds[0].round, 2, "participation rounds are already 1-based");
        assert!(t.rounds[0].skipped);
        assert!(t.rounds[0].gating.is_none());
    }

    #[test]
    fn bytes_accumulate_per_direction() {
        let t = Timeline::from_events(&straggler_trace());
        assert_eq!(t.rounds[0].bytes_down, 200);
        assert_eq!(t.rounds[0].bytes_up, 240);
        assert_eq!(t.rounds[1].bytes_down, 0);
    }

    #[test]
    fn json_is_parseable_and_versioned() {
        let t = Timeline::from_events(&straggler_trace());
        let j = t.to_json();
        assert!(j.starts_with("{\"schema\":\"fedobs/v1\""));
        assert!(j.contains("\"critpath\":[{\"device\":1,\"gated_rounds\":2"));
        // Balanced braces/brackets (cheap structural sanity without a
        // JSON dependency).
        let opens = j.matches('{').count() + j.matches('[').count();
        let closes = j.matches('}').count() + j.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn renders_mark_the_gate() {
        let t = Timeline::from_events(&straggler_trace());
        let tl = t.render_timeline();
        assert!(tl.contains('*'));
        let cp = t.render_critpath();
        assert!(cp.contains("eq. 19"));
        assert!(cp.contains("cumulative gating attribution"));
    }

    /// A sampled round emits `device_round` legs only for the active
    /// set, with stable (population-level) device ids. Sparse ids like
    /// {3, 42, 99} out of a large population must flow through
    /// unchanged: the gate is a member of the sampled set, not an index
    /// into it.
    fn sampled_trace() -> Vec<Event> {
        vec![
            // Round 0 samples {3, 42, 99}; 99 stragglers.
            leg(0, 42, 0.05, 0.2, 0.05),
            leg(0, 99, 0.05, 0.8, 0.05),
            leg(0, 3, 0.05, 0.3, 0.05),
            Event::RoundEnd { round: 0, sim_time_s: 0.9 },
            // Round 1 samples a disjoint set {7, 512}; 512 stragglers.
            leg(1, 512, 0.05, 0.6, 0.05),
            leg(1, 7, 0.05, 0.1, 0.05),
            Event::RoundEnd { round: 1, sim_time_s: 1.6 },
        ]
    }

    #[test]
    fn sampled_round_gates_within_the_sampled_set() {
        let t = Timeline::from_events(&sampled_trace());
        assert_eq!(t.rounds.len(), 2);
        let r1 = &t.rounds[0];
        let sampled: Vec<u32> = r1.devices.iter().map(|d| d.device).collect();
        assert_eq!(sampled, vec![3, 42, 99], "legs carry stable ids, sorted");
        let g = r1.gating.expect("gating");
        assert!(sampled.contains(&g.device), "gate must be a sampled device");
        assert_eq!(g.device, 99, "slowest sampled device gates");
        let g2 = t.rounds[1].gating.expect("gating");
        assert_eq!(g2.device, 512, "round 2 gates within its own sample");
    }

    #[test]
    fn sampled_round_attribution_never_names_unsampled_devices() {
        let t = Timeline::from_events(&sampled_trace());
        let ever_sampled = [3u32, 7, 42, 99, 512];
        for a in &t.attribution {
            assert!(
                ever_sampled.contains(&a.device),
                "device {} attributed but never sampled",
                a.device
            );
        }
        // Only the per-round gates accumulate: {99, 512}, gated-time
        // descending.
        let gates: Vec<u32> = t.attribution.iter().map(|a| a.device).collect();
        assert_eq!(gates, vec![99, 512]);
        // And devices sampled in one round never leak legs into
        // another: round 2 holds exactly its own active set.
        let r2: Vec<u32> = t.rounds[1].devices.iter().map(|d| d.device).collect();
        assert_eq!(r2, vec![7, 512]);
    }

    #[test]
    fn sampled_rounds_keep_eq19_accounting_per_active_set() {
        let t = Timeline::from_events(&sampled_trace());
        let (comm, compute) = t.eq19_totals();
        // Gates are 99 (0.1 comm + 0.8 compute) and 512 (0.1 + 0.6):
        // unsampled devices contribute nothing to the decomposition.
        assert!((comm - 0.2).abs() < 1e-12);
        assert!((compute - 1.4).abs() < 1e-12);
        let cp = t.render_critpath();
        assert!(cp.contains(" 99 "), "critpath names the sampled gate");
        assert!(!cp.contains(" 1000 "), "no fabricated population ids");
    }
}
