//! The run ledger: one versioned identity record per run.
//!
//! A [`RunLedger`] is the parsed form of the [`Event::RunMeta`] header
//! that `TraceSession` stitches into every JSONL sink it writes. Its
//! job is *provable joinability*: two files describe the same run
//! exactly when their ledgers match on every identity field, and any
//! cross-file analysis (fedobs timelines, fedperf baselines) can refuse
//! mismatched inputs instead of silently comparing apples to oranges.

use fedprox_telemetry::event::Event;

/// The identity of one run, as recorded in its JSONL headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunLedger {
    /// Ledger schema version.
    pub version: u32,
    /// FNV-1a 64 digest of the canonical config description.
    pub config: String,
    /// Master seed.
    pub seed: u64,
    /// Tensor-kernel selector active for the run.
    pub kernel: String,
    /// Digest of the fault-plan description (empty-string digest when
    /// fault-free).
    pub faults: String,
    /// Comma-joined compiled feature set.
    pub features: String,
    /// Comma-joined `crate=version` pairs.
    pub crates: String,
}

impl RunLedger {
    /// Extract the first `run_meta` header from an event stream.
    pub fn from_events(events: &[Event]) -> Option<RunLedger> {
        events.iter().find_map(|e| match e {
            Event::RunMeta { version, config, seed, kernel, faults, features, crates } => {
                Some(RunLedger {
                    version: *version,
                    config: config.clone(),
                    seed: *seed,
                    kernel: kernel.clone(),
                    faults: faults.clone(),
                    features: features.clone(),
                    crates: crates.clone(),
                })
            }
            _ => None,
        })
    }

    /// The ledger as its event form (for re-emission into a sink).
    pub fn to_event(&self) -> Event {
        Event::RunMeta {
            version: self.version,
            config: self.config.clone(),
            seed: self.seed,
            kernel: self.kernel.clone(),
            faults: self.faults.clone(),
            features: self.features.clone(),
            crates: self.crates.clone(),
        }
    }

    /// Field-by-field comparison: `(field, self's value, other's
    /// value)` for every differing field, in a fixed field order.
    /// Empty exactly when the two runs are provably joinable.
    pub fn diff(&self, other: &RunLedger) -> Vec<(&'static str, String, String)> {
        let mut out = Vec::new();
        let mut cmp = |field: &'static str, a: String, b: String| {
            if a != b {
                out.push((field, a, b));
            }
        };
        cmp("version", self.version.to_string(), other.version.to_string());
        cmp("config", self.config.clone(), other.config.clone());
        cmp("seed", self.seed.to_string(), other.seed.to_string());
        cmp("kernel", self.kernel.clone(), other.kernel.clone());
        cmp("faults", self.faults.clone(), other.faults.clone());
        cmp("features", self.features.clone(), other.features.clone());
        cmp("crates", self.crates.clone(), other.crates.clone());
        out
    }

    /// One-line rendering for `fedobs ledger` listings.
    pub fn render_line(&self) -> String {
        format!(
            "v{} config={} seed={} kernel={} faults={} features=[{}] crates=[{}]",
            self.version, self.config, self.seed, self.kernel, self.faults, self.features,
            self.crates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> RunLedger {
        RunLedger {
            version: 1,
            config: "9e3779b97f4a7c15".into(),
            seed: 42,
            kernel: "tiled-par".into(),
            faults: "cbf29ce484222325".into(),
            features: "telemetry".into(),
            crates: "fedprox=0.1.0".into(),
        }
    }

    #[test]
    fn roundtrips_through_its_event() {
        let l = ledger();
        let events = vec![
            Event::RoundEnd { round: 0, sim_time_s: 1.0 },
            l.to_event(),
        ];
        assert_eq!(RunLedger::from_events(&events), Some(l));
    }

    #[test]
    fn absent_header_yields_none() {
        assert_eq!(
            RunLedger::from_events(&[Event::RoundEnd { round: 0, sim_time_s: 1.0 }]),
            None
        );
    }

    #[test]
    fn diff_is_empty_for_identical_runs() {
        assert!(ledger().diff(&ledger()).is_empty());
    }

    #[test]
    fn diff_names_every_differing_field() {
        let mut b = ledger();
        b.seed = 7;
        b.kernel = "reference".into();
        let d = ledger().diff(&b);
        let fields: Vec<&str> = d.iter().map(|(f, _, _)| *f).collect();
        assert_eq!(fields, vec!["seed", "kernel"]);
        assert_eq!(d[0].1, "42");
        assert_eq!(d[0].2, "7");
    }
}
