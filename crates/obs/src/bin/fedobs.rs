//! `fedobs`: correlate FedProxVR JSONL streams — run ledgers, round
//! timelines, eq. (19) critical paths, and post-mortem bundles.
//!
//! ```text
//! fedobs ledger <run.jsonl>...            list each file's run-ledger header
//! fedobs ledger diff <a.jsonl> <b.jsonl>  compare two runs' identities
//! fedobs timeline <run.jsonl>             per-round per-device timeline
//! fedobs critpath <run.jsonl> [--json]    gating device + comm/compute split
//! fedobs postmortem <run.jsonl>           bundle around the first trigger
//! ```
//!
//! Exit codes are CI-gateable: `ledger diff` fails when the runs are
//! not provably joinable, `ledger` fails on a file with no header, and
//! `postmortem` fails when the stream carries no trigger marker. Works
//! on any file produced by `--obs`/`--trace` on the bench binaries;
//! needs no cargo features.

// CLI binary: aborting with context on a broken invocation or file is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_obs::postmortem::{PostmortemBundle, POSTMORTEM_WINDOW};
use fedprox_obs::{RunLedger, Timeline};
use fedprox_telemetry::event::Event;
use fedprox_telemetry::jsonl;
use std::process::ExitCode;

const USAGE: &str = "usage: fedobs ledger <run.jsonl>...\n\
                     \u{20}      fedobs ledger diff <a.jsonl> <b.jsonl>\n\
                     \u{20}      fedobs timeline <run.jsonl>\n\
                     \u{20}      fedobs critpath <run.jsonl> [--json]\n\
                     \u{20}      fedobs postmortem <run.jsonl>";

enum Cmd {
    Ledger { paths: Vec<String> },
    LedgerDiff { a: String, b: String },
    Timeline { path: String },
    Critpath { path: String, json: bool },
    Postmortem { path: String },
}

fn parse_args(argv: &[String]) -> Result<Cmd, String> {
    let mut json = false;
    let mut words: Vec<String> = Vec::new();
    for arg in argv {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            other => words.push(other.to_string()),
        }
    }
    match words.split_first() {
        Some((sub, rest)) => match (sub.as_str(), rest) {
            ("ledger", rest) if rest.first().is_some_and(|w| w == "diff") => match rest {
                [_, a, b] => Ok(Cmd::LedgerDiff { a: a.clone(), b: b.clone() }),
                _ => Err(USAGE.to_string()),
            },
            ("ledger", paths) if !paths.is_empty() => Ok(Cmd::Ledger { paths: paths.to_vec() }),
            ("timeline", [path]) => Ok(Cmd::Timeline { path: path.clone() }),
            ("critpath", [path]) => Ok(Cmd::Critpath { path: path.clone(), json }),
            ("postmortem", [path]) => Ok(Cmd::Postmortem { path: path.clone() }),
            _ => Err(USAGE.to_string()),
        },
        None => Err(USAGE.to_string()),
    }
}

fn load(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    jsonl::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(cmd: Cmd) -> Result<ExitCode, String> {
    match cmd {
        Cmd::Ledger { paths } => {
            let mut missing = false;
            for path in &paths {
                match RunLedger::from_events(&load(path)?) {
                    Some(l) => println!("{path}: {}", l.render_line()),
                    None => {
                        println!("{path}: no run-ledger header");
                        missing = true;
                    }
                }
            }
            Ok(if missing { ExitCode::FAILURE } else { ExitCode::SUCCESS })
        }
        Cmd::LedgerDiff { a, b } => {
            let la = RunLedger::from_events(&load(&a)?)
                .ok_or_else(|| format!("{a}: no run-ledger header"))?;
            let lb = RunLedger::from_events(&load(&b)?)
                .ok_or_else(|| format!("{b}: no run-ledger header"))?;
            let diff = la.diff(&lb);
            if diff.is_empty() {
                println!("identical: {}", la.render_line());
                Ok(ExitCode::SUCCESS)
            } else {
                println!("runs differ on {} field(s):", diff.len());
                for (field, va, vb) in diff {
                    println!("  {field}: {va} != {vb}");
                }
                Ok(ExitCode::FAILURE)
            }
        }
        Cmd::Timeline { path } => {
            let t = Timeline::from_events(&load(&path)?);
            print!("{}", t.render_timeline());
            Ok(ExitCode::SUCCESS)
        }
        Cmd::Critpath { path, json } => {
            let t = Timeline::from_events(&load(&path)?);
            if json {
                println!("{}", t.to_json());
            } else {
                print!("{}", t.render_critpath());
            }
            Ok(ExitCode::SUCCESS)
        }
        Cmd::Postmortem { path } => {
            match PostmortemBundle::from_events(&load(&path)?, POSTMORTEM_WINDOW) {
                Some(b) => {
                    print!("{}", b.render());
                    Ok(ExitCode::SUCCESS)
                }
                None => Err(format!("{path}: no post-mortem marker in stream")),
            }
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fedobs: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_every_subcommand() {
        assert!(matches!(
            parse_args(&args(&["ledger", "a.jsonl", "b.jsonl"])),
            Ok(Cmd::Ledger { paths }) if paths.len() == 2
        ));
        assert!(matches!(
            parse_args(&args(&["ledger", "diff", "a.jsonl", "b.jsonl"])),
            Ok(Cmd::LedgerDiff { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["timeline", "a.jsonl"])),
            Ok(Cmd::Timeline { .. })
        ));
        assert!(matches!(
            parse_args(&args(&["critpath", "a.jsonl"])),
            Ok(Cmd::Critpath { json: false, .. })
        ));
        assert!(matches!(
            parse_args(&args(&["critpath", "a.jsonl", "--json"])),
            Ok(Cmd::Critpath { json: true, .. })
        ));
        assert!(matches!(
            parse_args(&args(&["postmortem", "a.jsonl"])),
            Ok(Cmd::Postmortem { .. })
        ));
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["ledger"])).is_err());
        assert!(parse_args(&args(&["timeline"])).is_err());
        assert!(parse_args(&args(&["timeline", "a", "b"])).is_err());
        assert!(parse_args(&args(&["frobnicate", "a.jsonl"])).is_err());
        assert!(parse_args(&args(&["critpath", "a.jsonl", "--wat"])).is_err());
    }

    #[test]
    fn ledger_diff_needs_exactly_two_files() {
        assert!(parse_args(&args(&["ledger", "diff", "a.jsonl"])).is_err());
        // Three positionals after `diff` do not silently truncate.
        assert!(parse_args(&args(&["ledger", "diff", "a", "b", "c"])).is_err());
    }
}
