//! Correlation layer over the FedProxVR JSONL streams.
//!
//! The runtime emits four per-run JSONL streams (fedtrace spans,
//! fedscope health, fedprof path stats, fedresil participation) plus
//! the `--obs` simulation stream. This crate joins them:
//!
//! * [`ledger`] — the versioned [`RunLedger`] header stitched into
//!   every sink at `TraceSession` start. Two files can be provably
//!   joined (same config digest, seed, kernel, feature set) or refused.
//! * [`timeline`] — per-round per-device timelines reconstructed on the
//!   virtual clock from `DeviceRound` / `Bytes` / `RoundEnd` /
//!   `Participation` events, with the gating device and its
//!   comm-vs-compute split per the paper's eq. (19) time model
//!   `T·(d_com + d_cmp·τ)`, and cumulative gating attribution.
//! * [`postmortem`] — the correlated bundle around a flight-recorder
//!   marker (`non_finite` / `loss_guard` / `quorum_skip`): the last-K
//!   event window, the ledger, and a timeline excerpt.
//!
//! Everything here consumes *simulation observations*, which are
//! bitwise-reproducible across same-seed runs; the `fedobs` binary
//! renders the same facts as tables or machine-checkable `fedobs/v1`
//! JSON.
//!
//! [`RunLedger`]: ledger::RunLedger

pub mod ledger;
pub mod postmortem;
pub mod timeline;

pub use ledger::RunLedger;
pub use postmortem::PostmortemBundle;
pub use timeline::Timeline;

/// FNV-1a 64-bit digest, rendered as fixed-width lowercase hex. The
/// run ledger digests canonical config / fault-plan descriptions with
/// it: stable across platforms, dependency-free, and cheap enough to
/// stamp on every run.
pub fn fnv64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::fnv64;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Offset basis for the empty string; classic FNV-1a vectors.
        assert_eq!(fnv64(""), "cbf29ce484222325");
        assert_eq!(fnv64("a"), "af63dc4c8601ec8c");
        assert_eq!(fnv64("foobar"), "85944171f73967e8");
    }

    #[test]
    fn fnv64_is_stable_and_distinguishes() {
        assert_eq!(fnv64("rounds=10"), fnv64("rounds=10"));
        assert_ne!(fnv64("rounds=10"), fnv64("rounds=11"));
    }
}
