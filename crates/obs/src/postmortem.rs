//! Correlated post-mortem bundles around flight-recorder markers.
//!
//! When a run diverges (`non_finite`, `loss_guard`) or a round is
//! skipped below quorum, the collector records an in-stream
//! [`Event::Postmortem`] marker and snapshots its flight-recorder
//! ring. Offline, the marker's position inside the JSONL stream
//! recovers the same information: [`PostmortemBundle::from_events`]
//! takes the last-K raw events *preceding* the first marker as the
//! failure window and correlates it with the run ledger and the
//! timeline of the surrounding rounds.

use crate::ledger::RunLedger;
use crate::timeline::Timeline;
use fedprox_telemetry::event::Event;
use std::fmt::Write as _;

/// Window size of the offline bundle, mirroring the collector's
/// in-memory flight ring (`FLIGHT_RING_CAP`); kept as an independent
/// constant because the collector symbol only exists in
/// telemetry-enabled builds.
pub const POSTMORTEM_WINDOW: usize = 256;

/// Everything known about the first failure of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemBundle {
    /// Marker round (1-based).
    pub round: u32,
    /// Trigger kind (`non_finite`, `loss_guard`, `quorum_skip`).
    pub reason: String,
    /// Implicated device, when one was attributed.
    pub device: Option<u32>,
    /// The last-K raw events preceding the marker, oldest first.
    pub window: Vec<Event>,
    /// The run's ledger header, when the stream carried one.
    pub ledger: Option<RunLedger>,
    /// Timeline of the rounds covered by the window.
    pub excerpt: Timeline,
}

/// Event kinds that belong in a failure window: per-round simulation
/// and health observations, not aggregates or headers.
fn windowed(e: &Event) -> bool {
    matches!(
        e,
        Event::DeviceRound { .. }
            | Event::Bytes { .. }
            | Event::RoundEnd { .. }
            | Event::Health { .. }
            | Event::Anomaly { .. }
            | Event::Participation { .. }
    )
}

impl PostmortemBundle {
    /// Build the bundle around the *first* marker in the stream, with
    /// a window of up to `k` preceding raw events. `None` when the
    /// stream carries no marker (the run ended healthy).
    pub fn from_events(events: &[Event], k: usize) -> Option<PostmortemBundle> {
        let (pos, round, reason, device) = events.iter().enumerate().find_map(|(i, e)| match e {
            Event::Postmortem { round, reason, device } => {
                Some((i, *round, reason.clone(), *device))
            }
            _ => None,
        })?;
        let mut window: Vec<Event> =
            events[..pos].iter().filter(|e| windowed(e)).cloned().collect();
        if window.len() > k {
            window.drain(..window.len() - k);
        }
        let excerpt = Timeline::from_events(&window);
        Some(PostmortemBundle {
            round,
            reason,
            device,
            window,
            ledger: RunLedger::from_events(events),
            excerpt,
        })
    }

    /// Human rendering for `fedobs postmortem`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let dev = match self.device {
            Some(d) => format!("device {d}"),
            None => "no attributed device".to_string(),
        };
        let _ = writeln!(
            s,
            "post-mortem: {} at round {} ({})",
            self.reason, self.round, dev
        );
        match &self.ledger {
            Some(l) => {
                let _ = writeln!(s, "run: {}", l.render_line());
            }
            None => {
                let _ = writeln!(s, "run: no ledger header in stream");
            }
        }
        let _ = writeln!(s, "window: {} events before the trigger", self.window.len());
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for e in &self.window {
            *counts.entry(e.kind()).or_insert(0) += 1;
        }
        for (kind, n) in counts {
            let _ = writeln!(s, "  {kind}: {n}");
        }
        if !self.excerpt.rounds.is_empty() {
            let _ = writeln!(s, "\n== timeline excerpt (window rounds) ==");
            s.push_str(&self.excerpt.render_critpath());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulted_trace() -> Vec<Event> {
        vec![
            Event::RunMeta {
                version: 1,
                config: "9e3779b97f4a7c15".into(),
                seed: 42,
                kernel: "tiled-par".into(),
                faults: "85944171f73967e8".into(),
                features: "telemetry".into(),
                crates: "fedprox=0.1.0".into(),
            },
            Event::DeviceRound {
                round: 0,
                device: 0,
                download_s: 0.05,
                compute_s: 0.2,
                upload_s: 0.05,
                finish_s: 0.3,
                lag_s: 0.0,
            },
            Event::RoundEnd { round: 0, sim_time_s: 0.3 },
            Event::Counter { name: "optim.inner_step".into(), value: 4 },
            Event::Participation {
                round: 2,
                responded: 1,
                crashed: 1,
                offline: 0,
                deadline_miss: 0,
                link_failed: 0,
                weight: 0.4,
                skipped: 1,
            },
            Event::Postmortem { round: 2, reason: "quorum_skip".into(), device: Some(1) },
            Event::RoundEnd { round: 2, sim_time_s: 0.9 },
            Event::Postmortem { round: 3, reason: "quorum_skip".into(), device: Some(1) },
        ]
    }

    #[test]
    fn bundle_anchors_on_first_marker() {
        let b = PostmortemBundle::from_events(&faulted_trace(), POSTMORTEM_WINDOW)
            .expect("marker present");
        assert_eq!(b.round, 2);
        assert_eq!(b.reason, "quorum_skip");
        assert_eq!(b.device, Some(1));
        // Window holds only the raw events *before* the first marker:
        // the device round, its round end, and the participation record
        // — not the counter, not the ledger, not post-marker events.
        assert_eq!(b.window.len(), 3);
        assert!(b.window.iter().all(|e| e.kind() != "counter"));
        assert!(b.ledger.as_ref().is_some_and(|l| l.seed == 42));
    }

    #[test]
    fn window_is_bounded_to_k_most_recent() {
        let mut events = faulted_trace();
        // Insert many filler rounds before the marker.
        let marker = events.iter().position(|e| matches!(e, Event::Postmortem { .. }))
            .expect("marker");
        for i in 0..10 {
            events.insert(marker, Event::RoundEnd { round: 100 + i, sim_time_s: i as f64 });
        }
        let b = PostmortemBundle::from_events(&events, 4).expect("marker present");
        assert_eq!(b.window.len(), 4);
        assert!(b.window.iter().all(|e| matches!(e, Event::RoundEnd { .. } | Event::Participation { .. })));
    }

    #[test]
    fn healthy_stream_has_no_bundle() {
        let events = vec![Event::RoundEnd { round: 0, sim_time_s: 1.0 }];
        assert!(PostmortemBundle::from_events(&events, POSTMORTEM_WINDOW).is_none());
    }

    #[test]
    fn render_names_the_failure() {
        let b = PostmortemBundle::from_events(&faulted_trace(), POSTMORTEM_WINDOW)
            .expect("marker present");
        let text = b.render();
        assert!(text.contains("quorum_skip at round 2 (device 1)"));
        assert!(text.contains("config=9e3779b97f4a7c15"));
        assert!(text.contains("round_end: 1"));
    }
}
