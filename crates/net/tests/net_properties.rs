//! Property-based tests of the network substrate.

use fedprox_net::clock::{paper_training_time, DeviceRoundTiming, VirtualClock};
use fedprox_net::codec::{decode, encode, encoded_len};
use fedprox_net::{DelayModel, LinkSpec, Message};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_roundtrip_global(round in any::<u32>(),
                              params in proptest::collection::vec(any::<f64>(), 0..50)) {
        let msg = Message::GlobalModel { round, params };
        let buf = encode(&msg);
        prop_assert_eq!(buf.len(), encoded_len(&msg));
        let back = decode(&buf).unwrap();
        match (&back, &msg) {
            (Message::GlobalModel { round: r2, params: p2 },
             Message::GlobalModel { round: r1, params: p1 }) => {
                prop_assert_eq!(r1, r2);
                prop_assert_eq!(p1.len(), p2.len());
                for (a, b) in p1.iter().zip(p2) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            _ => prop_assert!(false),
        }
    }

    #[test]
    fn truncation_never_panics(round in any::<u32>(),
                               params in proptest::collection::vec(any::<f64>(), 0..20),
                               cut_frac in 0.0f64..1.0) {
        let buf = encode(&Message::GlobalModel { round, params });
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        // Must return Ok or Err — never panic.
        let _ = decode(&buf[..cut]);
    }

    #[test]
    fn delays_are_nonnegative(seed in any::<u64>(), lo in 0.0f64..1.0, span in 0.0f64..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for m in [
            DelayModel::Constant(lo),
            DelayModel::Uniform { lo, hi: lo + span },
            DelayModel::LogNormal { mu: -2.0, sigma: 0.8 },
        ] {
            for _ in 0..20 {
                prop_assert!(m.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn transfer_time_monotone_in_bytes(seed in any::<u64>(), b1 in 0usize..10_000, extra in 1usize..10_000) {
        let link = LinkSpec { latency: DelayModel::Constant(0.01), bytes_per_sec: 1e5 };
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let t1 = link.transfer_time(b1, &mut r1);
        let t2 = link.transfer_time(b1 + extra, &mut r2);
        prop_assert!(t2 > t1);
    }

    #[test]
    fn clock_time_is_monotone_and_bounded_by_sum(
        rounds in proptest::collection::vec(
            proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..6),
            1..8)
    ) {
        let mut clock = VirtualClock::new();
        let mut prev = 0.0;
        let mut worst_sum = 0.0;
        for round in &rounds {
            let timings: Vec<DeviceRoundTiming> = round
                .iter()
                .map(|&(d, c, u)| DeviceRoundTiming { download: d, compute: c, upload: u })
                .collect();
            let dur = clock.advance_round(&timings);
            prop_assert!(clock.now() >= prev);
            prop_assert!(dur <= 3.0 + 1e-12);
            // Round duration equals the max device total.
            let max = timings.iter().map(DeviceRoundTiming::total).fold(0.0, f64::max);
            prop_assert!((dur - max).abs() < 1e-12);
            prev = clock.now();
            worst_sum += max;
        }
        prop_assert!((clock.now() - worst_sum).abs() < 1e-9);
        prop_assert_eq!(clock.rounds(), rounds.len() as u64);
        prop_assert!(clock.straggler_waste() >= -1e-12);
    }

    #[test]
    fn eq19_matches_homogeneous_clock(t in 1u64..50, d_com in 0.0f64..1.0,
                                      d_cmp in 0.0f64..0.1, tau in 0usize..50) {
        let mut clock = VirtualClock::new();
        for _ in 0..t {
            clock.advance_round(&[DeviceRoundTiming {
                download: d_com / 2.0,
                compute: d_cmp * tau as f64,
                upload: d_com / 2.0,
            }; 3]);
        }
        let want = paper_training_time(t, d_com, d_cmp, tau);
        prop_assert!((clock.now() - want).abs() < 1e-6 * want.max(1.0));
    }
}
