//! Virtual clock for synchronous federated rounds.
//!
//! Algorithm 1 aggregates *synchronously* (line 12 waits for all devices),
//! so the simulated duration of round `s` is the **maximum** over devices
//! of `download + compute + upload`; total training time is the sum over
//! rounds. With homogeneous constant delays this reduces exactly to the
//! paper's eq. (19): `T · (d_com + d_cmp · τ)`.

/// Per-device timing of one round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceRoundTiming {
    /// Server → device transfer time.
    pub download: f64,
    /// Local computation time.
    pub compute: f64,
    /// Device → server transfer time.
    pub upload: f64,
}

impl DeviceRoundTiming {
    /// Total wall time this device contributes to the round.
    pub fn total(&self) -> f64 {
        self.download + self.compute + self.upload
    }
}

/// Accumulates simulated time and traffic across rounds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VirtualClock {
    now: f64,
    rounds: u64,
    bytes_down: u64,
    bytes_up: u64,
    /// Sum over rounds of the *straggler margin*: round duration minus the
    /// mean device duration — how much synchronity costs.
    straggler_waste: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by one synchronous round. Returns the round's duration.
    pub fn advance_round(&mut self, timings: &[DeviceRoundTiming]) -> f64 {
        assert!(!timings.is_empty(), "advance_round: no devices");
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for t in timings {
            let tot = t.total();
            debug_assert!(tot >= 0.0 && tot.is_finite());
            max = max.max(tot);
            sum += tot;
        }
        self.now += max;
        self.rounds += 1;
        self.straggler_waste += max - sum / timings.len() as f64;
        max
    }

    /// Advance by one synchronous round in which only some devices took
    /// part. `candidates` holds each participating device's elapsed time
    /// — a responder's finish, a missed round deadline, a failed link's
    /// wasted transfer time — and the round lasts as long as the slowest
    /// of them, or no time at all when nobody participated (the round
    /// still counts). Waste accounting matches
    /// [`VirtualClock::advance_round`] over the same candidates.
    pub fn advance_partial_round(&mut self, candidates: &[f64]) -> f64 {
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        for &c in candidates {
            debug_assert!(c >= 0.0 && c.is_finite());
            max = max.max(c);
            sum += c;
        }
        self.now += max;
        self.rounds += 1;
        if !candidates.is_empty() {
            self.straggler_waste += max - sum / candidates.len() as f64;
        }
        max
    }

    /// Record traffic (bytes pushed server→devices and devices→server).
    pub fn record_traffic(&mut self, down: u64, up: u64) {
        self.bytes_down += down;
        self.bytes_up += up;
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total server→device bytes.
    pub fn bytes_down(&self) -> u64 {
        self.bytes_down
    }

    /// Total device→server bytes.
    pub fn bytes_up(&self) -> u64 {
        self.bytes_up
    }

    /// Accumulated synchronisation waste (see struct docs).
    pub fn straggler_waste(&self) -> f64 {
        self.straggler_waste
    }
}

/// The paper's closed-form training time, eq. (19):
/// `𝒯 = T (d_com + d_cmp τ)`.
pub fn paper_training_time(rounds: u64, d_com: f64, d_cmp: f64, tau: usize) -> f64 {
    rounds as f64 * (d_com + d_cmp * tau as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_duration_is_max_over_devices() {
        let mut clock = VirtualClock::new();
        let dur = clock.advance_round(&[
            DeviceRoundTiming { download: 0.1, compute: 0.5, upload: 0.1 },
            DeviceRoundTiming { download: 0.1, compute: 2.0, upload: 0.1 },
            DeviceRoundTiming { download: 0.2, compute: 0.3, upload: 0.2 },
        ]);
        assert!((dur - 2.2).abs() < 1e-12);
        assert!((clock.now() - 2.2).abs() < 1e-12);
        assert_eq!(clock.rounds(), 1);
    }

    #[test]
    fn homogeneous_rounds_match_eq19() {
        // constant d_com split half down / half up, d_cmp per iteration.
        let (d_com, d_cmp, tau, t) = (0.2, 0.01, 20usize, 50u64);
        let mut clock = VirtualClock::new();
        for _ in 0..t {
            let timing = DeviceRoundTiming {
                download: d_com / 2.0,
                compute: d_cmp * tau as f64,
                upload: d_com / 2.0,
            };
            clock.advance_round(&[timing; 10]);
        }
        let want = paper_training_time(t, d_com, d_cmp, tau);
        assert!((clock.now() - want).abs() < 1e-9, "{} vs {want}", clock.now());
    }

    #[test]
    fn straggler_waste_zero_when_homogeneous() {
        let mut clock = VirtualClock::new();
        let t = DeviceRoundTiming { download: 0.1, compute: 1.0, upload: 0.1 };
        clock.advance_round(&[t; 5]);
        assert!(clock.straggler_waste().abs() < 1e-12);
        // One straggler doubles the round: waste appears.
        let mut slow = t;
        slow.compute = 2.0;
        clock.advance_round(&[t, t, slow]);
        assert!(clock.straggler_waste() > 0.3);
    }

    #[test]
    fn traffic_accumulates() {
        let mut clock = VirtualClock::new();
        clock.record_traffic(100, 50);
        clock.record_traffic(10, 5);
        assert_eq!(clock.bytes_down(), 110);
        assert_eq!(clock.bytes_up(), 55);
    }

    #[test]
    #[should_panic(expected = "no devices")]
    fn empty_round_panics() {
        VirtualClock::new().advance_round(&[]);
    }

    #[test]
    fn partial_round_matches_full_round_over_same_candidates() {
        let mut full = VirtualClock::new();
        full.advance_round(&[
            DeviceRoundTiming { download: 0.25, compute: 0.5, upload: 0.25 },
            DeviceRoundTiming { download: 0.25, compute: 2.0, upload: 0.25 },
        ]);
        let mut partial = VirtualClock::new();
        let dur = partial.advance_partial_round(&[1.0, 2.5]);
        assert!((dur - 2.5).abs() < 1e-12);
        assert_eq!(partial.now().to_bits(), full.now().to_bits());
        assert_eq!(partial.straggler_waste().to_bits(), full.straggler_waste().to_bits());
        assert_eq!(partial.rounds(), 1);
    }

    #[test]
    fn empty_partial_round_counts_but_costs_nothing() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.advance_partial_round(&[]), 0.0);
        assert_eq!(clock.rounds(), 1);
        assert_eq!(clock.now(), 0.0);
        assert_eq!(clock.straggler_waste(), 0.0);
    }
}
