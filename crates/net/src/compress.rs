//! Lossy model-update compression for the uplink.
//!
//! The paper's communication-cost motivation (and its reference to
//! Konečný et al.'s "strategies for improving communication efficiency")
//! makes compression the natural companion substrate: devices send
//! *updates*, and updates tolerate sparsification/quantisation. Provided
//! schemes:
//!
//! * [`Compressor::TopK`] — keep the `k` largest-magnitude coordinates
//!   (index + value pairs on the wire),
//! * [`Compressor::Uniform`] — b-bit uniform quantisation over the
//!   value range (deterministic, round-to-nearest),
//! * [`Compressor::None`] — identity (raw f64s).
//!
//! Every scheme round-trips through a compact wire form with exact byte
//! accounting, so the communication experiments can price them.

use bytes::{Buf, BufMut, BytesMut};

/// A compression scheme for flat parameter vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compressor {
    /// Identity: 8 bytes per coordinate.
    None,
    /// Keep the `k` largest-|v| coordinates; the rest decode to zero.
    TopK {
        /// How many coordinates to keep.
        k: usize,
    },
    /// Uniform quantisation to `bits` bits per coordinate over the
    /// vector's `[min, max]` range (plus a 16-byte header).
    Uniform {
        /// Bits per coordinate (1..=16).
        bits: u8,
    },
}

/// A compressed vector plus everything needed to reconstruct it.
#[derive(Debug, Clone, PartialEq)]
pub struct Compressed {
    /// Wire bytes.
    pub payload: Vec<u8>,
    /// Original length (needed by Top-K to re-densify).
    pub dim: u32,
    /// Which scheme produced it.
    pub scheme: u8,
}

const SCHEME_NONE: u8 = 0;
const SCHEME_TOPK: u8 = 1;
const SCHEME_UNIFORM: u8 = 2;

impl Compressor {
    /// Compress `v`.
    pub fn compress(&self, v: &[f64]) -> Compressed {
        match *self {
            Compressor::None => {
                let mut buf = BytesMut::with_capacity(v.len() * 8);
                for &x in v {
                    buf.put_f64_le(x);
                }
                Compressed { payload: buf.to_vec(), dim: v.len() as u32, scheme: SCHEME_NONE }
            }
            Compressor::TopK { k } => {
                let k = k.min(v.len());
                // Indices of the k largest magnitudes. The key closure is
                // total (out-of-range reads as 0.0), so ordering needs no
                // indexing that could panic.
                let mag = |i: u32| v.get(i as usize).map_or(0.0, |x| x.abs());
                let mut idx: Vec<u32> = (0..v.len() as u32).collect();
                idx.select_nth_unstable_by(
                    k.saturating_sub(1).min(v.len().saturating_sub(1)),
                    |&a, &b| mag(b).total_cmp(&mag(a)),
                );
                idx.truncate(k);
                let mut kept = idx;
                kept.sort_unstable();
                let mut buf = BytesMut::with_capacity(4 + k * 12);
                buf.put_u32_le(k as u32);
                for &i in &kept {
                    buf.put_u32_le(i);
                    buf.put_f64_le(v.get(i as usize).copied().unwrap_or(0.0));
                }
                Compressed { payload: buf.to_vec(), dim: v.len() as u32, scheme: SCHEME_TOPK }
            }
            Compressor::Uniform { bits } => {
                assert!((1..=16).contains(&bits), "bits must be in 1..=16");
                let levels = (1u32 << bits) - 1;
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &x in v {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                if v.is_empty() {
                    lo = 0.0;
                    hi = 0.0;
                }
                let span = if hi > lo { hi - lo } else { 1.0 };
                let mut buf = BytesMut::with_capacity(17 + v.len() * 2);
                buf.put_f64_le(lo);
                buf.put_f64_le(hi);
                buf.put_u8(bits);
                // Pack codes bit-by-bit.
                let mut acc: u64 = 0;
                let mut nbits: u32 = 0;
                for &x in v {
                    let q = (((x - lo) / span) * levels as f64).round() as u64;
                    acc |= q << nbits;
                    nbits += bits as u32;
                    while nbits >= 8 {
                        buf.put_u8((acc & 0xFF) as u8);
                        acc >>= 8;
                        nbits -= 8;
                    }
                }
                if nbits > 0 {
                    buf.put_u8((acc & 0xFF) as u8);
                }
                Compressed { payload: buf.to_vec(), dim: v.len() as u32, scheme: SCHEME_UNIFORM }
            }
        }
    }

    /// Decompress back to a dense vector.
    pub fn decompress(c: &Compressed) -> Vec<f64> {
        let dim = c.dim as usize;
        let mut buf: &[u8] = &c.payload;
        match c.scheme {
            SCHEME_NONE => {
                let mut out = Vec::with_capacity(dim);
                for _ in 0..dim {
                    out.push(buf.get_f64_le());
                }
                out
            }
            SCHEME_TOPK => {
                let k = buf.get_u32_le() as usize;
                let mut out = vec![0.0; dim];
                for _ in 0..k {
                    let i = buf.get_u32_le() as usize;
                    let v = buf.get_f64_le();
                    // The index came off the wire: a corrupt one must not
                    // panic the server, so out-of-range writes are dropped.
                    if let Some(slot) = out.get_mut(i) {
                        *slot = v;
                    }
                }
                out
            }
            SCHEME_UNIFORM => {
                let lo = buf.get_f64_le();
                let hi = buf.get_f64_le();
                let bits = buf.get_u8();
                let levels = (1u32 << bits) - 1;
                let span = if hi > lo { hi - lo } else { 1.0 };
                let mut out = Vec::with_capacity(dim);
                let mut acc: u64 = 0;
                let mut nbits: u32 = 0;
                for _ in 0..dim {
                    while nbits < bits as u32 {
                        acc |= (buf.get_u8() as u64) << nbits;
                        nbits += 8;
                    }
                    let q = acc & ((1u64 << bits) - 1);
                    acc >>= bits;
                    nbits -= bits as u32;
                    out.push(lo + q as f64 / levels as f64 * span);
                }
                out
            }
            // fedlint: allow(no-panic) — scheme tags are produced only by Compressor::compress in this process; an unknown tag is a codec bug, not input
            other => panic!("unknown compression scheme {other}"),
        }
    }

    /// Bytes on the wire for a `dim`-vector under this scheme (payload
    /// only, excluding framing).
    pub fn wire_bytes(&self, dim: usize) -> usize {
        match *self {
            Compressor::None => dim * 8,
            Compressor::TopK { k } => 4 + k.min(dim) * 12,
            Compressor::Uniform { bits } => 17 + (dim * bits as usize).div_ceil(8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 * 0.71).sin() * 3.0) + if i % 17 == 0 { 10.0 } else { 0.0 }).collect()
    }

    #[test]
    fn none_roundtrips_exactly() {
        let v = sample(100);
        let c = Compressor::None.compress(&v);
        assert_eq!(c.payload.len(), Compressor::None.wire_bytes(100));
        let back = Compressor::decompress(&c);
        assert_eq!(back, v);
    }

    #[test]
    fn topk_keeps_largest_magnitudes() {
        let v = vec![0.1, -5.0, 0.2, 3.0, -0.05];
        let c = Compressor::TopK { k: 2 }.compress(&v);
        let back = Compressor::decompress(&c);
        assert_eq!(back, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
        assert_eq!(c.payload.len(), Compressor::TopK { k: 2 }.wire_bytes(5));
    }

    #[test]
    fn topk_k_larger_than_dim_is_identity_support() {
        let v = vec![1.0, 2.0];
        let c = Compressor::TopK { k: 10 }.compress(&v);
        assert_eq!(Compressor::decompress(&c), v);
    }

    #[test]
    fn topk_compression_ratio() {
        // 1% of a CNN-sized vector: ~66x smaller than raw.
        let dim = 135_000;
        let scheme = Compressor::TopK { k: dim / 100 };
        let ratio = (dim * 8) as f64 / scheme.wire_bytes(dim) as f64;
        assert!(ratio > 40.0, "ratio {ratio}");
    }

    #[test]
    fn uniform_quantisation_error_bounded() {
        let v = sample(500);
        for bits in [4u8, 8, 12, 16] {
            let scheme = Compressor::Uniform { bits };
            let c = scheme.compress(&v);
            assert_eq!(c.payload.len(), scheme.wire_bytes(500));
            let back = Compressor::decompress(&c);
            let span = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().cloned().fold(f64::INFINITY, f64::min);
            let step = span / ((1u32 << bits) - 1) as f64;
            for (a, b) in v.iter().zip(&back) {
                assert!(
                    (a - b).abs() <= step / 2.0 + 1e-12,
                    "bits={bits}: err {} > half-step {}",
                    (a - b).abs(),
                    step / 2.0
                );
            }
        }
    }

    #[test]
    fn higher_bits_lower_error() {
        let v = sample(300);
        let err = |bits: u8| -> f64 {
            let back = Compressor::decompress(&Compressor::Uniform { bits }.compress(&v));
            v.iter().zip(&back).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        };
        assert!(err(4) > err(8));
        assert!(err(8) > err(12));
    }

    #[test]
    fn uniform_handles_constant_and_empty_vectors() {
        let v = vec![2.5; 20];
        let c = Compressor::Uniform { bits: 8 }.compress(&v);
        let back = Compressor::decompress(&c);
        for b in back {
            assert!((b - 2.5).abs() < 1e-12);
        }
        let e = Compressor::Uniform { bits: 8 }.compress(&[]);
        assert_eq!(Compressor::decompress(&e), Vec::<f64>::new());
    }

    #[test]
    fn quantised_wire_size_beats_raw() {
        let dim = 7850; // logistic model
        let q8 = Compressor::Uniform { bits: 8 }.wire_bytes(dim);
        assert!(q8 < dim * 8 / 7, "8-bit should be ~8x smaller, got {q8}");
    }
}
