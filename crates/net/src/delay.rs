//! Communication and computation delay models.
//!
//! The paper's time model (Section 4.3) uses two scalars: `d_com`, the
//! per-round communication delay, and `d_cmp`, the per-local-iteration
//! compute delay, combined as `T (d_com + d_cmp τ)` (eq. (19)) and reduced
//! to the single weight factor `γ = d_cmp / d_com`. These models supply
//! the randomness around those means when the runtime simulates
//! heterogeneous devices.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A non-negative random delay in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Always exactly `.0` seconds.
    Constant(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// LogNormal with the given log-space parameters — heavy-tailed, the
    /// classic straggler distribution.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std-dev of the underlying normal.
        sigma: f64,
    },
}

impl DelayModel {
    /// Draw one delay.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            DelayModel::Constant(d) => {
                debug_assert!(d >= 0.0);
                d
            }
            DelayModel::Uniform { lo, hi } => {
                debug_assert!(0.0 <= lo && lo <= hi);
                if lo == hi {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            DelayModel::LogNormal { mu, sigma } => {
                debug_assert!(sigma >= 0.0);
                match LogNormal::new(mu, sigma) {
                    Ok(d) => d.sample(rng),
                    // Degenerate σ: deterministic median e^μ.
                    Err(_) => mu.exp(),
                }
            }
        }
    }

    /// Expected value of the delay.
    pub fn mean(&self) -> f64 {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => (lo + hi) / 2.0,
            DelayModel::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
        }
    }
}

/// A directed link: fixed-latency draw plus size-proportional
/// transmission time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Per-message latency model.
    pub latency: DelayModel,
    /// Throughput in bytes/second (`f64::INFINITY` for latency-only).
    pub bytes_per_sec: f64,
}

impl LinkSpec {
    /// A constant-latency, infinite-bandwidth link.
    pub fn constant(latency: f64) -> Self {
        LinkSpec { latency: DelayModel::Constant(latency), bytes_per_sec: f64::INFINITY }
    }

    /// Total transfer time for a message of `bytes`.
    pub fn transfer_time<R: Rng>(&self, bytes: usize, rng: &mut R) -> f64 {
        let lat = self.latency.sample(rng);
        if self.bytes_per_sec.is_finite() {
            lat + bytes as f64 / self.bytes_per_sec
        } else {
            lat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = DelayModel::Constant(0.5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 0.5);
        }
        assert_eq!(m.mean(), 0.5);
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = DelayModel::Uniform { lo: 0.1, hi: 0.3 };
        let mut total = 0.0;
        for _ in 0..2000 {
            let s = m.sample(&mut rng);
            assert!((0.1..0.3).contains(&s));
            total += s;
        }
        assert!((total / 2000.0 - 0.2).abs() < 0.01);
        assert!((m.mean() - 0.2).abs() < 1e-12);
        // Degenerate interval.
        let d = DelayModel::Uniform { lo: 0.4, hi: 0.4 };
        assert_eq!(d.sample(&mut rng), 0.4);
    }

    #[test]
    fn lognormal_positive_and_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = DelayModel::LogNormal { mu: -2.0, sigma: 1.0 };
        let samples: Vec<f64> = (0..5000).map(|_| m.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - m.mean()).abs() < 0.05, "mean {mean} vs {}", m.mean());
        // Heavy tail: max sample far above the mean.
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0 * mean);
    }

    #[test]
    fn link_transfer_time_accounts_for_bandwidth() {
        let mut rng = StdRng::seed_from_u64(4);
        let link = LinkSpec { latency: DelayModel::Constant(0.1), bytes_per_sec: 1000.0 };
        let t = link.transfer_time(500, &mut rng);
        assert!((t - 0.6).abs() < 1e-12);
        let fast = LinkSpec::constant(0.1);
        assert_eq!(fast.transfer_time(1_000_000, &mut rng), 0.1);
    }
}
