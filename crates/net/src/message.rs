//! Wire messages exchanged between the server and devices.

/// A protocol message. Parameters travel as `f64` vectors — exactly the
/// local/global models of Algorithm 1 (lines 11–12).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → device: the current global model `w̄^{(s−1)}`.
    GlobalModel {
        /// Global iteration index `s`.
        round: u32,
        /// Flat model parameters.
        params: Vec<f64>,
    },
    /// Device → server: the local model `w_n^{(s)}` plus accounting.
    LocalModel {
        /// Sending device id.
        device: u32,
        /// Global iteration index `s`.
        round: u32,
        /// Flat model parameters.
        params: Vec<f64>,
        /// Aggregation weight `D_n / D`.
        weight: f64,
        /// Per-sample gradient evaluations spent this round.
        grad_evals: u64,
        /// Simulated local compute time in seconds.
        compute_time: f64,
    },
    /// Device → server: the worker panicked during its local update.
    /// Lets the server report *which* device failed instead of waiting
    /// for the scope join to surface an anonymous panic.
    Panicked {
        /// Failing device id.
        device: u32,
        /// Round the device was working on.
        round: u32,
    },
    /// Device → server: the worker returned a typed failure
    /// ([`crate::runtime::WorkerError`]) instead of a reply. Unlike
    /// [`Message::Panicked`] the reason survives the wire.
    Failed {
        /// Failing device id.
        device: u32,
        /// Round the device was working on.
        round: u32,
        /// Human-readable failure reason from the worker.
        reason: String,
    },
    /// Device → server: a received frame failed to decode, so the device
    /// cannot even tell which round it was for. It reports the codec bug
    /// and retires rather than panicking inside the actor thread.
    Malformed {
        /// Reporting device id.
        device: u32,
    },
    /// Server → device: stop and join.
    Shutdown,
}

impl Message {
    /// Round number carried by the message, if any.
    pub fn round(&self) -> Option<u32> {
        match self {
            Message::GlobalModel { round, .. }
            | Message::LocalModel { round, .. }
            | Message::Panicked { round, .. }
            | Message::Failed { round, .. } => Some(*round),
            Message::Malformed { .. } | Message::Shutdown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_accessor() {
        let g = Message::GlobalModel { round: 3, params: vec![] };
        assert_eq!(g.round(), Some(3));
        assert_eq!(Message::Shutdown.round(), None);
    }
}
