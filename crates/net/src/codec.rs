//! Compact binary wire codec.
//!
//! Hand-rolled (one tag byte, little-endian fixed-width fields, raw `f64`
//! arrays) rather than JSON: the experiments count real traffic, and a
//! 135k-parameter CNN model is ~1 MB per message — textual encodings
//! would triple it and distort the communication-cost model.

use crate::message::Message;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const TAG_GLOBAL: u8 = 1;
const TAG_LOCAL: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;
const TAG_PANIC: u8 = 4;
const TAG_MALFORMED: u8 = 5;
const TAG_FAILED: u8 = 6;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the advertised payload.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "codec: truncated message"),
            CodecError::BadTag(t) => write!(f, "codec: unknown tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_params(buf: &mut BytesMut, params: &[f64]) {
    buf.put_u64_le(params.len() as u64);
    for &p in params {
        buf.put_f64_le(p);
    }
}

fn get_params(buf: &mut &[u8]) -> Result<Vec<f64>, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n * 8 {
        return Err(CodecError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(buf.get_f64_le());
    }
    Ok(out)
}

/// Encode a message to its wire form.
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::new();
    match msg {
        Message::GlobalModel { round, params } => {
            buf.put_u8(TAG_GLOBAL);
            buf.put_u32_le(*round);
            put_params(&mut buf, params);
        }
        Message::LocalModel { device, round, params, weight, grad_evals, compute_time } => {
            buf.put_u8(TAG_LOCAL);
            buf.put_u32_le(*device);
            buf.put_u32_le(*round);
            buf.put_f64_le(*weight);
            buf.put_u64_le(*grad_evals);
            buf.put_f64_le(*compute_time);
            put_params(&mut buf, params);
        }
        Message::Panicked { device, round } => {
            buf.put_u8(TAG_PANIC);
            buf.put_u32_le(*device);
            buf.put_u32_le(*round);
        }
        Message::Failed { device, round, reason } => {
            buf.put_u8(TAG_FAILED);
            buf.put_u32_le(*device);
            buf.put_u32_le(*round);
            buf.put_u64_le(reason.len() as u64);
            buf.put_slice(reason.as_bytes());
        }
        Message::Malformed { device } => {
            buf.put_u8(TAG_MALFORMED);
            buf.put_u32_le(*device);
        }
        Message::Shutdown => {
            buf.put_u8(TAG_SHUTDOWN);
        }
    }
    buf.freeze()
}

/// Decode a wire buffer back into a [`Message`].
pub fn decode(mut buf: &[u8]) -> Result<Message, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    match tag {
        TAG_GLOBAL => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            let round = buf.get_u32_le();
            let params = get_params(&mut buf)?;
            Ok(Message::GlobalModel { round, params })
        }
        TAG_LOCAL => {
            if buf.remaining() < 4 + 4 + 8 + 8 + 8 {
                return Err(CodecError::Truncated);
            }
            let device = buf.get_u32_le();
            let round = buf.get_u32_le();
            let weight = buf.get_f64_le();
            let grad_evals = buf.get_u64_le();
            let compute_time = buf.get_f64_le();
            let params = get_params(&mut buf)?;
            Ok(Message::LocalModel { device, round, params, weight, grad_evals, compute_time })
        }
        TAG_PANIC => {
            if buf.remaining() < 4 + 4 {
                return Err(CodecError::Truncated);
            }
            let device = buf.get_u32_le();
            let round = buf.get_u32_le();
            Ok(Message::Panicked { device, round })
        }
        TAG_FAILED => {
            if buf.remaining() < 4 + 4 + 8 {
                return Err(CodecError::Truncated);
            }
            let device = buf.get_u32_le();
            let round = buf.get_u32_le();
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(CodecError::Truncated);
            }
            // Lossy: the reason is purely diagnostic, so a mangled byte
            // must not turn a typed failure report into a codec error.
            let reason = buf
                .get(..len)
                .map(|b| String::from_utf8_lossy(b).into_owned())
                .unwrap_or_default();
            Ok(Message::Failed { device, round, reason })
        }
        TAG_MALFORMED => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            Ok(Message::Malformed { device: buf.get_u32_le() })
        }
        TAG_SHUTDOWN => Ok(Message::Shutdown),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Size in bytes of the encoded form without materialising it.
pub fn encoded_len(msg: &Message) -> usize {
    match msg {
        Message::GlobalModel { params, .. } => 1 + 4 + 8 + 8 * params.len(),
        Message::LocalModel { params, .. } => 1 + 4 + 4 + 8 + 8 + 8 + 8 + 8 * params.len(),
        Message::Panicked { .. } => 1 + 4 + 4,
        Message::Failed { reason, .. } => 1 + 4 + 4 + 8 + reason.len(),
        Message::Malformed { .. } => 1 + 4,
        Message::Shutdown => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let b = encode(&msg);
        assert_eq!(b.len(), encoded_len(&msg), "encoded_len mismatch");
        let back = decode(&b).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn roundtrip_global() {
        roundtrip(Message::GlobalModel { round: 42, params: vec![1.5, -2.25, 0.0, f64::MIN] });
    }

    #[test]
    fn roundtrip_local() {
        roundtrip(Message::LocalModel {
            device: 7,
            round: 9,
            params: vec![std::f64::consts::PI; 33],
            weight: 0.125,
            grad_evals: 1234,
            compute_time: 0.75,
        });
    }

    #[test]
    fn roundtrip_shutdown() {
        roundtrip(Message::Shutdown);
    }

    #[test]
    fn roundtrip_panicked() {
        roundtrip(Message::Panicked { device: 3, round: 11 });
    }

    #[test]
    fn roundtrip_failed() {
        roundtrip(Message::Failed {
            device: 2,
            round: 8,
            reason: "fsvrg: missing global gradient — ünïcode too".to_string(),
        });
        roundtrip(Message::Failed { device: 0, round: 0, reason: String::new() });
    }

    #[test]
    fn roundtrip_malformed() {
        roundtrip(Message::Malformed { device: 5 });
    }

    #[test]
    fn truncated_failed_fails() {
        let b = encode(&Message::Failed { device: 1, round: 2, reason: "boom".into() });
        for cut in [1, 5, 9, b.len() - 1] {
            assert!(decode(&b[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn truncated_panicked_fails() {
        let b = encode(&Message::Panicked { device: 1, round: 2 });
        assert!(decode(&b[..5]).is_err());
    }

    #[test]
    fn roundtrip_empty_params() {
        roundtrip(Message::GlobalModel { round: 0, params: vec![] });
    }

    #[test]
    fn truncated_fails() {
        let b = encode(&Message::GlobalModel { round: 1, params: vec![1.0, 2.0] });
        for cut in [0, 1, 4, 12, b.len() - 1] {
            assert!(decode(&b[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_tag_fails() {
        assert_eq!(decode(&[99]), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn nan_survives() {
        let b = encode(&Message::GlobalModel { round: 1, params: vec![f64::NAN] });
        match decode(&b).unwrap() {
            Message::GlobalModel { params, .. } => assert!(params[0].is_nan()),
            _ => panic!("wrong variant"),
        }
    }
}
