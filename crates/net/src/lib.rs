//! Simulated federated network runtime.
//!
//! The paper evaluates FedProxVR on a star topology — one aggregation
//! server, N devices — and models total training time as
//! `T · (d_com + d_cmp · τ)` (eq. (19)). This crate is the substrate that
//! makes those quantities measurable in simulation:
//!
//! * [`message`] / [`codec`] — the wire protocol: a compact hand-rolled
//!   binary encoding (via `bytes`) so per-round traffic is counted in real
//!   bytes,
//! * [`delay`] — pluggable communication/computation delay models
//!   (constant, uniform, lognormal) and link specs with bandwidth,
//! * [`clock`] — a virtual clock: rounds advance simulated time by the
//!   *maximum* over devices of (download + compute + upload), matching the
//!   synchronous aggregation of Algorithm 1,
//! * [`runtime`] — a thread-per-device actor runtime over crossbeam
//!   channels, with failure injection (message drops with bounded
//!   retransmission, per-device compute multipliers) and an optional
//!   graceful-degradation mode driven by `fedprox_faults`: planned
//!   crashes/offline windows, round deadlines, and quorum aggregation
//!   over the responder set.
//!
//! Virtual time — never wall-clock time — drives every experiment, so γ
//! sweeps (Fig. 1) are exact and reproducible.

#![warn(missing_docs)]

pub mod clock;
pub mod codec;
pub mod compress;
pub mod delay;
pub mod message;
pub mod runtime;

pub use clock::VirtualClock;
pub use compress::{Compressed, Compressor};
pub use delay::{DelayModel, LinkSpec};
pub use message::Message;
pub use runtime::{
    DeviceReply, DeviceWorker, NetError, NetOptions, NetReport, NetworkRuntime, WorkerError,
};
