//! Thread-per-device actor runtime.
//!
//! One OS thread per device, crossbeam channels for transport, every
//! model crossing a channel in encoded wire form (so byte counts are
//! real). The server thread drives synchronous rounds: broadcast the
//! global model, wait for all local models, aggregate weighted by
//! `D_n / D` (Algorithm 1 line 12), advance the virtual clock.
//!
//! Failure injection: links may drop messages with probability
//! `drop_prob` — a drop costs one extra latency sample and is counted as
//! a retransmission (the payload always arrives eventually, as a
//! reliable transport would ensure); one device may be designated a
//! straggler with a compute-time multiplier.

use crate::clock::{DeviceRoundTiming, VirtualClock};
use crate::codec;
use crate::codec::CodecError;
use crate::delay::LinkSpec;
use crate::message::Message;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Transport-layer failure of a networked run.
///
/// Every variant is a protocol or configuration bug in the simulation
/// itself (frames never leave the process), so callers generally treat
/// these as fatal — but the runtime reports them as values instead of
/// panicking so the caller owns that decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A frame failed to decode.
    Codec(CodecError),
    /// An actor channel disconnected mid-round (a device thread died).
    ChannelClosed(&'static str),
    /// A device never delivered its local model for the round.
    MissingReply {
        /// Device index whose slot stayed empty.
        device: usize,
    },
    /// A device answered for a different round than the one in flight.
    StaleRound {
        /// Device that answered.
        device: u32,
        /// Round carried by the reply.
        got: u32,
        /// Round the server was collecting.
        expected: u32,
    },
    /// The server received a message kind only devices should see.
    UnexpectedMessage,
    /// Aggregation weights summed to zero.
    ZeroAggregationWeight,
    /// A transfer was dropped more than the retry limit allows
    /// (`drop_prob` too close to 1).
    RetryLimit,
    /// A device worker panicked inside the actor scope.
    WorkerPanic {
        /// The failing device id, when the actor caught the panic and
        /// could still report it; `None` when the panic escaped to the
        /// scope join (e.g. a codec bug before the worker ran).
        device: Option<u32>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "net: {e}"),
            NetError::ChannelClosed(which) => write!(f, "net: {which} disconnected"),
            NetError::MissingReply { device } => {
                write!(f, "net: missing reply from device {device}")
            }
            NetError::StaleRound { device, got, expected } => write!(
                f,
                "net: device {device} replied for round {got} while collecting round {expected}"
            ),
            NetError::UnexpectedMessage => write!(f, "net: server received a non-LocalModel message"),
            NetError::ZeroAggregationWeight => write!(f, "net: aggregation weights sum to zero"),
            NetError::RetryLimit => write!(f, "net: drop probability too close to 1"),
            NetError::WorkerPanic { device: Some(d) } => {
                write!(f, "net: worker for device {d} panicked")
            }
            NetError::WorkerPanic { device: None } => write!(f, "net: a device worker panicked"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// What a device hands back after its local update.
#[derive(Debug, Clone)]
pub struct DeviceReply {
    /// Local model `w_n^{(s)}`.
    pub params: Vec<f64>,
    /// Aggregation weight `D_n / D`.
    pub weight: f64,
    /// Per-sample gradient evaluations spent this round.
    pub grad_evals: u64,
    /// Simulated compute time in seconds (before straggler scaling).
    pub compute_time: f64,
}

/// A device's local-update logic, driven by the runtime.
pub trait DeviceWorker: Send {
    /// Perform the local update for `round` starting from `global`.
    fn update(&mut self, round: u32, global: &[f64]) -> DeviceReply;
}

impl<W: DeviceWorker + ?Sized> DeviceWorker for Box<W> {
    fn update(&mut self, round: u32, global: &[f64]) -> DeviceReply {
        (**self).update(round, global)
    }
}

/// Adapter turning a closure into a [`DeviceWorker`].
pub struct FnWorker<F>(pub F);

impl<F> DeviceWorker for FnWorker<F>
where
    F: FnMut(u32, &[f64]) -> DeviceReply + Send,
{
    fn update(&mut self, round: u32, global: &[f64]) -> DeviceReply {
        (self.0)(round, global)
    }
}

/// Runtime options.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Server → device link.
    pub downlink: LinkSpec,
    /// Device → server link.
    pub uplink: LinkSpec,
    /// Probability that any single transmission attempt is dropped.
    pub drop_prob: f64,
    /// Optional straggler: `(device index, compute multiplier)`.
    pub straggler: Option<(usize, f64)>,
    /// Optional per-round multiplicative compute jitter applied to every
    /// device's reported compute time (e.g. a LogNormal with μ = 0 models
    /// CPU contention on real handsets). Sampled per (device, round).
    pub compute_jitter: Option<crate::delay::DelayModel>,
    /// Seed for the delay/drop randomness.
    pub seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            downlink: LinkSpec::constant(0.05),
            uplink: LinkSpec::constant(0.05),
            drop_prob: 0.0,
            straggler: None,
            compute_jitter: None,
            seed: 0,
        }
    }
}

/// Outcome of a networked run.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Final global model.
    pub final_model: Vec<f64>,
    /// Virtual clock at the end (time, traffic, waste).
    pub clock: VirtualClock,
    /// Total retransmitted messages.
    pub retransmissions: u64,
    /// Duration of each completed round.
    pub round_durations: Vec<f64>,
    /// Per-round straggler skew: the slowest device finish over the
    /// round's median finish, minus one (0 when all devices tie, or the
    /// median is zero). Deterministic for a fixed seed — derived from
    /// the same virtual-clock timings as `round_durations`.
    pub round_skews: Vec<f64>,
    /// Rounds actually executed (callback may stop early).
    pub rounds_run: u32,
}

/// The actor runtime.
#[derive(Debug, Default)]
pub struct NetworkRuntime;

impl NetworkRuntime {
    /// Run `rounds` synchronous rounds over `workers`, starting from
    /// `initial`. `on_round(round, global)` fires after each aggregation;
    /// returning `false` stops the run early (used by divergence guards
    /// and time-budget experiments).
    ///
    /// Errors are transport/protocol failures (see [`NetError`]); in the
    /// in-process simulation they only arise from bugs or degenerate
    /// options, never from ordinary training dynamics.
    pub fn run<W: DeviceWorker>(
        &self,
        workers: Vec<W>,
        initial: Vec<f64>,
        rounds: u32,
        opts: &NetOptions,
        mut on_round: impl FnMut(u32, &[f64]) -> bool,
    ) -> Result<NetReport, NetError> {
        let n = workers.len();
        assert!(n > 0, "network runtime needs at least one device");
        let dim = initial.len();
        fedprox_telemetry::gauge!("net.devices", n);

        // Per-device command channels and one shared reply channel.
        let mut to_device: Vec<Sender<Bytes>> = Vec::with_capacity(n);
        let mut device_rx: Vec<Receiver<Bytes>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            to_device.push(tx);
            device_rx.push(rx);
        }
        let (reply_tx, reply_rx) = unbounded::<Bytes>();

        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x6E75);
        let mut clock = VirtualClock::new();
        let mut retransmissions = 0u64;
        let mut round_durations = Vec::new();
        let mut round_skews = Vec::new();
        let mut global = initial;
        let mut rounds_run = 0;

        let scope_outcome = crossbeam::scope(|scope| -> Result<(), NetError> {
            // Device actors.
            for (id, (mut worker, rx)) in
                workers.into_iter().zip(device_rx).enumerate()
            {
                let reply_tx = reply_tx.clone();
                scope.spawn(move |_| {
                    while let Ok(frame) = rx.recv() {
                        // Frames come from `codec::encode` in this very
                        // process, so a decode failure is a codec bug; a
                        // device thread has no error channel back to the
                        // caller, so it surfaces the bug by panicking
                        // (the scope turns that into `WorkerPanic`).
                        // fedlint: allow(no-panic) — device actors report codec bugs by panicking into the scope, which maps to NetError::WorkerPanic
                        match codec::decode(&frame).expect("device: bad frame") {
                            Message::GlobalModel { round, params } => {
                                let outcome = std::panic::catch_unwind(
                                    std::panic::AssertUnwindSafe(|| worker.update(round, &params)),
                                );
                                let (msg, panicked) = match outcome {
                                    Ok(reply) => (
                                        Message::LocalModel {
                                            device: id as u32,
                                            round,
                                            params: reply.params,
                                            weight: reply.weight,
                                            grad_evals: reply.grad_evals,
                                            compute_time: reply.compute_time,
                                        },
                                        false,
                                    ),
                                    // The worker's state may be poisoned:
                                    // report the failing device id to the
                                    // server, then retire this actor.
                                    Err(_) => {
                                        (Message::Panicked { device: id as u32, round }, true)
                                    }
                                };
                                // The server hanging up early just means
                                // this device's reply is no longer wanted.
                                if reply_tx.send(codec::encode(&msg)).is_err() || panicked {
                                    break;
                                }
                            }
                            Message::Shutdown => break,
                            Message::LocalModel { .. } | Message::Panicked { .. } => {
                                unreachable!("device received a server-bound message")
                            }
                        }
                    }
                });
            }
            drop(reply_tx);

            // Server loop, as an immediately-run closure so that every
            // early error still falls through to the shutdown broadcast
            // below — otherwise device actors would block on `recv`
            // forever and the scope would never join.
            let served = (|| -> Result<(), NetError> {
                'rounds: for round in 0..rounds {
                    #[cfg(feature = "telemetry")]
                    let traffic_before = (clock.bytes_down(), clock.bytes_up());
                    let broadcast = {
                        fedprox_telemetry::span!("net", "encode", "round" => round);
                        codec::encode(&Message::GlobalModel { round, params: global.clone() })
                    };
                    let down_len = broadcast.len();

                    // Simulate downlink per device (retransmit on drop).
                    let mut downloads = vec![0.0f64; n];
                    for (d, dl) in downloads.iter_mut().enumerate() {
                        let (delay, re) =
                            simulate_transfer(&opts.downlink, down_len, opts.drop_prob, &mut rng)?;
                        *dl = delay;
                        retransmissions += re;
                        clock.record_traffic((re + 1) * down_len as u64, 0);
                        to_device[d]
                            .send(broadcast.clone())
                            .map_err(|_| NetError::ChannelClosed("device command channel"))?;
                    }

                    // Collect all local models.
                    let mut timings = vec![
                        DeviceRoundTiming { download: 0.0, compute: 0.0, upload: 0.0 };
                        n
                    ];
                    // Collect into per-device slots first, then aggregate in
                    // device-id order — floating-point addition is not
                    // associative, and the sequential/parallel backends sum in
                    // id order, so this keeps all three backends bit-identical.
                    let mut slots: Vec<Option<(Vec<f64>, f64)>> = vec![None; n];
                    for _ in 0..n {
                        let frame = {
                            fedprox_telemetry::span!("net", "recv_wait", "round" => round);
                            reply_rx
                                .recv()
                                .map_err(|_| NetError::ChannelClosed("device reply channel"))?
                        };
                        let up_len = frame.len();
                        let decoded = {
                            fedprox_telemetry::span!("net", "decode", "bytes" => up_len);
                            codec::decode(&frame)?
                        };
                        match decoded {
                            Message::LocalModel {
                                device, params, weight, compute_time, round: r, ..
                            } => {
                                if r != round {
                                    return Err(NetError::StaleRound {
                                        device,
                                        got: r,
                                        expected: round,
                                    });
                                }
                                let d = device as usize;
                                let (up_delay, re) = simulate_transfer(
                                    &opts.uplink,
                                    up_len,
                                    opts.drop_prob,
                                    &mut rng,
                                )?;
                                retransmissions += re;
                                clock.record_traffic(0, (re + 1) * up_len as u64);
                                let mut compute = compute_time;
                                if let Some((straggler, mult)) = opts.straggler {
                                    if d == straggler {
                                        compute *= mult;
                                    }
                                }
                                if let Some(jitter) = &opts.compute_jitter {
                                    compute *= jitter.sample(&mut rng);
                                }
                                timings[d] = DeviceRoundTiming {
                                    download: downloads[d],
                                    compute,
                                    upload: up_delay,
                                };
                                slots[d] = Some((params, weight));
                            }
                            Message::Panicked { device, .. } => {
                                return Err(NetError::WorkerPanic { device: Some(device) });
                            }
                            Message::GlobalModel { .. } | Message::Shutdown => {
                                return Err(NetError::UnexpectedMessage);
                            }
                        }
                    }
                    let mut agg = vec![0.0f64; dim];
                    let mut weight_sum = 0.0;
                    for (d, slot) in slots.iter().enumerate() {
                        let (params, weight) =
                            slot.as_ref().ok_or(NetError::MissingReply { device: d })?;
                        for (a, p) in agg.iter_mut().zip(params) {
                            *a += weight * p;
                        }
                        weight_sum += weight;
                    }
                    if weight_sum <= 0.0 {
                        return Err(NetError::ZeroAggregationWeight);
                    }
                    for a in agg.iter_mut() {
                        *a /= weight_sum;
                    }
                    global = agg;
                    round_durations.push(clock.advance_round(&timings));
                    round_skews.push(round_skew(&timings));
                    rounds_run = round + 1;
                    #[cfg(feature = "telemetry")]
                    record_round_telemetry(
                        round,
                        &timings,
                        clock.bytes_down() - traffic_before.0,
                        clock.bytes_up() - traffic_before.1,
                        clock.now(),
                    );
                    if !on_round(round, &global) {
                        break 'rounds;
                    }
                }
                Ok(())
            })();

            // Shut the actors down (on success and on error alike).
            let bye = codec::encode(&Message::Shutdown);
            for tx in &to_device {
                let _ = tx.send(bye.clone());
            }
            served
        });
        match scope_outcome {
            Ok(served) => served?,
            Err(_panic) => return Err(NetError::WorkerPanic { device: None }),
        }

        Ok(NetReport {
            final_model: global,
            clock,
            retransmissions,
            round_durations,
            round_skews,
            rounds_run,
        })
    }
}

/// Straggler skew of one round: slowest finish over median finish, minus
/// one. Computed for every run (armed or not) so the report's shape never
/// depends on telemetry state.
fn round_skew(timings: &[DeviceRoundTiming]) -> f64 {
    let mut finishes: Vec<f64> =
        timings.iter().map(|t| t.download + t.compute + t.upload).collect();
    finishes.sort_by(f64::total_cmp);
    let m = finishes.len();
    let median = if m % 2 == 1 {
        finishes[m / 2]
    } else {
        0.5 * (finishes[m / 2 - 1] + finishes[m / 2])
    };
    let max = finishes[m - 1];
    if median > 0.0 && max.is_finite() {
        max / median - 1.0
    } else {
        0.0
    }
}

/// Emit the per-round simulation observations: one [`DeviceRound`] per
/// device (straggler lag = finish time minus the round's median finish),
/// one [`Bytes`] per direction, and the closing [`RoundEnd`]. Everything
/// here derives from the virtual clock, so armed and disarmed runs stay
/// bitwise-identical in their training output.
///
/// [`DeviceRound`]: fedprox_telemetry::event::Event::DeviceRound
/// [`Bytes`]: fedprox_telemetry::event::Event::Bytes
/// [`RoundEnd`]: fedprox_telemetry::event::Event::RoundEnd
#[cfg(feature = "telemetry")]
fn record_round_telemetry(
    round: u32,
    timings: &[DeviceRoundTiming],
    down_bytes: u64,
    up_bytes: u64,
    sim_now: f64,
) {
    use fedprox_telemetry::collector;
    use fedprox_telemetry::event::Event;
    if !collector::is_armed() {
        return;
    }
    let finishes: Vec<f64> =
        timings.iter().map(|t| t.download + t.compute + t.upload).collect();
    let mut sorted = finishes.clone();
    sorted.sort_by(f64::total_cmp);
    let m = sorted.len();
    let median = if m % 2 == 1 {
        sorted[m / 2]
    } else {
        0.5 * (sorted[m / 2 - 1] + sorted[m / 2])
    };
    for (d, t) in timings.iter().enumerate() {
        let lag = finishes[d] - median;
        collector::record_event(Event::DeviceRound {
            round,
            device: d as u32,
            download_s: t.download,
            compute_s: t.compute,
            upload_s: t.upload,
            finish_s: finishes[d],
            lag_s: lag,
        });
        fedprox_telemetry::histogram!("net.straggler_lag_s", lag.max(0.0));
    }
    collector::record_event(Event::Bytes {
        round,
        kind: "global_model".into(),
        direction: "down".into(),
        bytes: down_bytes,
    });
    collector::record_event(Event::Bytes {
        round,
        kind: "local_model".into(),
        direction: "up".into(),
        bytes: up_bytes,
    });
    collector::record_event(Event::RoundEnd { round, sim_time_s: sim_now });
}

/// One logical transfer over `link`: retries until a send succeeds, each
/// attempt costing a fresh delay sample. Returns `(total delay, retries)`.
fn simulate_transfer(
    link: &LinkSpec,
    bytes: usize,
    drop_prob: f64,
    rng: &mut StdRng,
) -> Result<(f64, u64), NetError> {
    let mut total = link.transfer_time(bytes, rng);
    let mut retries = 0u64;
    while drop_prob > 0.0 && rng.gen_range(0.0..1.0) < drop_prob {
        retries += 1;
        total += link.transfer_time(bytes, rng);
        if retries > 1000 {
            return Err(NetError::RetryLimit);
        }
    }
    Ok((total, retries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;

    /// Worker that averages toward a target point.
    fn toward(target: Vec<f64>, weight: f64) -> Box<dyn DeviceWorker> {
        Box::new(FnWorker(move |_round: u32, global: &[f64]| {
            let params: Vec<f64> =
                global.iter().zip(&target).map(|(g, t)| g + 0.5 * (t - g)).collect();
            DeviceReply { params, weight, grad_evals: 10, compute_time: 0.01 }
        }))
    }

    #[test]
    fn converges_to_weighted_consensus() {
        let workers: Vec<Box<dyn DeviceWorker>> = vec![
            toward(vec![1.0, 1.0], 0.5),
            toward(vec![3.0, -1.0], 0.5),
        ];
        let report = NetworkRuntime.run(
            workers,
            vec![0.0, 0.0],
            60,
            &NetOptions::default(),
            |_, _| true,
        ).expect("runtime");
        // Fixed point: average of the two targets.
        assert!((report.final_model[0] - 2.0).abs() < 1e-6, "{:?}", report.final_model);
        assert!((report.final_model[1] - 0.0).abs() < 1e-6);
        assert_eq!(report.rounds_run, 60);
        assert_eq!(report.clock.rounds(), 60);
        // Symmetric devices over constant links: no straggler skew.
        assert_eq!(report.round_skews.len(), 60);
        assert!(report.round_skews.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn virtual_time_matches_constant_delays() {
        let opts = NetOptions {
            downlink: LinkSpec::constant(0.1),
            uplink: LinkSpec::constant(0.2),
            ..Default::default()
        };
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![0.0], 1.0), toward(vec![0.0], 1.0)];
        let report = NetworkRuntime.run(workers, vec![5.0], 10, &opts, |_, _| true).expect("runtime");
        // Each round: 0.1 + 0.01 + 0.2 = 0.31.
        assert!((report.clock.now() - 3.1).abs() < 1e-9, "{}", report.clock.now());
        assert!(report.round_durations.iter().all(|&d| (d - 0.31).abs() < 1e-12));
    }

    #[test]
    fn traffic_counted_in_real_bytes() {
        let dim = 7;
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0; dim], 1.0)];
        let report = NetworkRuntime
            .run(workers, vec![1.0; dim], 3, &NetOptions::default(), |_, _| true)
            .expect("runtime");
        let down_msg = codec::encoded_len(&Message::GlobalModel { round: 0, params: vec![0.0; dim] });
        let up_msg = codec::encoded_len(&Message::LocalModel {
            device: 0,
            round: 0,
            params: vec![0.0; dim],
            weight: 1.0,
            grad_evals: 0,
            compute_time: 0.0,
        });
        assert_eq!(report.clock.bytes_down(), 3 * down_msg as u64);
        assert_eq!(report.clock.bytes_up(), 3 * up_msg as u64);
    }

    #[test]
    fn early_stop_via_callback() {
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0], 1.0)];
        let report =
            NetworkRuntime
                .run(workers, vec![8.0], 100, &NetOptions::default(), |round, _| round < 4)
                .expect("runtime");
        assert_eq!(report.rounds_run, 5);
    }

    #[test]
    fn drops_cause_retransmissions_but_not_loss() {
        let opts = NetOptions { drop_prob: 0.3, seed: 42, ..Default::default() };
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![1.0], 0.7), toward(vec![1.0], 0.3)];
        let report = NetworkRuntime.run(workers, vec![0.0], 40, &opts, |_, _| true).expect("runtime");
        assert!(report.retransmissions > 0, "expected some drops at p=0.3");
        // The run still converges: payloads are never lost.
        assert!((report.final_model[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn straggler_dominates_round_duration() {
        let opts = NetOptions {
            straggler: Some((1, 50.0)),
            downlink: LinkSpec::constant(0.0),
            uplink: LinkSpec::constant(0.0),
            ..Default::default()
        };
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![0.0], 0.5), toward(vec![0.0], 0.5)];
        let report = NetworkRuntime.run(workers, vec![1.0], 5, &opts, |_, _| true).expect("runtime");
        // compute 0.01 × 50 = 0.5 per round.
        assert!((report.clock.now() - 2.5).abs() < 1e-9);
        assert!(report.clock.straggler_waste() > 1.0);
        // Skew: finishes {0.01, 0.5}, median 0.255 → 0.5/0.255 − 1 ≈ 0.961.
        assert_eq!(report.round_skews.len(), 5);
        for &s in &report.round_skews {
            assert!((s - (0.5 / 0.255 - 1.0)).abs() < 1e-9, "skew {s}");
        }
    }

    #[test]
    fn compute_jitter_varies_round_durations_deterministically() {
        let mk = |seed: u64| NetOptions {
            downlink: LinkSpec::constant(0.0),
            uplink: LinkSpec::constant(0.0),
            compute_jitter: Some(DelayModel::LogNormal { mu: 0.0, sigma: 0.5 }),
            seed,
            ..Default::default()
        };
        let run = |seed: u64| {
            let workers: Vec<Box<dyn DeviceWorker>> =
                vec![toward(vec![0.0], 0.5), toward(vec![0.0], 0.5)];
            NetworkRuntime.run(workers, vec![1.0], 10, &mk(seed), |_, _| true).expect("runtime")
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.round_durations, b.round_durations, "jitter must be seeded");
        // Jitter makes durations vary across rounds.
        let mean = a.round_durations.iter().sum::<f64>() / a.round_durations.len() as f64;
        assert!(a.round_durations.iter().any(|&d| (d - mean).abs() > 1e-6));
        // Math is untouched.
        assert!((a.final_model[0] - run(99).final_model[0]).abs() < 1e-15);
    }

    #[test]
    fn heterogeneous_weights_respected() {
        // Device A (weight 0.9) pins to 10, device B (0.1) pins to 0:
        // aggregation should sit near 9 after convergence.
        let pin = |target: f64, weight: f64| -> Box<dyn DeviceWorker> {
            Box::new(FnWorker(move |_r: u32, _g: &[f64]| DeviceReply {
                params: vec![target],
                weight,
                grad_evals: 1,
                compute_time: 0.0,
            }))
        };
        let workers: Vec<Box<dyn DeviceWorker>> = vec![pin(10.0, 0.9), pin(0.0, 0.1)];
        let report = NetworkRuntime
            .run(workers, vec![0.0], 2, &NetOptions::default(), |_, _| true)
            .expect("runtime");
        assert!((report.final_model[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_delays_produce_variable_rounds() {
        let opts = NetOptions {
            downlink: LinkSpec {
                latency: DelayModel::LogNormal { mu: -3.0, sigma: 1.0 },
                bytes_per_sec: f64::INFINITY,
            },
            seed: 9,
            ..Default::default()
        };
        let workers: Vec<Box<dyn DeviceWorker>> = (0..4)
            .map(|_| toward(vec![0.0], 0.25))
            .collect();
        let report = NetworkRuntime.run(workers, vec![1.0], 20, &opts, |_, _| true).expect("runtime");
        let durs = &report.round_durations;
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        assert!(durs.iter().any(|&d| (d - mean).abs() > 1e-6), "rounds identical");
    }
}
