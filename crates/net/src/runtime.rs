//! Thread-per-device actor runtime.
//!
//! One OS thread per device, crossbeam channels for transport, every
//! model crossing a channel in encoded wire form (so byte counts are
//! real). The server thread drives synchronous rounds: broadcast the
//! global model, wait for all local models, aggregate weighted by
//! `D_n / D` (Algorithm 1 line 12), advance the virtual clock.
//!
//! Failure injection: links may drop messages with probability
//! `drop_prob` — a drop costs one extra latency sample and is counted as
//! a retransmission, bounded by the configurable [`RetryPolicy`] — and
//! any number of devices may carry compute-time multipliers
//! ([`NetOptions::compute_multipliers`]).
//!
//! With a [`Resilience`] policy attached the runtime switches into
//! graceful-degradation mode: the fault plan removes crashed/offline
//! devices before traffic happens, exhausted retries and missed round
//! deadlines exclude a device from the round instead of erroring the
//! run, aggregation renormalizes weights over the responder set, and
//! rounds below quorum are skipped-and-counted. Every round then yields
//! a [`RoundParticipation`] record in the report. Randomness in this
//! mode comes from per-(round, device) streams ([`stream_rng`]) consumed
//! in a fixed intra-device order (downlink → uplink → jitter), so reply
//! arrival order cannot perturb the draw sequence.

use crate::clock::{DeviceRoundTiming, VirtualClock};
use crate::codec;
use crate::codec::CodecError;
use crate::delay::LinkSpec;
use crate::message::Message;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fedprox_faults::{stream_rng, DeviceOutcome, Resilience, RetryPolicy, RoundParticipation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Transport-layer failure of a networked run.
///
/// Every variant is a protocol or configuration bug in the simulation
/// itself (frames never leave the process), so callers generally treat
/// these as fatal — but the runtime reports them as values instead of
/// panicking so the caller owns that decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A frame failed to decode.
    Codec(CodecError),
    /// An actor channel disconnected mid-round (a device thread died).
    ChannelClosed(&'static str),
    /// A device never delivered its local model for the round.
    MissingReply {
        /// Device index whose slot stayed empty.
        device: usize,
    },
    /// A device answered for a different round than the one in flight.
    StaleRound {
        /// Device that answered.
        device: u32,
        /// Round carried by the reply.
        got: u32,
        /// Round the server was collecting.
        expected: u32,
    },
    /// The server received a message kind only devices should see.
    UnexpectedMessage,
    /// Aggregation weights summed to zero.
    ZeroAggregationWeight,
    /// A transfer exhausted the [`RetryPolicy`] in strict (non-resilient)
    /// mode, where a device that cannot be reached is fatal
    /// (`drop_prob` too close to 1, or `max_retries` too small).
    RetryLimit,
    /// A device worker panicked inside the actor scope.
    WorkerPanic {
        /// The failing device id, when the actor caught the panic and
        /// could still report it; `None` when the panic escaped to the
        /// scope join (e.g. a codec bug before the worker ran).
        device: Option<u32>,
    },
    /// A device worker reported a typed failure ([`WorkerError`]) for
    /// its round instead of a reply.
    WorkerFailed {
        /// The failing device id.
        device: u32,
        /// The worker's failure reason, verbatim.
        reason: String,
    },
    /// A device received a frame it could not decode and retired after
    /// reporting the codec bug.
    MalformedFrame {
        /// The reporting device id.
        device: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(e) => write!(f, "net: {e}"),
            NetError::ChannelClosed(which) => write!(f, "net: {which} disconnected"),
            NetError::MissingReply { device } => {
                write!(f, "net: missing reply from device {device}")
            }
            NetError::StaleRound { device, got, expected } => write!(
                f,
                "net: device {device} replied for round {got} while collecting round {expected}"
            ),
            NetError::UnexpectedMessage => write!(f, "net: server received a non-LocalModel message"),
            NetError::ZeroAggregationWeight => write!(f, "net: aggregation weights sum to zero"),
            NetError::RetryLimit => write!(f, "net: drop probability too close to 1"),
            NetError::WorkerPanic { device: Some(d) } => {
                write!(f, "net: worker for device {d} panicked")
            }
            NetError::WorkerPanic { device: None } => write!(f, "net: a device worker panicked"),
            NetError::WorkerFailed { device, reason } => {
                write!(f, "net: worker for device {device} failed: {reason}")
            }
            NetError::MalformedFrame { device } => {
                write!(f, "net: device {device} received an undecodable frame")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

/// What a device hands back after its local update.
#[derive(Debug, Clone)]
pub struct DeviceReply {
    /// Local model `w_n^{(s)}`.
    pub params: Vec<f64>,
    /// Aggregation weight `D_n / D`.
    pub weight: f64,
    /// Per-sample gradient evaluations spent this round.
    pub grad_evals: u64,
    /// Simulated compute time in seconds (before straggler scaling).
    pub compute_time: f64,
}

/// A typed local-update failure a [`DeviceWorker`] can report instead of
/// panicking. The reason crosses the wire as [`Message::Failed`], so the
/// server can attribute the failure (strict mode:
/// [`NetError::WorkerFailed`]; graceful-degradation mode: the device is
/// retired as crashed and the round degrades).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerError {
    /// Human-readable failure reason.
    pub reason: String,
}

impl WorkerError {
    /// Build a failure from anything displayable.
    pub fn new(reason: impl fmt::Display) -> Self {
        WorkerError { reason: reason.to_string() }
    }
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker: {}", self.reason)
    }
}

impl std::error::Error for WorkerError {}

/// A device's local-update logic, driven by the runtime.
pub trait DeviceWorker: Send {
    /// Perform the local update for `round` starting from `global`.
    /// Returning `Err` retires the device: the failure travels to the
    /// server as a typed message instead of a panic.
    fn update(&mut self, round: u32, global: &[f64]) -> Result<DeviceReply, WorkerError>;
}

impl<W: DeviceWorker + ?Sized> DeviceWorker for Box<W> {
    fn update(&mut self, round: u32, global: &[f64]) -> Result<DeviceReply, WorkerError> {
        (**self).update(round, global)
    }
}

/// Adapter turning an infallible closure into a [`DeviceWorker`].
pub struct FnWorker<F>(pub F);

impl<F> DeviceWorker for FnWorker<F>
where
    F: FnMut(u32, &[f64]) -> DeviceReply + Send,
{
    fn update(&mut self, round: u32, global: &[f64]) -> Result<DeviceReply, WorkerError> {
        Ok((self.0)(round, global))
    }
}

/// Adapter turning a fallible closure into a [`DeviceWorker`].
pub struct TryFnWorker<F>(pub F);

impl<F> DeviceWorker for TryFnWorker<F>
where
    F: FnMut(u32, &[f64]) -> Result<DeviceReply, WorkerError> + Send,
{
    fn update(&mut self, round: u32, global: &[f64]) -> Result<DeviceReply, WorkerError> {
        (self.0)(round, global)
    }
}

/// Runtime options.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Server → device link.
    pub downlink: LinkSpec,
    /// Device → server link.
    pub uplink: LinkSpec,
    /// Probability that any single transmission attempt is dropped.
    pub drop_prob: f64,
    /// Per-device compute-time multipliers `(stable device id,
    /// multiplier)`. The key is the device's **stable id** (`Device::id`
    /// — workers are spawned in id order here, so wire ids equal stable
    /// ids), never a position in a sampled participant set; the
    /// event-driven backend shares this addressing invariant (see
    /// `fedprox_faults::PlannedFault::device`). Any number of devices
    /// may be slowed (or sped up); entries naming the same device
    /// multiply ([`NetOptions::compute_multiplier_for`] folds them).
    /// [`NetOptions::with_straggler`] keeps the classic
    /// single-straggler form.
    pub compute_multipliers: Vec<(usize, f64)>,
    /// Optional per-round multiplicative compute jitter applied to every
    /// device's reported compute time (e.g. a LogNormal with μ = 0 models
    /// CPU contention on real handsets). Sampled per (device, round).
    pub compute_jitter: Option<crate::delay::DelayModel>,
    /// Retry/backoff policy for every simulated transfer. The default
    /// reproduces the historical hardcoded retransmit loop draw-for-draw
    /// (up to 1000 retries, no backoff), so existing runs are unchanged.
    pub retry: RetryPolicy,
    /// Graceful-degradation mode (fault plan, round deadline, quorum).
    /// `None` — the default — keeps the strict legacy behaviour: every
    /// device must answer every round and any failure is fatal.
    pub resilience: Option<Resilience>,
    /// Seed for the delay/drop randomness.
    pub seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            downlink: LinkSpec::constant(0.05),
            uplink: LinkSpec::constant(0.05),
            drop_prob: 0.0,
            compute_multipliers: Vec::new(),
            compute_jitter: None,
            retry: RetryPolicy::default(),
            resilience: None,
            seed: 0,
        }
    }
}

impl NetOptions {
    /// The classic single-straggler setup: multiply `device`'s compute
    /// time by `mult` every round.
    pub fn with_straggler(mut self, device: usize, mult: f64) -> Self {
        self.compute_multipliers.push((device, mult));
        self
    }

    /// Attach a graceful-degradation policy (see [`Resilience`]).
    pub fn with_resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// The folded compute-time multiplier for the device with stable id
    /// `device` (1.0 when no entry names it; repeated entries multiply).
    pub fn compute_multiplier_for(&self, device: usize) -> f64 {
        self.compute_multipliers
            .iter()
            .filter(|&&(dev, _)| dev == device)
            .map(|&(_, mult)| mult)
            .product()
    }
}

/// Outcome of a networked run.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Final global model.
    pub final_model: Vec<f64>,
    /// Virtual clock at the end (time, traffic, waste).
    pub clock: VirtualClock,
    /// Total retransmitted messages.
    pub retransmissions: u64,
    /// Duration of each completed round.
    pub round_durations: Vec<f64>,
    /// Per-round straggler skew: the slowest device finish over the
    /// round's median finish, minus one (0 when all devices tie, or the
    /// median is zero). Deterministic for a fixed seed — derived from
    /// the same virtual-clock timings as `round_durations`.
    pub round_skews: Vec<f64>,
    /// Rounds actually executed (callback may stop early).
    pub rounds_run: u32,
    /// Per-round participation records. Empty in strict mode
    /// (`NetOptions::resilience` unset); one entry per executed round in
    /// graceful-degradation mode, including skipped rounds.
    pub participation: Vec<RoundParticipation>,
}

/// The actor runtime.
#[derive(Debug, Default)]
pub struct NetworkRuntime;

impl NetworkRuntime {
    /// Run `rounds` synchronous rounds over `workers`, starting from
    /// `initial`. `on_round(round, global)` fires after each aggregation;
    /// returning `false` stops the run early (used by divergence guards
    /// and time-budget experiments).
    ///
    /// Errors are transport/protocol failures (see [`NetError`]); in the
    /// in-process simulation they only arise from bugs or degenerate
    /// options, never from ordinary training dynamics.
    pub fn run<W: DeviceWorker>(
        &self,
        workers: Vec<W>,
        initial: Vec<f64>,
        rounds: u32,
        opts: &NetOptions,
        mut on_round: impl FnMut(u32, &[f64]) -> bool,
    ) -> Result<NetReport, NetError> {
        let n = workers.len();
        assert!(n > 0, "network runtime needs at least one device");
        let dim = initial.len();
        fedprox_telemetry::gauge!("net.devices", n);

        // Per-device command channels and one shared reply channel.
        let mut to_device: Vec<Sender<Bytes>> = Vec::with_capacity(n);
        let mut device_rx: Vec<Receiver<Bytes>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            to_device.push(tx);
            device_rx.push(rx);
        }
        let (reply_tx, reply_rx) = unbounded::<Bytes>();

        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x6E75);
        let mut clock = VirtualClock::new();
        let mut retransmissions = 0u64;
        let mut round_durations = Vec::new();
        let mut round_skews = Vec::new();
        let mut participation: Vec<RoundParticipation> = Vec::new();
        let mut global = initial;
        let mut rounds_run = 0;
        let resil = opts.resilience.as_ref();
        // Devices gone for good: planned crashes once their round
        // arrives, plus panicked workers under a crash-tolerant policy.
        let mut dead = vec![false; n];

        let scope_outcome = crossbeam::scope(|scope| -> Result<(), NetError> {
            // Device actors.
            for (id, (mut worker, rx)) in
                workers.into_iter().zip(device_rx).enumerate()
            {
                let reply_tx = reply_tx.clone();
                // fedlint: allow(spawn-ordering) — reply arrival order is immaterial: the server collects into per-device slots and aggregates in id order (see `slots` below), and resilient-mode RNG draws come from per-(round, device) streams
                scope.spawn(move |_| {
                    while let Ok(frame) = rx.recv() {
                        // Frames come from `codec::encode` in this very
                        // process, so a decode failure is a codec bug.
                        // The device cannot even learn the round from a
                        // mangled frame: it reports the bug as a typed
                        // `Malformed` message and retires.
                        let decoded = match codec::decode(&frame) {
                            Ok(msg) => msg,
                            Err(_) => {
                                let bug = Message::Malformed { device: id as u32 };
                                let _ = reply_tx.send(codec::encode(&bug));
                                break;
                            }
                        };
                        match decoded {
                            Message::GlobalModel { round, params } => {
                                let outcome = std::panic::catch_unwind(
                                    std::panic::AssertUnwindSafe(|| worker.update(round, &params)),
                                );
                                let (msg, retire) = match outcome {
                                    Ok(Ok(reply)) => (
                                        Message::LocalModel {
                                            device: id as u32,
                                            round,
                                            params: reply.params,
                                            weight: reply.weight,
                                            grad_evals: reply.grad_evals,
                                            compute_time: reply.compute_time,
                                        },
                                        false,
                                    ),
                                    // A typed failure: the reason crosses
                                    // the wire; the device retires.
                                    Ok(Err(e)) => (
                                        Message::Failed {
                                            device: id as u32,
                                            round,
                                            reason: e.reason,
                                        },
                                        true,
                                    ),
                                    // The worker's state may be poisoned:
                                    // report the failing device id to the
                                    // server, then retire this actor.
                                    Err(_) => {
                                        (Message::Panicked { device: id as u32, round }, true)
                                    }
                                };
                                // The server hanging up early just means
                                // this device's reply is no longer wanted.
                                if reply_tx.send(codec::encode(&msg)).is_err() || retire {
                                    break;
                                }
                            }
                            Message::Shutdown => break,
                            Message::LocalModel { .. }
                            | Message::Panicked { .. }
                            | Message::Failed { .. }
                            | Message::Malformed { .. } => {
                                unreachable!("device received a server-bound message")
                            }
                        }
                    }
                });
            }
            drop(reply_tx);

            // Server loop, as an immediately-run closure so that every
            // early error still falls through to the shutdown broadcast
            // below — otherwise device actors would block on `recv`
            // forever and the scope would never join.
            let served = (|| -> Result<(), NetError> {
                'rounds: for round in 0..rounds {
                    // 1-based global round `s` of Algorithm 1, the index
                    // every fault-plan query speaks.
                    let s = round as usize + 1;
                    #[cfg(feature = "telemetry")]
                    let traffic_before = (clock.bytes_down(), clock.bytes_up());
                    let broadcast = {
                        fedprox_telemetry::span!("net", "encode", "round" => round);
                        codec::encode(&Message::GlobalModel { round, params: global.clone() })
                    };
                    let down_len = broadcast.len();

                    // Tentative outcome per device: the fault plan removes
                    // crashed and offline devices before any traffic
                    // happens; everyone else starts as a responder and may
                    // be demoted below. In strict mode everyone responds
                    // or the run errors.
                    let mut outcomes: Vec<DeviceOutcome> = if let Some(resil) = resil {
                        dead.iter_mut()
                            .enumerate()
                            .map(|(d, dead_d)| {
                                if *dead_d || resil.plan.is_crashed(d, s) {
                                    *dead_d = true;
                                    DeviceOutcome::Crashed
                                } else if resil.plan.is_offline(d, s) {
                                    DeviceOutcome::Offline
                                } else {
                                    DeviceOutcome::Responded
                                }
                            })
                            .collect()
                    } else {
                        vec![DeviceOutcome::Responded; n]
                    };

                    // Simulate downlink per reachable device (bounded
                    // retransmit on drop) and hand the frame over.
                    let mut downloads = vec![0.0f64; n];
                    let mut failed_elapsed = vec![0.0f64; n];
                    let mut streams: Vec<Option<StdRng>> = (0..n).map(|_| None).collect();
                    let mut sent = 0usize;
                    for (d, outcome) in outcomes.iter_mut().enumerate() {
                        if *outcome != DeviceOutcome::Responded {
                            continue;
                        }
                        let transfer = if let Some(resil) = resil {
                            // Per-(round, device) stream, consumed in a
                            // fixed order (downlink now, uplink and jitter
                            // at reply time), so draws are independent of
                            // reply arrival order.
                            let mut dev_rng =
                                stream_rng(opts.seed ^ 0x6E75, s as u64, d as u64);
                            let p = opts.drop_prob.max(resil.plan.drop_prob(d, s));
                            let t = simulate_transfer(
                                &opts.downlink,
                                down_len,
                                p,
                                &mut dev_rng,
                                &opts.retry,
                            );
                            streams[d] = Some(dev_rng);
                            t
                        } else {
                            simulate_transfer(
                                &opts.downlink,
                                down_len,
                                opts.drop_prob,
                                &mut rng,
                                &opts.retry,
                            )
                        };
                        match transfer {
                            Transfer::Delivered { delay, retries } => {
                                downloads[d] = delay;
                                retransmissions += retries;
                                clock.record_traffic((retries + 1) * down_len as u64, 0);
                                to_device[d]
                                    .send(broadcast.clone())
                                    .map_err(|_| NetError::ChannelClosed("device command channel"))?;
                                sent += 1;
                            }
                            Transfer::Exhausted { wasted, retries } => {
                                if resil.is_none() {
                                    return Err(NetError::RetryLimit);
                                }
                                // The attempts still burned air time and
                                // bandwidth; the device never gets the
                                // model this round and rejoins next round.
                                retransmissions += retries;
                                clock.record_traffic((retries + 1) * down_len as u64, 0);
                                *outcome = DeviceOutcome::LinkFailed;
                                failed_elapsed[d] = wasted;
                            }
                        }
                    }

                    // Collect the local models we are owed (one reply per
                    // frame actually delivered).
                    let mut timings = vec![
                        DeviceRoundTiming { download: 0.0, compute: 0.0, upload: 0.0 };
                        n
                    ];
                    // Collect into per-device slots first, then aggregate in
                    // device-id order — floating-point addition is not
                    // associative, and the sequential/parallel backends sum in
                    // id order, so this keeps all three backends bit-identical.
                    let mut slots: Vec<Option<(Vec<f64>, f64)>> = vec![None; n];
                    for _ in 0..sent {
                        let frame = {
                            fedprox_telemetry::span!("net", "recv_wait", "round" => round);
                            reply_rx
                                .recv()
                                .map_err(|_| NetError::ChannelClosed("device reply channel"))?
                        };
                        let up_len = frame.len();
                        let decoded = {
                            fedprox_telemetry::span!("net", "decode", "bytes" => up_len);
                            codec::decode(&frame)?
                        };
                        match decoded {
                            Message::LocalModel {
                                device, params, weight, compute_time, round: r, ..
                            } => {
                                if r != round {
                                    return Err(NetError::StaleRound {
                                        device,
                                        got: r,
                                        expected: round,
                                    });
                                }
                                let d = device as usize;
                                let mut compute =
                                    compute_time * opts.compute_multiplier_for(d);
                                if let Some(resil) = resil {
                                    compute *= resil.plan.slow_factor(d, s);
                                    let dev_rng = streams[d]
                                        .as_mut()
                                        .ok_or(NetError::UnexpectedMessage)?;
                                    let p = opts.drop_prob.max(resil.plan.drop_prob(d, s));
                                    let transfer = simulate_transfer(
                                        &opts.uplink,
                                        up_len,
                                        p,
                                        dev_rng,
                                        &opts.retry,
                                    );
                                    if let Some(jitter) = &opts.compute_jitter {
                                        compute *= jitter.sample(dev_rng);
                                    }
                                    match transfer {
                                        Transfer::Delivered { delay, retries } => {
                                            retransmissions += retries;
                                            clock.record_traffic(0, (retries + 1) * up_len as u64);
                                            let timing = DeviceRoundTiming {
                                                download: downloads[d],
                                                compute,
                                                upload: delay,
                                            };
                                            let missed = resil
                                                .deadline_s
                                                .is_some_and(|deadline| timing.total() > deadline);
                                            timings[d] = timing;
                                            if missed {
                                                outcomes[d] = DeviceOutcome::DeadlineMiss;
                                            } else {
                                                slots[d] = Some((params, weight));
                                            }
                                        }
                                        Transfer::Exhausted { wasted, retries } => {
                                            retransmissions += retries;
                                            clock.record_traffic(0, (retries + 1) * up_len as u64);
                                            outcomes[d] = DeviceOutcome::LinkFailed;
                                            failed_elapsed[d] = downloads[d] + compute + wasted;
                                        }
                                    }
                                } else {
                                    match simulate_transfer(
                                        &opts.uplink,
                                        up_len,
                                        opts.drop_prob,
                                        &mut rng,
                                        &opts.retry,
                                    ) {
                                        Transfer::Delivered { delay, retries } => {
                                            retransmissions += retries;
                                            clock.record_traffic(0, (retries + 1) * up_len as u64);
                                            if let Some(jitter) = &opts.compute_jitter {
                                                compute *= jitter.sample(&mut rng);
                                            }
                                            timings[d] = DeviceRoundTiming {
                                                download: downloads[d],
                                                compute,
                                                upload: delay,
                                            };
                                            slots[d] = Some((params, weight));
                                        }
                                        Transfer::Exhausted { .. } => {
                                            return Err(NetError::RetryLimit);
                                        }
                                    }
                                }
                            }
                            Message::Panicked { device, .. } => {
                                let tolerate = resil.is_some_and(|r| r.crash_on_panic);
                                if !tolerate {
                                    return Err(NetError::WorkerPanic { device: Some(device) });
                                }
                                let d = device as usize;
                                dead[d] = true;
                                outcomes[d] = DeviceOutcome::Crashed;
                            }
                            Message::Failed { device, reason, .. } => {
                                // A typed worker failure follows the panic
                                // policy: fatal in strict mode, a crashed
                                // participant under graceful degradation.
                                let tolerate = resil.is_some_and(|r| r.crash_on_panic);
                                if !tolerate {
                                    return Err(NetError::WorkerFailed { device, reason });
                                }
                                let d = device as usize;
                                dead[d] = true;
                                outcomes[d] = DeviceOutcome::Crashed;
                            }
                            Message::Malformed { device } => {
                                // A codec bug is a protocol failure in
                                // both modes — degrading would silently
                                // train on a desynchronized federation.
                                return Err(NetError::MalformedFrame { device });
                            }
                            Message::GlobalModel { .. } | Message::Shutdown => {
                                return Err(NetError::UnexpectedMessage);
                            }
                        }
                    }

                    if let Some(resil) = resil {
                        // Aggregate over the responder set, weights
                        // renormalized over responders; below quorum the
                        // round is skipped-and-counted (global unchanged).
                        let mut agg = vec![0.0f64; dim];
                        let mut weight_sum = 0.0;
                        let mut responders = 0usize;
                        for (params, weight) in slots.iter().flatten() {
                            for (a, p) in agg.iter_mut().zip(params) {
                                *a += weight * p;
                            }
                            weight_sum += weight;
                            responders += 1;
                        }
                        let quorum_ok = resil.quorum.met(weight_sum, responders);
                        if quorum_ok {
                            for a in agg.iter_mut() {
                                *a /= weight_sum;
                            }
                            global = agg;
                        }
                        // Round duration: responders contribute their
                        // finish, deadline misses the deadline itself (the
                        // server stops waiting there), failed links their
                        // wasted transfer time capped at the deadline.
                        let mut candidates = Vec::with_capacity(n);
                        let mut finishes = Vec::with_capacity(n);
                        for (d, outcome) in outcomes.iter().enumerate() {
                            match outcome {
                                DeviceOutcome::Responded => {
                                    let f = timings[d].total();
                                    candidates.push(f);
                                    finishes.push(f);
                                }
                                DeviceOutcome::DeadlineMiss => {
                                    if let Some(deadline) = resil.deadline_s {
                                        candidates.push(deadline);
                                    }
                                }
                                DeviceOutcome::LinkFailed => {
                                    let e = failed_elapsed[d];
                                    candidates.push(match resil.deadline_s {
                                        Some(deadline) => e.min(deadline),
                                        None => e,
                                    });
                                }
                                _ => {}
                            }
                        }
                        round_durations.push(clock.advance_partial_round(&candidates));
                        round_skews.push(skew_from_finishes(finishes));
                        participation.push(RoundParticipation {
                            round: s,
                            outcomes: outcomes.clone(),
                            responder_weight: weight_sum,
                            skipped: !quorum_ok,
                            sampled: None,
                        });
                        rounds_run = round + 1;
                        #[cfg(feature = "telemetry")]
                        {
                            let responder_timings: Vec<(usize, DeviceRoundTiming)> = outcomes
                                .iter()
                                .enumerate()
                                .filter(|(_, o)| **o == DeviceOutcome::Responded)
                                .map(|(d, _)| (d, timings[d]))
                                .collect();
                            record_round_telemetry(
                                round,
                                &responder_timings,
                                clock.bytes_down() - traffic_before.0,
                                clock.bytes_up() - traffic_before.1,
                                clock.now(),
                            );
                            if let Some(rec) = participation.last() {
                                record_participation_telemetry(rec);
                                if rec.skipped {
                                    fedprox_telemetry::collector::trigger_postmortem(
                                        "quorum_skip",
                                        s as u32,
                                        attribute_skip(&rec.outcomes),
                                    );
                                }
                            }
                        }
                        if !on_round(round, &global) {
                            break 'rounds;
                        }
                    } else {
                        let mut agg = vec![0.0f64; dim];
                        let mut weight_sum = 0.0;
                        for (d, slot) in slots.iter().enumerate() {
                            let (params, weight) =
                                slot.as_ref().ok_or(NetError::MissingReply { device: d })?;
                            for (a, p) in agg.iter_mut().zip(params) {
                                *a += weight * p;
                            }
                            weight_sum += weight;
                        }
                        if weight_sum <= 0.0 {
                            return Err(NetError::ZeroAggregationWeight);
                        }
                        for a in agg.iter_mut() {
                            *a /= weight_sum;
                        }
                        global = agg;
                        round_durations.push(clock.advance_round(&timings));
                        round_skews.push(round_skew(&timings));
                        rounds_run = round + 1;
                        #[cfg(feature = "telemetry")]
                        record_round_telemetry(
                            round,
                            &timings.iter().copied().enumerate().collect::<Vec<_>>(),
                            clock.bytes_down() - traffic_before.0,
                            clock.bytes_up() - traffic_before.1,
                            clock.now(),
                        );
                        if !on_round(round, &global) {
                            break 'rounds;
                        }
                    }
                }
                Ok(())
            })();

            // Shut the actors down (on success and on error alike).
            let bye = codec::encode(&Message::Shutdown);
            for tx in &to_device {
                let _ = tx.send(bye.clone());
            }
            served
        });
        match scope_outcome {
            Ok(served) => served?,
            Err(_panic) => return Err(NetError::WorkerPanic { device: None }),
        }

        Ok(NetReport {
            final_model: global,
            clock,
            retransmissions,
            round_durations,
            round_skews,
            rounds_run,
            participation,
        })
    }
}

/// Straggler skew of one round: slowest finish over median finish, minus
/// one. Computed for every run (armed or not) so the report's shape never
/// depends on telemetry state.
fn round_skew(timings: &[DeviceRoundTiming]) -> f64 {
    skew_from_finishes(timings.iter().map(|t| t.download + t.compute + t.upload).collect())
}

/// Skew over an arbitrary set of finish times (only responders, in
/// resilient rounds). Fewer than two finishes cannot skew.
fn skew_from_finishes(mut finishes: Vec<f64>) -> f64 {
    if finishes.len() < 2 {
        return 0.0;
    }
    finishes.sort_by(f64::total_cmp);
    let m = finishes.len();
    let median = if m % 2 == 1 {
        finishes[m / 2]
    } else {
        0.5 * (finishes[m / 2 - 1] + finishes[m / 2])
    };
    let max = finishes[m - 1];
    if median > 0.0 && max.is_finite() {
        max / median - 1.0
    } else {
        0.0
    }
}

/// Emit the per-round simulation observations: one [`DeviceRound`] per
/// device (straggler lag = finish time minus the round's median finish),
/// one [`Bytes`] per direction, and the closing [`RoundEnd`]. Everything
/// here derives from the virtual clock, so armed and disarmed runs stay
/// bitwise-identical in their training output.
///
/// [`DeviceRound`]: fedprox_telemetry::event::Event::DeviceRound
/// [`Bytes`]: fedprox_telemetry::event::Event::Bytes
/// [`RoundEnd`]: fedprox_telemetry::event::Event::RoundEnd
#[cfg(feature = "telemetry")]
fn record_round_telemetry(
    round: u32,
    timings: &[(usize, DeviceRoundTiming)],
    down_bytes: u64,
    up_bytes: u64,
    sim_now: f64,
) {
    use fedprox_telemetry::collector;
    use fedprox_telemetry::event::Event;
    if !collector::is_armed() {
        return;
    }
    let finishes: Vec<f64> =
        timings.iter().map(|(_, t)| t.download + t.compute + t.upload).collect();
    let mut sorted = finishes.clone();
    sorted.sort_by(f64::total_cmp);
    let m = sorted.len();
    if m > 0 {
        let median = if m % 2 == 1 {
            sorted[m / 2]
        } else {
            0.5 * (sorted[m / 2 - 1] + sorted[m / 2])
        };
        for ((d, t), finish) in timings.iter().zip(&finishes) {
            let lag = finish - median;
            collector::record_event(Event::DeviceRound {
                round,
                device: *d as u32,
                download_s: t.download,
                compute_s: t.compute,
                upload_s: t.upload,
                finish_s: *finish,
                lag_s: lag,
            });
            fedprox_telemetry::histogram!("net.straggler_lag_s", lag.max(0.0));
        }
    }
    collector::record_event(Event::Bytes {
        round,
        kind: "global_model".into(),
        direction: "down".into(),
        bytes: down_bytes,
    });
    collector::record_event(Event::Bytes {
        round,
        kind: "local_model".into(),
        direction: "up".into(),
        bytes: up_bytes,
    });
    collector::record_event(Event::RoundEnd { round, sim_time_s: sim_now });
}

/// Emit the participation observations of one resilient round: running
/// outcome counters plus one structured [`Participation`] event carrying
/// the round's responder weight and skip flag. Like every fedtrace
/// emission this observes — it never perturbs the run.
///
/// [`Participation`]: fedprox_telemetry::event::Event::Participation
#[cfg(feature = "telemetry")]
fn record_participation_telemetry(rec: &RoundParticipation) {
    use fedprox_telemetry::collector;
    use fedprox_telemetry::event::Event;
    if !collector::is_armed() {
        return;
    }
    let responded = rec.responders();
    let crashed = rec.count(DeviceOutcome::Crashed);
    let offline = rec.count(DeviceOutcome::Offline);
    let deadline_miss = rec.count(DeviceOutcome::DeadlineMiss);
    let link_failed = rec.count(DeviceOutcome::LinkFailed);
    fedprox_telemetry::counter!("net.participation.responded", responded as u64);
    fedprox_telemetry::counter!("net.participation.crashed", crashed as u64);
    fedprox_telemetry::counter!("net.participation.offline", offline as u64);
    fedprox_telemetry::counter!("net.participation.link_failed", link_failed as u64);
    fedprox_telemetry::counter!("net.round.deadline_miss", deadline_miss as u64);
    if rec.skipped {
        fedprox_telemetry::counter!("net.round.skipped", 1u64);
    }
    collector::record_event(Event::Participation {
        round: rec.round as u32,
        responded: responded as u32,
        crashed: crashed as u32,
        offline: offline as u32,
        deadline_miss: deadline_miss as u32,
        link_failed: link_failed as u32,
        weight: rec.responder_weight,
        skipped: u32::from(rec.skipped),
    });
}

/// Pick the device a quorum skip is blamed on for the post-mortem
/// marker: the first crashed device when any crashed, otherwise the
/// first device that failed to respond for any other reason (offline,
/// deadline miss, failed link). `None` when every device responded and
/// the responding weight still missed quorum.
#[cfg(feature = "telemetry")]
fn attribute_skip(outcomes: &[DeviceOutcome]) -> Option<u32> {
    outcomes
        .iter()
        .position(|o| *o == DeviceOutcome::Crashed)
        .or_else(|| {
            outcomes.iter().position(|o| {
                !matches!(o, DeviceOutcome::Responded | DeviceOutcome::NotSelected)
            })
        })
        .map(|d| d as u32)
}

/// Result of one logical transfer.
enum Transfer {
    /// The payload arrived `delay` simulated seconds after the send
    /// started (all attempts plus any policy backoff), after `retries`
    /// retransmissions.
    Delivered {
        /// Total simulated delay.
        delay: f64,
        /// Dropped attempts before the one that got through.
        retries: u64,
    },
    /// The retry policy gave up: every attempt was dropped, wasting
    /// `wasted` simulated seconds of air time.
    Exhausted {
        /// Simulated time burned on the failed attempts.
        wasted: f64,
        /// Retransmissions performed before giving up.
        retries: u64,
    },
}

/// One logical transfer over `link`: resample on each drop, charging
/// every attempt (plus any policy backoff before it) to the returned
/// delay, until delivery or `policy` is exhausted. The default policy
/// reproduces the historical hardcoded loop draw-for-draw: a zero
/// backoff adds nothing, and the limit check sits after the retry
/// sample exactly as before.
fn simulate_transfer(
    link: &LinkSpec,
    bytes: usize,
    drop_prob: f64,
    rng: &mut StdRng,
    policy: &RetryPolicy,
) -> Transfer {
    let mut total = link.transfer_time(bytes, rng);
    let mut retries = 0u64;
    while drop_prob > 0.0 && rng.gen_range(0.0..1.0) < drop_prob {
        retries += 1;
        let backoff = policy.backoff_before(retries);
        if backoff > 0.0 {
            total += backoff;
        }
        total += link.transfer_time(bytes, rng);
        if retries > policy.max_retries {
            return Transfer::Exhausted { wasted: total, retries };
        }
    }
    Transfer::Delivered { delay: total, retries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;

    /// Worker that averages toward a target point.
    fn toward(target: Vec<f64>, weight: f64) -> Box<dyn DeviceWorker> {
        Box::new(FnWorker(move |_round: u32, global: &[f64]| {
            let params: Vec<f64> =
                global.iter().zip(&target).map(|(g, t)| g + 0.5 * (t - g)).collect();
            DeviceReply { params, weight, grad_evals: 10, compute_time: 0.01 }
        }))
    }

    #[test]
    fn converges_to_weighted_consensus() {
        let workers: Vec<Box<dyn DeviceWorker>> = vec![
            toward(vec![1.0, 1.0], 0.5),
            toward(vec![3.0, -1.0], 0.5),
        ];
        let report = NetworkRuntime.run(
            workers,
            vec![0.0, 0.0],
            60,
            &NetOptions::default(),
            |_, _| true,
        ).expect("runtime");
        // Fixed point: average of the two targets.
        assert!((report.final_model[0] - 2.0).abs() < 1e-6, "{:?}", report.final_model);
        assert!((report.final_model[1] - 0.0).abs() < 1e-6);
        assert_eq!(report.rounds_run, 60);
        assert_eq!(report.clock.rounds(), 60);
        // Symmetric devices over constant links: no straggler skew.
        assert_eq!(report.round_skews.len(), 60);
        assert!(report.round_skews.iter().all(|&s| s.abs() < 1e-12));
    }

    #[test]
    fn virtual_time_matches_constant_delays() {
        let opts = NetOptions {
            downlink: LinkSpec::constant(0.1),
            uplink: LinkSpec::constant(0.2),
            ..Default::default()
        };
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![0.0], 1.0), toward(vec![0.0], 1.0)];
        let report = NetworkRuntime.run(workers, vec![5.0], 10, &opts, |_, _| true).expect("runtime");
        // Each round: 0.1 + 0.01 + 0.2 = 0.31.
        assert!((report.clock.now() - 3.1).abs() < 1e-9, "{}", report.clock.now());
        assert!(report.round_durations.iter().all(|&d| (d - 0.31).abs() < 1e-12));
    }

    #[test]
    fn traffic_counted_in_real_bytes() {
        let dim = 7;
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0; dim], 1.0)];
        let report = NetworkRuntime
            .run(workers, vec![1.0; dim], 3, &NetOptions::default(), |_, _| true)
            .expect("runtime");
        let down_msg = codec::encoded_len(&Message::GlobalModel { round: 0, params: vec![0.0; dim] });
        let up_msg = codec::encoded_len(&Message::LocalModel {
            device: 0,
            round: 0,
            params: vec![0.0; dim],
            weight: 1.0,
            grad_evals: 0,
            compute_time: 0.0,
        });
        assert_eq!(report.clock.bytes_down(), 3 * down_msg as u64);
        assert_eq!(report.clock.bytes_up(), 3 * up_msg as u64);
    }

    #[test]
    fn early_stop_via_callback() {
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0], 1.0)];
        let report =
            NetworkRuntime
                .run(workers, vec![8.0], 100, &NetOptions::default(), |round, _| round < 4)
                .expect("runtime");
        assert_eq!(report.rounds_run, 5);
    }

    #[test]
    fn drops_cause_retransmissions_but_not_loss() {
        let opts = NetOptions { drop_prob: 0.3, seed: 42, ..Default::default() };
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![1.0], 0.7), toward(vec![1.0], 0.3)];
        let report = NetworkRuntime.run(workers, vec![0.0], 40, &opts, |_, _| true).expect("runtime");
        assert!(report.retransmissions > 0, "expected some drops at p=0.3");
        // The run still converges: payloads are never lost.
        assert!((report.final_model[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn straggler_dominates_round_duration() {
        let opts = NetOptions {
            downlink: LinkSpec::constant(0.0),
            uplink: LinkSpec::constant(0.0),
            ..Default::default()
        }
        .with_straggler(1, 50.0);
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![0.0], 0.5), toward(vec![0.0], 0.5)];
        let report = NetworkRuntime.run(workers, vec![1.0], 5, &opts, |_, _| true).expect("runtime");
        // compute 0.01 × 50 = 0.5 per round.
        assert!((report.clock.now() - 2.5).abs() < 1e-9);
        assert!(report.clock.straggler_waste() > 1.0);
        // Skew: finishes {0.01, 0.5}, median 0.255 → 0.5/0.255 − 1 ≈ 0.961.
        assert_eq!(report.round_skews.len(), 5);
        for &s in &report.round_skews {
            assert!((s - (0.5 / 0.255 - 1.0)).abs() < 1e-9, "skew {s}");
        }
    }

    #[test]
    fn compute_jitter_varies_round_durations_deterministically() {
        let mk = |seed: u64| NetOptions {
            downlink: LinkSpec::constant(0.0),
            uplink: LinkSpec::constant(0.0),
            compute_jitter: Some(DelayModel::LogNormal { mu: 0.0, sigma: 0.5 }),
            seed,
            ..Default::default()
        };
        let run = |seed: u64| {
            let workers: Vec<Box<dyn DeviceWorker>> =
                vec![toward(vec![0.0], 0.5), toward(vec![0.0], 0.5)];
            NetworkRuntime.run(workers, vec![1.0], 10, &mk(seed), |_, _| true).expect("runtime")
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.round_durations, b.round_durations, "jitter must be seeded");
        // Jitter makes durations vary across rounds.
        let mean = a.round_durations.iter().sum::<f64>() / a.round_durations.len() as f64;
        assert!(a.round_durations.iter().any(|&d| (d - mean).abs() > 1e-6));
        // Math is untouched.
        assert!((a.final_model[0] - run(99).final_model[0]).abs() < 1e-15);
    }

    #[test]
    fn heterogeneous_weights_respected() {
        // Device A (weight 0.9) pins to 10, device B (0.1) pins to 0:
        // aggregation should sit near 9 after convergence.
        let pin = |target: f64, weight: f64| -> Box<dyn DeviceWorker> {
            Box::new(FnWorker(move |_r: u32, _g: &[f64]| DeviceReply {
                params: vec![target],
                weight,
                grad_evals: 1,
                compute_time: 0.0,
            }))
        };
        let workers: Vec<Box<dyn DeviceWorker>> = vec![pin(10.0, 0.9), pin(0.0, 0.1)];
        let report = NetworkRuntime
            .run(workers, vec![0.0], 2, &NetOptions::default(), |_, _| true)
            .expect("runtime");
        assert!((report.final_model[0] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_delays_produce_variable_rounds() {
        let opts = NetOptions {
            downlink: LinkSpec {
                latency: DelayModel::LogNormal { mu: -3.0, sigma: 1.0 },
                bytes_per_sec: f64::INFINITY,
            },
            seed: 9,
            ..Default::default()
        };
        let workers: Vec<Box<dyn DeviceWorker>> = (0..4)
            .map(|_| toward(vec![0.0], 0.25))
            .collect();
        let report = NetworkRuntime.run(workers, vec![1.0], 20, &opts, |_, _| true).expect("runtime");
        let durs = &report.round_durations;
        let mean = durs.iter().sum::<f64>() / durs.len() as f64;
        assert!(durs.iter().any(|&d| (d - mean).abs() > 1e-6), "rounds identical");
    }

    #[test]
    fn multiple_stragglers_all_apply() {
        let opts = NetOptions {
            downlink: LinkSpec::constant(0.0),
            uplink: LinkSpec::constant(0.0),
            compute_multipliers: vec![(0, 10.0), (2, 30.0), (2, 2.0)],
            ..Default::default()
        };
        let workers: Vec<Box<dyn DeviceWorker>> =
            (0..3).map(|_| toward(vec![0.0], 1.0 / 3.0)).collect();
        let report = NetworkRuntime.run(workers, vec![1.0], 4, &opts, |_, _| true).expect("runtime");
        // Device 2 dominates: 0.01 × 30 × 2 = 0.6 per round.
        assert!((report.clock.now() - 2.4).abs() < 1e-9, "{}", report.clock.now());
    }

    #[test]
    fn strict_mode_report_has_no_participation() {
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0], 1.0)];
        let report = NetworkRuntime
            .run(workers, vec![1.0], 3, &NetOptions::default(), |_, _| true)
            .expect("runtime");
        assert!(report.participation.is_empty());
    }

    #[test]
    fn planned_crash_excludes_device_and_renormalizes() {
        use fedprox_faults::{FaultPlan, Resilience};
        let pin = |target: f64, weight: f64| -> Box<dyn DeviceWorker> {
            Box::new(FnWorker(move |_r: u32, _g: &[f64]| DeviceReply {
                params: vec![target],
                weight,
                grad_evals: 1,
                compute_time: 0.01,
            }))
        };
        // Weights 0.5/0.3/0.2 pinning 0/10/20: full aggregation gives
        // 0·0.5 + 10·0.3 + 20·0.2 = 7; without device 2 it renormalizes
        // to (0·0.5 + 10·0.3)/0.8 = 3.75.
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![pin(0.0, 0.5), pin(10.0, 0.3), pin(20.0, 0.2)];
        let opts = NetOptions::default()
            .with_resilience(Resilience::with_plan(FaultPlan::new().crash(2, 2)));
        let mut per_round = Vec::new();
        let report = NetworkRuntime
            .run(workers, vec![0.0], 3, &opts, |_, g| {
                per_round.push(g[0]);
                true
            })
            .expect("runtime");
        assert!((per_round[0] - 7.0).abs() < 1e-12, "round 1 full: {per_round:?}");
        assert!((per_round[1] - 3.75).abs() < 1e-12, "round 2 partial: {per_round:?}");
        assert!((per_round[2] - 3.75).abs() < 1e-12);
        assert_eq!(report.participation.len(), 3);
        assert_eq!(report.participation[0].responders(), 3);
        assert_eq!(report.participation[1].outcomes[2], DeviceOutcome::Crashed);
        assert_eq!(report.participation[1].responders(), 2);
        assert!((report.participation[1].responder_weight - 0.8).abs() < 1e-12);
        assert!(!report.participation[1].skipped);
    }

    #[test]
    fn offline_window_rejoins() {
        use fedprox_faults::{FaultPlan, Resilience};
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![1.0], 0.5), toward(vec![1.0], 0.5)];
        let opts = NetOptions::default()
            .with_resilience(Resilience::with_plan(FaultPlan::new().offline(1, 2, 3)));
        let report = NetworkRuntime.run(workers, vec![0.0], 5, &opts, |_, _| true).expect("runtime");
        let outcomes: Vec<DeviceOutcome> =
            report.participation.iter().map(|r| r.outcomes[1]).collect();
        use DeviceOutcome::*;
        assert_eq!(outcomes, vec![Responded, Offline, Offline, Responded, Responded]);
        assert!(report.participation.iter().all(|r| !r.skipped));
    }

    #[test]
    fn quorum_shortfall_skips_round_without_error() {
        use fedprox_faults::{FaultPlan, QuorumPolicy, Resilience};
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![1.0], 0.6), toward(vec![1.0], 0.4)];
        // Device 0 (60% of the weight) is offline in round 2: the 40%
        // responder set misses the 50% quorum, so round 2 must leave the
        // global model untouched and be counted as skipped.
        let resil = Resilience::with_plan(FaultPlan::new().offline(0, 2, 2))
            .with_quorum(QuorumPolicy::weight_fraction(0.5));
        let opts = NetOptions::default().with_resilience(resil);
        let mut per_round = Vec::new();
        let report = NetworkRuntime
            .run(workers, vec![0.0], 3, &opts, |_, g| {
                per_round.push(g[0]);
                true
            })
            .expect("runtime");
        assert_eq!(report.rounds_run, 3);
        assert_eq!(per_round.len(), 3);
        assert_eq!(
            per_round[1].to_bits(),
            per_round[0].to_bits(),
            "skipped round must not move the model"
        );
        assert!(per_round[2] > per_round[1], "training resumes after the skip");
        assert!(report.participation[1].skipped);
        assert!(!report.participation[0].skipped);
        assert!(!report.participation[2].skipped);
    }

    #[test]
    fn deadline_excludes_slow_device() {
        use fedprox_faults::{FaultPlan, Resilience};
        let pin = |target: f64, weight: f64| -> Box<dyn DeviceWorker> {
            Box::new(FnWorker(move |_r: u32, _g: &[f64]| DeviceReply {
                params: vec![target],
                weight,
                grad_evals: 1,
                compute_time: 0.01,
            }))
        };
        let workers: Vec<Box<dyn DeviceWorker>> = vec![pin(0.0, 0.5), pin(10.0, 0.5)];
        // Device 1 is slowed ×100 (compute 1.0 s) past the 0.5 s
        // deadline; links are free so device 0 finishes at 0.01 s.
        let resil = Resilience::with_plan(FaultPlan::new().slow(1, 100.0, 1, 10))
            .with_deadline(0.5);
        let opts = NetOptions {
            downlink: LinkSpec::constant(0.0),
            uplink: LinkSpec::constant(0.0),
            ..Default::default()
        }
        .with_resilience(resil);
        let report = NetworkRuntime.run(workers, vec![5.0], 2, &opts, |_, _| true).expect("runtime");
        assert!((report.final_model[0] - 0.0).abs() < 1e-12, "only device 0 aggregates");
        for rec in &report.participation {
            assert_eq!(rec.outcomes[1], DeviceOutcome::DeadlineMiss);
            assert!((rec.responder_weight - 0.5).abs() < 1e-12);
        }
        // The server stops waiting at the deadline.
        assert!(report.round_durations.iter().all(|&d| (d - 0.5).abs() < 1e-12));
    }

    #[test]
    fn flaky_link_exhaustion_degrades_to_link_failed() {
        use fedprox_faults::{FaultPlan, Resilience, RetryPolicy};
        let workers: Vec<Box<dyn DeviceWorker>> =
            vec![toward(vec![1.0], 0.5), toward(vec![1.0], 0.5)];
        // Device 1's link drops 90% of attempts and the policy allows no
        // retries at all: with seed sweeps it will fail some rounds, and
        // the run must complete anyway.
        let resil = Resilience::with_plan(FaultPlan::new().flaky(1, 0.9, 1, 30));
        let opts = NetOptions {
            retry: RetryPolicy::attempts(0),
            seed: 5,
            ..Default::default()
        }
        .with_resilience(resil);
        let report = NetworkRuntime.run(workers, vec![0.0], 30, &opts, |_, _| true).expect("runtime");
        let failed: usize = report
            .participation
            .iter()
            .map(|r| r.count(DeviceOutcome::LinkFailed))
            .sum();
        assert!(failed > 10, "90% drop with zero retries should fail most rounds: {failed}");
        // Device 0's link is clean, so quorum (any responder) always holds
        // and the model still converges toward the target.
        assert!(report.participation.iter().all(|r| !r.skipped));
        assert!((report.final_model[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn panicked_worker_becomes_crashed_participant() {
        let ok = |weight: f64| -> Box<dyn DeviceWorker> {
            Box::new(FnWorker(move |_r: u32, g: &[f64]| DeviceReply {
                params: g.iter().map(|x| 0.5 * x).collect(),
                weight,
                grad_evals: 1,
                compute_time: 0.01,
            }))
        };
        let bad: Box<dyn DeviceWorker> = Box::new(FnWorker(|round: u32, g: &[f64]| {
            // fedlint: allow(no-panic) — this worker exists to panic; the test asserts the runtime tolerates it
            assert!(round < 1, "device fault injected at round 2");
            DeviceReply {
                params: g.to_vec(),
                weight: 0.5,
                grad_evals: 1,
                compute_time: 0.01,
            }
        }));
        let workers: Vec<Box<dyn DeviceWorker>> = vec![ok(0.5), bad];
        let opts = NetOptions::default().with_resilience(fedprox_faults::Resilience::default());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = NetworkRuntime.run(workers, vec![4.0], 4, &opts, |_, _| true);
        std::panic::set_hook(prev);
        let report = report.expect("panic must degrade, not abort");
        assert_eq!(report.rounds_run, 4);
        assert_eq!(report.participation[0].responders(), 2);
        use DeviceOutcome::*;
        let dev1: Vec<DeviceOutcome> =
            report.participation.iter().map(|r| r.outcomes[1]).collect();
        assert_eq!(dev1, vec![Responded, Crashed, Crashed, Crashed]);
    }

    #[test]
    fn typed_worker_failure_is_fatal_in_strict_mode() {
        let failing: Box<dyn DeviceWorker> = Box::new(TryFnWorker(|round: u32, g: &[f64]| {
            if round >= 1 {
                return Err(WorkerError::new("injected typed failure"));
            }
            Ok(DeviceReply {
                params: g.to_vec(),
                weight: 0.5,
                grad_evals: 1,
                compute_time: 0.01,
            })
        }));
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0], 0.5), failing];
        let err = NetworkRuntime
            .run(workers, vec![1.0], 4, &NetOptions::default(), |_, _| true)
            .expect_err("strict mode must surface the typed failure");
        assert_eq!(
            err,
            NetError::WorkerFailed { device: 1, reason: "injected typed failure".to_string() }
        );
    }

    #[test]
    fn typed_worker_failure_degrades_to_crashed_participant() {
        let failing: Box<dyn DeviceWorker> = Box::new(TryFnWorker(|round: u32, g: &[f64]| {
            if round >= 1 {
                return Err(WorkerError::new("injected typed failure"));
            }
            Ok(DeviceReply {
                params: g.iter().map(|x| 0.5 * x).collect(),
                weight: 0.5,
                grad_evals: 1,
                compute_time: 0.01,
            })
        }));
        let workers: Vec<Box<dyn DeviceWorker>> = vec![toward(vec![0.0], 0.5), failing];
        let opts = NetOptions::default().with_resilience(fedprox_faults::Resilience::default());
        let report = NetworkRuntime
            .run(workers, vec![4.0], 4, &opts, |_, _| true)
            .expect("typed failure must degrade, not abort");
        assert_eq!(report.rounds_run, 4);
        use DeviceOutcome::*;
        let dev1: Vec<DeviceOutcome> =
            report.participation.iter().map(|r| r.outcomes[1]).collect();
        assert_eq!(dev1, vec![Responded, Crashed, Crashed, Crashed]);
    }

    /// The per-device reply threads race on the shared reply channel, but
    /// collection goes into per-device slots aggregated in id order — so
    /// repeated runs must be bitwise identical even with jittery links
    /// making arrival order genuinely nondeterministic. Guards the
    /// `spawn-ordering` allowance on the actor spawn.
    #[test]
    fn repeated_networked_runs_are_bitwise_identical() {
        let run = || {
            let workers: Vec<Box<dyn DeviceWorker>> = (0..6)
                .map(|i| toward(vec![i as f64, -(i as f64)], 1.0 / 6.0))
                .collect();
            let opts = NetOptions {
                downlink: LinkSpec {
                    latency: DelayModel::LogNormal { mu: -4.0, sigma: 1.0 },
                    bytes_per_sec: f64::INFINITY,
                },
                drop_prob: 0.2,
                seed: 77,
                ..Default::default()
            };
            let mut traj: Vec<u64> = Vec::new();
            let report = NetworkRuntime
                .run(workers, vec![0.0, 0.0], 20, &opts, |_, g| {
                    traj.extend(g.iter().map(|x| x.to_bits()));
                    true
                })
                .expect("runtime");
            (traj, report.final_model.iter().map(|x| x.to_bits()).collect::<Vec<_>>())
        };
        let (traj_a, final_a) = run();
        let (traj_b, final_b) = run();
        assert_eq!(traj_a, traj_b, "per-round globals must be bitwise stable");
        assert_eq!(final_a, final_b);
    }

    #[test]
    fn zero_fault_resilience_keeps_the_model_trajectory() {
        let run = |resilient: bool| {
            let workers: Vec<Box<dyn DeviceWorker>> =
                vec![toward(vec![1.0, -2.0], 0.7), toward(vec![3.0, 0.0], 0.3)];
            let mut opts = NetOptions { drop_prob: 0.1, seed: 21, ..Default::default() };
            if resilient {
                opts = opts.with_resilience(fedprox_faults::Resilience::default());
            }
            let mut traj: Vec<u64> = Vec::new();
            let report = NetworkRuntime
                .run(workers, vec![0.0, 0.0], 15, &opts, |_, g| {
                    traj.extend(g.iter().map(|x| x.to_bits()));
                    true
                })
                .expect("runtime");
            (traj, report)
        };
        let (strict_traj, strict) = run(false);
        let (resil_traj, resil) = run(true);
        // The model trajectory is bitwise-identical: delays never touch
        // the math, and full participation aggregates in id order in both
        // modes. (Simulated time differs — the RNG scheme changes.)
        assert_eq!(strict_traj, resil_traj);
        assert_eq!(
            strict.final_model.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            resil.final_model.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(resil.participation.len(), 15);
        assert!(resil.participation.iter().all(|r| r.responders() == 2 && !r.skipped));
    }
}
