//! One-hidden-layer perceptron with ReLU — a light non-convex model used
//! by tests and examples where the full CNN would be overkill.
//!
//! Parameter layout (flat): `[W1 (hidden x input); b1; W2 (classes x hidden); b2]`.

use crate::{GradScratch, LossModel};
use fedprox_data::Dataset;
use fedprox_tensor::activations::{
    cross_entropy_from_logits, cross_entropy_grad_from_logits, relu_backward_inplace,
    relu_inplace,
};
use fedprox_tensor::{kernel, vecops};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Multilayer perceptron: input → hidden(ReLU) → classes(softmax).
#[derive(Debug, Clone)]
pub struct Mlp {
    input: usize,
    hidden: usize,
    classes: usize,
    /// L2 penalty on both weight matrices (not biases).
    pub l2: f64,
}

impl Mlp {
    /// Build an MLP with the given layer sizes.
    pub fn new(input: usize, hidden: usize, classes: usize) -> Self {
        assert!(hidden >= 1 && classes >= 2);
        Mlp { input, hidden, classes, l2: 0.0 }
    }

    /// Add L2 regularisation.
    pub fn with_l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0);
        self.l2 = l2;
        self
    }

    // Offsets into the flat parameter vector.
    fn w1_end(&self) -> usize {
        self.hidden * self.input
    }
    fn b1_end(&self) -> usize {
        self.w1_end() + self.hidden
    }
    fn w2_end(&self) -> usize {
        self.b1_end() + self.classes * self.hidden
    }

    /// Forward pass; fills `pre_hidden` (before ReLU), `act_hidden`
    /// (after), and `logits`.
    fn forward(
        &self,
        w: &[f64],
        x: &[f64],
        pre_hidden: &mut [f64],
        act_hidden: &mut [f64],
        logits: &mut [f64],
    ) {
        let w1 = &w[..self.w1_end()];
        let b1 = &w[self.w1_end()..self.b1_end()];
        let w2 = &w[self.b1_end()..self.w2_end()];
        let b2 = &w[self.w2_end()..];
        kernel::matvec_into(w1, self.hidden, self.input, x, pre_hidden);
        for (p, &b) in pre_hidden.iter_mut().zip(b1) {
            *p += b;
        }
        act_hidden.copy_from_slice(pre_hidden);
        relu_inplace(act_hidden);
        kernel::matvec_into(w2, self.classes, self.hidden, act_hidden, logits);
        for (l, &b) in logits.iter_mut().zip(b2) {
            *l += b;
        }
    }

    /// Core of [`LossModel::sample_grad_accum`] with caller-held buffers.
    /// Runs the exact operations of the allocating path in the same order.
    #[allow(clippy::too_many_arguments)]
    fn grad_into(
        &self,
        w: &[f64],
        x: &[f64],
        class: usize,
        scale: f64,
        out: &mut [f64],
        ws: &mut MlpWs,
    ) {
        self.forward(w, x, &mut ws.pre, &mut ws.act, &mut ws.logits);
        cross_entropy_grad_from_logits(&ws.logits, class, &mut ws.dlogits);

        let (w1e, b1e, w2e) = (self.w1_end(), self.b1_end(), self.w2_end());
        let w2 = &w[b1e..w2e];

        // Output layer grads.
        {
            let (dw2, db2) = out[b1e..].split_at_mut(w2e - b1e);
            for c in 0..self.classes {
                let g = scale * ws.dlogits[c];
                if g != 0.0 {
                    vecops::axpy(g, &ws.act, &mut dw2[c * self.hidden..(c + 1) * self.hidden]);
                }
                db2[c] += g;
            }
        }

        // Backprop into hidden: dact[h] = Σ_c dlogits[c] * w2[c,h].
        kernel::matvec_t_into(w2, self.classes, self.hidden, &ws.dlogits, &mut ws.dact);
        relu_backward_inplace(&mut ws.dact, &ws.pre);

        // Input layer grads.
        {
            let (dw1, db1) = out[..b1e].split_at_mut(w1e);
            for h in 0..self.hidden {
                let g = scale * ws.dact[h];
                if g != 0.0 {
                    vecops::axpy(g, x, &mut dw1[h * self.input..(h + 1) * self.input]);
                }
                db1[h] += g;
            }
        }

        if self.l2 > 0.0 {
            let s = scale * self.l2;
            let w1 = &w[..w1e];
            vecops::axpy(s, w1, &mut out[..w1e]);
            // Need disjoint borrows for w and out ranges: copy values.
            for j in b1e..w2e {
                out[j] += s * w[j];
            }
        }
    }
}

/// Reusable forward/backward buffers for [`Mlp`].
struct MlpWs {
    pre: Vec<f64>,
    act: Vec<f64>,
    logits: Vec<f64>,
    dlogits: Vec<f64>,
    dact: Vec<f64>,
    /// Chunk accumulator for the fixed-chunk batch reduction.
    acc: Vec<f64>,
}

impl MlpWs {
    fn new(hidden: usize, classes: usize, dim: usize) -> Self {
        MlpWs {
            pre: vec![0.0; hidden],
            act: vec![0.0; hidden],
            logits: vec![0.0; classes],
            dlogits: vec![0.0; classes],
            dact: vec![0.0; hidden],
            acc: vec![0.0; dim],
        }
    }

    fn fits(&self, hidden: usize, classes: usize, dim: usize) -> bool {
        self.pre.len() == hidden && self.logits.len() == classes && self.acc.len() == dim
    }
}

impl LossModel for Mlp {
    fn dim(&self) -> usize {
        self.w2_end() + self.classes
    }

    fn init_params(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0; self.dim()];
        let (w1e, b1e, w2e) = (self.w1_end(), self.b1_end(), self.w2_end());
        fedprox_tensor::init::he_normal(&mut rng, &mut w[..w1e], self.input);
        fedprox_tensor::init::xavier_uniform(
            &mut rng,
            &mut w[b1e..w2e],
            self.hidden,
            self.classes,
        );
        let _ = b1e;
        w
    }

    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        let mut pre = vec![0.0; self.hidden];
        let mut act = vec![0.0; self.hidden];
        let mut logits = vec![0.0; self.classes];
        self.forward(w, data.x(i), &mut pre, &mut act, &mut logits);
        let ce = cross_entropy_from_logits(&logits, data.class_of(i));
        if self.l2 > 0.0 {
            let w1 = &w[..self.w1_end()];
            let w2 = &w[self.b1_end()..self.w2_end()];
            ce + self.l2 / 2.0 * (vecops::norm_sq(w1) + vecops::norm_sq(w2))
        } else {
            ce
        }
    }

    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        let mut ws = MlpWs::new(self.hidden, self.classes, self.dim());
        self.grad_into(w, data.x(i), data.class_of(i), scale, out, &mut ws);
    }

    fn batch_grad_in(
        &self,
        w: &[f64],
        data: &Dataset,
        indices: &[usize],
        out: &mut [f64],
        scratch: &mut GradScratch,
    ) {
        assert_eq!(out.len(), self.dim(), "batch_grad_in: out length");
        let (hidden, classes, dim) = (self.hidden, self.classes, self.dim());
        let ws = scratch.model_ws::<MlpWs, _, _>(
            || MlpWs::new(hidden, classes, dim),
            |ws| ws.fits(hidden, classes, dim),
        );
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= crate::BATCH_PAR_THRESHOLD {
            for chunk in indices.chunks(crate::BATCH_CHUNK) {
                ws.acc.fill(0.0);
                for &i in chunk {
                    // Split the borrow: the chunk accumulator is disjoint
                    // from the forward/backward buffers.
                    let mut acc = std::mem::take(&mut ws.acc);
                    self.grad_into(w, data.x(i), data.class_of(i), scale, &mut acc, ws);
                    ws.acc = acc;
                }
                vecops::add_assign(out, &ws.acc);
            }
        } else {
            for &i in indices {
                self.grad_into(w, data.x(i), data.class_of(i), scale, out, ws);
            }
        }
    }

    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        let mut pre = vec![0.0; self.hidden];
        let mut act = vec![0.0; self.hidden];
        let mut logits = vec![0.0; self.classes];
        self.forward(w, x, &mut pre, &mut act, &mut logits);
        let mut best = 0;
        for (c, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = c;
            }
        }
        best as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_batch_grad;
    use fedprox_tensor::Matrix;

    /// XOR-style data no linear model can fit.
    fn xor() -> Dataset {
        let pts =
            [([0.0, 0.0], 0.0), ([1.0, 1.0], 0.0), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0)];
        let mut f = Matrix::zeros(4, 2);
        let mut y = Vec::new();
        for (i, (x, lab)) in pts.iter().enumerate() {
            f.row_mut(i).copy_from_slice(x);
            y.push(*lab);
        }
        Dataset::new(f, y, 2)
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = xor();
        let model = Mlp::new(2, 8, 2).with_l2(0.01);
        let mut w = model.init_params(11);
        // Perturb all parameters (including the zero-initialised biases)
        // away from ReLU kinks: the XOR input (0,0) with b1 = 0 puts the
        // pre-activation exactly at 0, where FD and the subgradient choice
        // legitimately disagree.
        for (j, v) in w.iter_mut().enumerate() {
            *v += 0.05 + 1e-3 * (j as f64).sin();
        }
        let r = check_batch_grad(&model, &w, &d, &[0, 1, 2, 3], 1e-6, 1);
        assert!(r.max_rel_err < 1e-4, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn learns_xor() {
        let d = xor();
        let model = Mlp::new(2, 16, 2);
        let mut w = model.init_params(3);
        let mut g = vec![0.0; model.dim()];
        for _ in 0..4000 {
            model.full_grad(&w, &d, &mut g);
            vecops::axpy(-0.3, &g, &mut w);
        }
        assert_eq!(model.accuracy(&w, &d), 1.0, "loss={}", model.full_loss(&w, &d));
    }

    #[test]
    fn dim_layout() {
        let m = Mlp::new(3, 5, 2);
        assert_eq!(m.dim(), 5 * 3 + 5 + 2 * 5 + 2);
    }

    #[test]
    fn deterministic_init() {
        let m = Mlp::new(4, 6, 3);
        assert_eq!(m.init_params(9), m.init_params(9));
        assert_ne!(m.init_params(9), m.init_params(10));
    }
}
