//! Linear regression with squared loss — the paper's first example loss:
//! `f_i(w) = ½ (x_iᵀ w − y_i)²` (System Model, Section 3).

use crate::LossModel;
use fedprox_data::Dataset;
use fedprox_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Linear regression model. Parameters are the `dim`-vector `w` plus an
/// intercept when `intercept` is set (stored last).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    features: usize,
    intercept: bool,
    /// L2 penalty coefficient applied as `+ l2/2 · ‖w‖²` per sample.
    pub l2: f64,
}

impl LinearRegression {
    /// Plain least squares over `features` inputs, no intercept.
    pub fn new(features: usize) -> Self {
        LinearRegression { features, intercept: false, l2: 0.0 }
    }

    /// With an intercept term.
    pub fn with_intercept(features: usize) -> Self {
        LinearRegression { features, intercept: true, l2: 0.0 }
    }

    /// Add ridge regularisation.
    pub fn with_l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0);
        self.l2 = l2;
        self
    }

    fn raw_prediction(&self, w: &[f64], x: &[f64]) -> f64 {
        let p = vecops::dot(&w[..self.features], x);
        if self.intercept {
            p + w[self.features]
        } else {
            p
        }
    }
}

impl LossModel for LinearRegression {
    fn dim(&self) -> usize {
        self.features + usize::from(self.intercept)
    }

    fn init_params(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0; self.dim()];
        fedprox_tensor::init::uniform(&mut rng, &mut w, 0.01);
        w
    }

    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        let r = self.raw_prediction(w, data.x(i)) - data.y(i);
        let reg = if self.l2 > 0.0 { self.l2 / 2.0 * vecops::norm_sq(w) } else { 0.0 };
        r * r / 2.0 + reg
    }

    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        let x = data.x(i);
        let r = self.raw_prediction(w, x) - data.y(i);
        vecops::axpy(scale * r, x, &mut out[..self.features]);
        if self.intercept {
            out[self.features] += scale * r;
        }
        if self.l2 > 0.0 {
            vecops::axpy(scale * self.l2, w, out);
        }
    }

    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        self.raw_prediction(w, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_ok;
    use fedprox_tensor::Matrix;

    fn toy() -> Dataset {
        // y = 2x0 - x1 + 0.5
        let xs = [[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, -1.0], [0.5, 0.25]];
        let mut f = Matrix::zeros(5, 2);
        let mut y = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            f.row_mut(i).copy_from_slice(x);
            y.push(2.0 * x[0] - x[1] + 0.5);
        }
        Dataset::new(f, y, 0)
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = toy();
        for model in [
            LinearRegression::new(2),
            LinearRegression::with_intercept(2),
            LinearRegression::with_intercept(2).with_l2(0.1),
        ] {
            let w = model.init_params(1);
            assert_grad_ok(&model, &w, &d, &[0, 1, 2, 3, 4], 1e-5);
        }
    }

    #[test]
    fn zero_loss_at_true_model() {
        let d = toy();
        let model = LinearRegression::with_intercept(2);
        let w = vec![2.0, -1.0, 0.5];
        assert!(model.full_loss(&w, &d) < 1e-20);
        let mut g = vec![0.0; 3];
        model.full_grad(&w, &d, &mut g);
        assert!(vecops::norm(&g) < 1e-10);
    }

    #[test]
    fn gd_converges_to_true_model() {
        let d = toy();
        let model = LinearRegression::with_intercept(2);
        let mut w = model.init_params(3);
        let mut g = vec![0.0; 3];
        for _ in 0..3000 {
            model.full_grad(&w, &d, &mut g);
            vecops::axpy(-0.1, &g, &mut w);
        }
        assert!((w[0] - 2.0).abs() < 1e-3, "w={w:?}");
        assert!((w[1] + 1.0).abs() < 1e-3);
        assert!((w[2] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn l2_pulls_weights_toward_zero() {
        let d = toy();
        let plain = LinearRegression::with_intercept(2);
        let ridge = LinearRegression::with_intercept(2).with_l2(1.0);
        let train = |m: &LinearRegression| {
            let mut w = m.init_params(3);
            let mut g = vec![0.0; 3];
            for _ in 0..3000 {
                m.full_grad(&w, &d, &mut g);
                vecops::axpy(-0.05, &g, &mut w);
            }
            w
        };
        let wp = train(&plain);
        let wr = train(&ridge);
        assert!(vecops::norm(&wr) < vecops::norm(&wp));
    }

    #[test]
    fn dims() {
        assert_eq!(LinearRegression::new(4).dim(), 4);
        assert_eq!(LinearRegression::with_intercept(4).dim(), 5);
    }
}
