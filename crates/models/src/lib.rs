//! Loss models with hand-written gradients.
//!
//! The paper's experiments use a **multinomial logistic regression** for
//! the convex task and a **two-layer CNN** (McMahan et al.'s architecture)
//! for the non-convex task; its System Model section also names linear
//! regression and SVM losses as examples. All of them are implemented here
//! against the [`LossModel`] trait, which exposes exactly what Algorithm 1
//! consumes: per-sample losses `f_i(w)` and gradients `∇f_i(w)` over a
//! flat parameter vector `w ∈ R^l`.
//!
//! Gradients are verified against central finite differences in each
//! model's tests (`gradcheck`).

#![warn(missing_docs)]

pub mod cnn;
pub mod estimate;
pub mod gradcheck;
pub mod linreg;
pub mod logistic;
pub mod mlp;
pub mod svm;

use fedprox_data::Dataset;
use rayon::prelude::*;

pub use cnn::{Cnn, CnnSpec};
pub use linreg::LinearRegression;
pub use logistic::MultinomialLogistic;
pub use mlp::Mlp;
pub use svm::SmoothedSvm;

/// Default seed used by examples/tests when initialising model parameters.
pub const MODEL_SEED: u64 = 0xF3D;

/// Batch size above which batch gradients fan out across rayon.
const BATCH_PAR_THRESHOLD: usize = 32;

/// Fixed chunk size for parallel batch reductions (fixed so the
/// combination order — and therefore the floating-point result — does not
/// depend on thread scheduling).
const BATCH_CHUNK: usize = 32;

/// A differentiable finite-sum loss `F_n(w) = (1/D_n) Σ_i f_i(w)` over a
/// [`Dataset`], exposed per sample as Algorithm 1 requires.
///
/// Implementations must be `Send + Sync`: devices evaluate gradients in
/// parallel during a federated round.
pub trait LossModel: Send + Sync {
    /// Length of the flat parameter vector `l`.
    fn dim(&self) -> usize;

    /// Initialise a parameter vector from `seed` (deterministic).
    fn init_params(&self, seed: u64) -> Vec<f64>;

    /// Loss of sample `i`: `f_i(w)`.
    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64;

    /// Gradient of sample `i` **accumulated** into `out` scaled by
    /// `scale`: `out += scale · ∇f_i(w)`. Accumulation lets batch and
    /// full gradients avoid temporary buffers.
    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]);

    /// Prediction for a raw feature vector: class index (as `f64`) for
    /// classifiers, value for regressors.
    fn predict(&self, w: &[f64], x: &[f64]) -> f64;

    /// Mean loss over the samples at `indices`.
    ///
    /// Parallel reductions use **fixed-size chunks combined in order**:
    /// floating-point addition is not associative, and rayon's adaptive
    /// `fold`/`reduce` splitting would make results depend on thread
    /// scheduling. Deterministic chunking keeps the sequential, parallel,
    /// and networked training backends bit-identical.
    fn batch_loss(&self, w: &[f64], data: &Dataset, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let sum: f64 = if indices.len() >= BATCH_PAR_THRESHOLD {
            let partials: Vec<f64> = indices
                .par_chunks(BATCH_CHUNK)
                .map(|chunk| chunk.iter().map(|&i| self.sample_loss(w, data, i)).sum())
                .collect();
            partials.iter().sum()
        } else {
            indices.iter().map(|&i| self.sample_loss(w, data, i)).sum()
        };
        sum / indices.len() as f64
    }

    /// Mean gradient over the samples at `indices`, written into `out`
    /// (overwritten). Parallel over fixed chunks for large batches; the
    /// per-chunk partial gradients are summed in chunk order (see
    /// [`Self::batch_loss`] on why the order is pinned).
    fn batch_grad(&self, w: &[f64], data: &Dataset, indices: &[usize], out: &mut [f64]) {
        assert_eq!(out.len(), self.dim(), "batch_grad: out length");
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= BATCH_PAR_THRESHOLD {
            let partials: Vec<Vec<f64>> = indices
                .par_chunks(BATCH_CHUNK)
                .map(|chunk| {
                    let mut acc = vec![0.0; self.dim()];
                    for &i in chunk {
                        self.sample_grad_accum(w, data, i, scale, &mut acc);
                    }
                    acc
                })
                .collect();
            for p in &partials {
                fedprox_tensor::vecops::add_assign(out, p);
            }
        } else {
            for &i in indices {
                self.sample_grad_accum(w, data, i, scale, out);
            }
        }
    }

    /// Mean loss over the whole dataset: `F_n(w)`.
    fn full_loss(&self, w: &[f64], data: &Dataset) -> f64 {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_loss(w, data, &idx)
    }

    /// Full gradient `∇F_n(w)` into `out`.
    fn full_grad(&self, w: &[f64], data: &Dataset, out: &mut [f64]) {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_grad(w, data, &idx, out);
    }

    /// Classification accuracy over `data` (fraction of samples whose
    /// [`Self::predict`] matches the label). For regressors this compares
    /// rounded predictions and is rarely meaningful.
    fn accuracy(&self, w: &[f64], data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct: usize = if data.len() >= BATCH_PAR_THRESHOLD {
            (0..data.len())
                .into_par_iter()
                .filter(|&i| self.predict(w, data.x(i)) == data.y(i))
                .count()
        } else {
            (0..data.len()).filter(|&i| self.predict(w, data.x(i)) == data.y(i)).count()
        };
        correct as f64 / data.len() as f64
    }
}

/// Boxed models (e.g. `Box<dyn LossModel>` from a config file) are
/// themselves models.
impl<M: LossModel + ?Sized> LossModel for Box<M> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn init_params(&self, seed: u64) -> Vec<f64> {
        (**self).init_params(seed)
    }
    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        (**self).sample_loss(w, data, i)
    }
    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        (**self).sample_grad_accum(w, data, i, scale, out)
    }
    fn batch_grad(&self, w: &[f64], data: &Dataset, indices: &[usize], out: &mut [f64]) {
        (**self).batch_grad(w, data, indices, out)
    }
    fn batch_loss(&self, w: &[f64], data: &Dataset, indices: &[usize]) -> f64 {
        (**self).batch_loss(w, data, indices)
    }
    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        (**self).predict(w, x)
    }
}

/// Blanket impl so `&M` satisfies [`LossModel`] call sites that take
/// generics.
impl<M: LossModel + ?Sized> LossModel for &M {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn init_params(&self, seed: u64) -> Vec<f64> {
        (**self).init_params(seed)
    }
    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        (**self).sample_loss(w, data, i)
    }
    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        (**self).sample_grad_accum(w, data, i, scale, out)
    }
    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        (**self).predict(w, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::Matrix;

    /// Trivial quadratic model for exercising the provided methods:
    /// f_i(w) = ½‖w − x_i‖².
    struct Quad {
        dim: usize,
    }

    impl LossModel for Quad {
        fn dim(&self) -> usize {
            self.dim
        }
        fn init_params(&self, _seed: u64) -> Vec<f64> {
            vec![0.0; self.dim]
        }
        fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
            fedprox_tensor::vecops::dist_sq(w, data.x(i)) / 2.0
        }
        fn sample_grad_accum(
            &self,
            w: &[f64],
            data: &Dataset,
            i: usize,
            scale: f64,
            out: &mut [f64],
        ) {
            for ((o, &wv), &xv) in out.iter_mut().zip(w).zip(data.x(i)) {
                *o += scale * (wv - xv);
            }
        }
        fn predict(&self, _w: &[f64], _x: &[f64]) -> f64 {
            0.0
        }
    }

    fn toy_data(n: usize, dim: usize) -> Dataset {
        let mut f = Matrix::zeros(n, dim);
        for i in 0..n {
            for j in 0..dim {
                f.row_mut(i)[j] = (i * dim + j) as f64 * 0.1;
            }
        }
        Dataset::new(f, vec![0.0; n], 1)
    }

    #[test]
    fn batch_grad_is_mean_of_sample_grads() {
        let m = Quad { dim: 3 };
        let d = toy_data(5, 3);
        let w = vec![1.0, -1.0, 0.5];
        let idx = [0, 2, 4];
        let mut got = vec![0.0; 3];
        m.batch_grad(&w, &d, &idx, &mut got);
        let mut want = vec![0.0; 3];
        for &i in &idx {
            m.sample_grad_accum(&w, &d, i, 1.0 / 3.0, &mut want);
        }
        for (g, wv) in got.iter().zip(&want) {
            assert!((g - wv).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let m = Quad { dim: 4 };
        let d = toy_data(200, 4);
        let w = vec![0.3; 4];
        let big: Vec<usize> = (0..200).collect();
        let mut par = vec![0.0; 4];
        m.batch_grad(&w, &d, &big, &mut par);
        let mut seq = vec![0.0; 4];
        for &i in &big {
            m.sample_grad_accum(&w, &d, i, 1.0 / 200.0, &mut seq);
        }
        for (a, b) in par.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-10);
        }
        // Loss too.
        let lp = m.batch_loss(&w, &d, &big);
        let ls: f64 =
            big.iter().map(|&i| m.sample_loss(&w, &d, i)).sum::<f64>() / big.len() as f64;
        assert!((lp - ls).abs() < 1e-10);
    }

    #[test]
    fn empty_batch_is_zero() {
        let m = Quad { dim: 2 };
        let d = toy_data(3, 2);
        let mut g = vec![9.0; 2];
        m.batch_grad(&[0.0, 0.0], &d, &[], &mut g);
        assert_eq!(g, vec![0.0, 0.0]);
        assert_eq!(m.batch_loss(&[0.0, 0.0], &d, &[]), 0.0);
    }

    #[test]
    fn full_grad_zero_at_minimizer() {
        let m = Quad { dim: 2 };
        let d = toy_data(4, 2);
        // Minimizer of Σ½‖w−x_i‖² is the mean of x_i.
        let mean = fedprox_data::stats::feature_mean(&d);
        let mut g = vec![0.0; 2];
        m.full_grad(&mean, &d, &mut g);
        assert!(fedprox_tensor::vecops::norm(&g) < 1e-12);
    }
}
