//! Loss models with hand-written gradients.
//!
//! The paper's experiments use a **multinomial logistic regression** for
//! the convex task and a **two-layer CNN** (McMahan et al.'s architecture)
//! for the non-convex task; its System Model section also names linear
//! regression and SVM losses as examples. All of them are implemented here
//! against the [`LossModel`] trait, which exposes exactly what Algorithm 1
//! consumes: per-sample losses `f_i(w)` and gradients `∇f_i(w)` over a
//! flat parameter vector `w ∈ R^l`.
//!
//! Gradients are verified against central finite differences in each
//! model's tests (`gradcheck`).

// fedlint: allow(clippy-allow-sync) — crate-wide: model construction is R1-exempt; shape mismatches are programming errors caught at build time
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod cnn;
pub mod estimate;
pub mod gradcheck;
pub mod linreg;
pub mod logistic;
pub mod mlp;
pub mod svm;

use fedprox_data::Dataset;
use rayon::prelude::*;
use std::any::Any;

pub use cnn::{Cnn, CnnSpec};
pub use linreg::LinearRegression;
pub use logistic::MultinomialLogistic;
pub use mlp::Mlp;
pub use svm::SmoothedSvm;

/// Reusable workspace for repeated gradient evaluations.
///
/// The inner loop of Algorithm 1 evaluates `O(τ)` batch gradients per
/// local solve; without a workspace each evaluation allocates its chunk
/// accumulators and per-sample forward/backward buffers from scratch.
/// Callers that loop (the optim estimator, the local solver) hold one
/// `GradScratch` and pass it to [`LossModel::batch_grad_in`] /
/// [`LossModel::full_grad_in`], making the loop O(1) allocations.
///
/// The buffer-reusing paths are **bit-identical** to the allocating ones:
/// they run the same floating-point operations in the same order, only
/// the buffers' provenance changes (verified by the differential tests in
/// `crates/optim/tests/differential.rs` and the workspace-reuse tests).
#[derive(Default)]
pub struct GradScratch {
    /// Index buffer reused by full-gradient evaluations.
    all_indices: Vec<usize>,
    /// Per-chunk accumulator for the default chunked batch reduction.
    chunk_acc: Vec<f64>,
    /// Model-specific forward/backward workspace (downcast on use).
    model_ws: Option<Box<dyn Any + Send>>,
}

impl GradScratch {
    /// Fresh, empty scratch. Buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        GradScratch::default()
    }

    /// Borrow the model-specific workspace, (re)building it when absent,
    /// of a different type (scratch reused across models), or rejected by
    /// `valid` (e.g. sized for different model dimensions).
    pub fn model_ws<T, B, V>(&mut self, build: B, valid: V) -> &mut T
    where
        T: Any + Send,
        B: FnOnce() -> T,
        V: Fn(&T) -> bool,
    {
        let rebuild = match self.model_ws.as_ref().and_then(|b| b.downcast_ref::<T>()) {
            Some(ws) => !valid(ws),
            None => true,
        };
        if rebuild {
            self.model_ws = Some(Box::new(build()));
        }
        match self.model_ws.as_mut().and_then(|b| b.downcast_mut::<T>()) {
            Some(ws) => ws,
            // A value of type T was installed on the line above.
            None => unreachable!("GradScratch::model_ws: workspace just installed"),
        }
    }
}

impl std::fmt::Debug for GradScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradScratch")
            .field("all_indices", &self.all_indices.len())
            .field("chunk_acc", &self.chunk_acc.len())
            .field("model_ws", &self.model_ws.is_some())
            .finish()
    }
}

/// Cloning yields a *fresh* scratch: the buffers are pure caches, and the
/// model workspace is not itself cloneable (`Box<dyn Any>`).
impl Clone for GradScratch {
    fn clone(&self) -> Self {
        GradScratch::new()
    }
}

// `Box<dyn Any>` is not structurally unwind-safe, but a scratch observed
// after a panic cannot leak broken invariants: every buffer is overwritten
// before use and `model_ws` is validated (and rebuilt if stale) on every
// access, so asserting unwind safety is sound. Without these impls no
// holder of a scratch (e.g. `Estimator`) could cross `catch_unwind`,
// which the numeric-guard tests rely on.
impl std::panic::UnwindSafe for GradScratch {}
impl std::panic::RefUnwindSafe for GradScratch {}

/// Default seed used by examples/tests when initialising model parameters.
pub const MODEL_SEED: u64 = 0xF3D;

/// Batch size above which batch gradients fan out across rayon.
const BATCH_PAR_THRESHOLD: usize = 32;

/// Fixed chunk size for parallel batch reductions (fixed so the
/// combination order — and therefore the floating-point result — does not
/// depend on thread scheduling).
const BATCH_CHUNK: usize = 32;

/// A differentiable finite-sum loss `F_n(w) = (1/D_n) Σ_i f_i(w)` over a
/// [`Dataset`], exposed per sample as Algorithm 1 requires.
///
/// Implementations must be `Send + Sync`: devices evaluate gradients in
/// parallel during a federated round.
pub trait LossModel: Send + Sync {
    /// Length of the flat parameter vector `l`.
    fn dim(&self) -> usize;

    /// Initialise a parameter vector from `seed` (deterministic).
    fn init_params(&self, seed: u64) -> Vec<f64>;

    /// Loss of sample `i`: `f_i(w)`.
    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64;

    /// Gradient of sample `i` **accumulated** into `out` scaled by
    /// `scale`: `out += scale · ∇f_i(w)`. Accumulation lets batch and
    /// full gradients avoid temporary buffers.
    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]);

    /// Prediction for a raw feature vector: class index (as `f64`) for
    /// classifiers, value for regressors.
    fn predict(&self, w: &[f64], x: &[f64]) -> f64;

    /// Mean loss over the samples at `indices`.
    ///
    /// Parallel reductions use **fixed-size chunks combined in order**:
    /// floating-point addition is not associative, and rayon's adaptive
    /// `fold`/`reduce` splitting would make results depend on thread
    /// scheduling. Deterministic chunking keeps the sequential, parallel,
    /// and networked training backends bit-identical.
    fn batch_loss(&self, w: &[f64], data: &Dataset, indices: &[usize]) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let sum: f64 = if indices.len() >= BATCH_PAR_THRESHOLD {
            let partials: Vec<f64> = indices
                .par_chunks(BATCH_CHUNK)
                .map(|chunk| chunk.iter().map(|&i| self.sample_loss(w, data, i)).sum())
                .collect();
            partials.iter().sum()
        } else {
            indices.iter().map(|&i| self.sample_loss(w, data, i)).sum()
        };
        sum / indices.len() as f64
    }

    /// Mean gradient over the samples at `indices`, written into `out`
    /// (overwritten). Parallel over fixed chunks for large batches; the
    /// per-chunk partial gradients are summed in chunk order (see
    /// [`Self::batch_loss`] on why the order is pinned).
    fn batch_grad(&self, w: &[f64], data: &Dataset, indices: &[usize], out: &mut [f64]) {
        assert_eq!(out.len(), self.dim(), "batch_grad: out length");
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= BATCH_PAR_THRESHOLD {
            let partials: Vec<Vec<f64>> = indices
                .par_chunks(BATCH_CHUNK)
                .map(|chunk| {
                    let mut acc = vec![0.0; self.dim()];
                    for &i in chunk {
                        self.sample_grad_accum(w, data, i, scale, &mut acc);
                    }
                    acc
                })
                .collect();
            for p in &partials {
                fedprox_tensor::vecops::add_assign(out, p);
            }
        } else {
            for &i in indices {
                self.sample_grad_accum(w, data, i, scale, out);
            }
        }
    }

    /// Like [`Self::batch_grad`], but reusing buffers from `scratch` so a
    /// loop of evaluations does O(1) allocations. Must be bit-identical
    /// to `batch_grad` — same operations, same order; the default mirrors
    /// the chunked reduction with one reused chunk accumulator (the
    /// chunks are combined in index order either way).
    fn batch_grad_in(
        &self,
        w: &[f64],
        data: &Dataset,
        indices: &[usize],
        out: &mut [f64],
        scratch: &mut GradScratch,
    ) {
        assert_eq!(out.len(), self.dim(), "batch_grad_in: out length");
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= BATCH_PAR_THRESHOLD {
            scratch.chunk_acc.resize(self.dim(), 0.0);
            for chunk in indices.chunks(BATCH_CHUNK) {
                scratch.chunk_acc.fill(0.0);
                for &i in chunk {
                    self.sample_grad_accum(w, data, i, scale, &mut scratch.chunk_acc);
                }
                fedprox_tensor::vecops::add_assign(out, &scratch.chunk_acc);
            }
        } else {
            for &i in indices {
                self.sample_grad_accum(w, data, i, scale, out);
            }
        }
    }

    /// Like [`Self::full_grad`], but reusing `scratch` (index buffer and
    /// model workspace). Bit-identical to `full_grad`.
    fn full_grad_in(&self, w: &[f64], data: &Dataset, out: &mut [f64], scratch: &mut GradScratch) {
        // Take the index buffer out so `scratch` can be passed down.
        let mut idx = std::mem::take(&mut scratch.all_indices);
        idx.clear();
        idx.extend(0..data.len());
        self.batch_grad_in(w, data, &idx, out, scratch);
        scratch.all_indices = idx;
    }

    /// Mean loss over the whole dataset: `F_n(w)`.
    fn full_loss(&self, w: &[f64], data: &Dataset) -> f64 {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_loss(w, data, &idx)
    }

    /// Full gradient `∇F_n(w)` into `out`.
    fn full_grad(&self, w: &[f64], data: &Dataset, out: &mut [f64]) {
        let idx: Vec<usize> = (0..data.len()).collect();
        self.batch_grad(w, data, &idx, out);
    }

    /// Classification accuracy over `data` (fraction of samples whose
    /// [`Self::predict`] matches the label). For regressors this compares
    /// rounded predictions and is rarely meaningful.
    fn accuracy(&self, w: &[f64], data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct: usize = if data.len() >= BATCH_PAR_THRESHOLD {
            (0..data.len())
                .into_par_iter()
                .filter(|&i| self.predict(w, data.x(i)) == data.y(i))
                .count()
        } else {
            (0..data.len()).filter(|&i| self.predict(w, data.x(i)) == data.y(i)).count()
        };
        correct as f64 / data.len() as f64
    }
}

/// Boxed models (e.g. `Box<dyn LossModel>` from a config file) are
/// themselves models.
impl<M: LossModel + ?Sized> LossModel for Box<M> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn init_params(&self, seed: u64) -> Vec<f64> {
        (**self).init_params(seed)
    }
    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        (**self).sample_loss(w, data, i)
    }
    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        (**self).sample_grad_accum(w, data, i, scale, out)
    }
    fn batch_grad(&self, w: &[f64], data: &Dataset, indices: &[usize], out: &mut [f64]) {
        (**self).batch_grad(w, data, indices, out)
    }
    fn batch_loss(&self, w: &[f64], data: &Dataset, indices: &[usize]) -> f64 {
        (**self).batch_loss(w, data, indices)
    }
    fn batch_grad_in(
        &self,
        w: &[f64],
        data: &Dataset,
        indices: &[usize],
        out: &mut [f64],
        scratch: &mut GradScratch,
    ) {
        (**self).batch_grad_in(w, data, indices, out, scratch)
    }
    fn full_grad_in(&self, w: &[f64], data: &Dataset, out: &mut [f64], scratch: &mut GradScratch) {
        (**self).full_grad_in(w, data, out, scratch)
    }
    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        (**self).predict(w, x)
    }
}

/// Blanket impl so `&M` satisfies [`LossModel`] call sites that take
/// generics.
impl<M: LossModel + ?Sized> LossModel for &M {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn init_params(&self, seed: u64) -> Vec<f64> {
        (**self).init_params(seed)
    }
    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        (**self).sample_loss(w, data, i)
    }
    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        (**self).sample_grad_accum(w, data, i, scale, out)
    }
    fn batch_grad_in(
        &self,
        w: &[f64],
        data: &Dataset,
        indices: &[usize],
        out: &mut [f64],
        scratch: &mut GradScratch,
    ) {
        (**self).batch_grad_in(w, data, indices, out, scratch)
    }
    fn full_grad_in(&self, w: &[f64], data: &Dataset, out: &mut [f64], scratch: &mut GradScratch) {
        (**self).full_grad_in(w, data, out, scratch)
    }
    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        (**self).predict(w, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_tensor::Matrix;

    /// Trivial quadratic model for exercising the provided methods:
    /// f_i(w) = ½‖w − x_i‖².
    struct Quad {
        dim: usize,
    }

    impl LossModel for Quad {
        fn dim(&self) -> usize {
            self.dim
        }
        fn init_params(&self, _seed: u64) -> Vec<f64> {
            vec![0.0; self.dim]
        }
        fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
            fedprox_tensor::vecops::dist_sq(w, data.x(i)) / 2.0
        }
        fn sample_grad_accum(
            &self,
            w: &[f64],
            data: &Dataset,
            i: usize,
            scale: f64,
            out: &mut [f64],
        ) {
            for ((o, &wv), &xv) in out.iter_mut().zip(w).zip(data.x(i)) {
                *o += scale * (wv - xv);
            }
        }
        fn predict(&self, _w: &[f64], _x: &[f64]) -> f64 {
            0.0
        }
    }

    fn toy_data(n: usize, dim: usize) -> Dataset {
        let mut f = Matrix::zeros(n, dim);
        for i in 0..n {
            for j in 0..dim {
                f.row_mut(i)[j] = (i * dim + j) as f64 * 0.1;
            }
        }
        Dataset::new(f, vec![0.0; n], 1)
    }

    #[test]
    fn batch_grad_is_mean_of_sample_grads() {
        let m = Quad { dim: 3 };
        let d = toy_data(5, 3);
        let w = vec![1.0, -1.0, 0.5];
        let idx = [0, 2, 4];
        let mut got = vec![0.0; 3];
        m.batch_grad(&w, &d, &idx, &mut got);
        let mut want = vec![0.0; 3];
        for &i in &idx {
            m.sample_grad_accum(&w, &d, i, 1.0 / 3.0, &mut want);
        }
        for (g, wv) in got.iter().zip(&want) {
            assert!((g - wv).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let m = Quad { dim: 4 };
        let d = toy_data(200, 4);
        let w = vec![0.3; 4];
        let big: Vec<usize> = (0..200).collect();
        let mut par = vec![0.0; 4];
        m.batch_grad(&w, &d, &big, &mut par);
        let mut seq = vec![0.0; 4];
        for &i in &big {
            m.sample_grad_accum(&w, &d, i, 1.0 / 200.0, &mut seq);
        }
        for (a, b) in par.iter().zip(&seq) {
            assert!((a - b).abs() < 1e-10);
        }
        // Loss too.
        let lp = m.batch_loss(&w, &d, &big);
        let ls: f64 =
            big.iter().map(|&i| m.sample_loss(&w, &d, i)).sum::<f64>() / big.len() as f64;
        assert!((lp - ls).abs() < 1e-10);
    }

    #[test]
    fn empty_batch_is_zero() {
        let m = Quad { dim: 2 };
        let d = toy_data(3, 2);
        let mut g = vec![9.0; 2];
        m.batch_grad(&[0.0, 0.0], &d, &[], &mut g);
        assert_eq!(g, vec![0.0, 0.0]);
        assert_eq!(m.batch_loss(&[0.0, 0.0], &d, &[]), 0.0);
    }

    #[test]
    fn full_grad_zero_at_minimizer() {
        let m = Quad { dim: 2 };
        let d = toy_data(4, 2);
        // Minimizer of Σ½‖w−x_i‖² is the mean of x_i.
        let mean = fedprox_data::stats::feature_mean(&d);
        let mut g = vec![0.0; 2];
        m.full_grad(&mean, &d, &mut g);
        assert!(fedprox_tensor::vecops::norm(&g) < 1e-12);
    }
}
