//! The paper's two-layer CNN (Section 5): two 5x5 "same" convolutions
//! (32 then 64 channels), each followed by ReLU and 2x2 max-pooling, then
//! a final softmax (fully-connected) layer — the architecture of McMahan
//! et al.'s FedAvg paper. Forward and backward passes are hand-written on
//! top of `fedprox_tensor::conv`.
//!
//! The layer sizes are configurable so tests and Criterion benches can run
//! a scaled-down instance ([`CnnSpec::tiny`]) with identical code paths.

use crate::{GradScratch, LossModel};
use fedprox_data::Dataset;
use fedprox_tensor::activations::{
    cross_entropy_from_logits, cross_entropy_grad_from_logits, relu_backward_inplace,
    relu_inplace,
};
use fedprox_tensor::conv::{
    conv2d_backward, conv2d_forward, maxpool2d_backward, maxpool2d_forward, Conv2dSpec,
    ConvScratch, Pool2dSpec,
};
use fedprox_tensor::{kernel, vecops};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Static architecture description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnnSpec {
    /// Input channels (1 for grayscale).
    pub in_ch: usize,
    /// Input image side length (must be divisible by 4).
    pub side: usize,
    /// Channels of the first convolution.
    pub conv1_ch: usize,
    /// Channels of the second convolution.
    pub conv2_ch: usize,
    /// Square kernel edge (odd; the paper uses 5).
    pub kernel: usize,
    /// Output classes.
    pub classes: usize,
    /// Optional dense hidden layer (ReLU) between the flattened pooled
    /// features and the softmax — McMahan et al.'s original CNN uses 512.
    /// `None` matches the paper's minimal description ("a softmax layer
    /// at the end").
    pub fc_hidden: Option<usize>,
}

impl CnnSpec {
    /// The paper's architecture: 28x28x1 → 5x5x32 → pool → 5x5x64 → pool
    /// → softmax(10).
    pub fn paper() -> Self {
        CnnSpec {
            in_ch: 1,
            side: 28,
            conv1_ch: 32,
            conv2_ch: 64,
            kernel: 5,
            classes: 10,
            fc_hidden: None,
        }
    }

    /// McMahan et al.'s FedAvg CNN verbatim: like [`Self::paper`] plus a
    /// 512-unit ReLU dense layer before the softmax.
    pub fn paper_mcmahan() -> Self {
        CnnSpec { fc_hidden: Some(512), ..Self::paper() }
    }

    /// A scaled-down instance for fast tests (identical code paths).
    pub fn tiny() -> Self {
        CnnSpec {
            in_ch: 1,
            side: 8,
            conv1_ch: 4,
            conv2_ch: 6,
            kernel: 3,
            classes: 3,
            fc_hidden: None,
        }
    }

    /// Tiny instance *with* the dense hidden layer (tests both paths).
    pub fn tiny_hidden() -> Self {
        CnnSpec { fc_hidden: Some(10), ..Self::tiny() }
    }

    /// Moderate instance used by the Criterion meso-benches.
    pub fn small() -> Self {
        CnnSpec {
            in_ch: 1,
            side: 28,
            conv1_ch: 8,
            conv2_ch: 16,
            kernel: 5,
            classes: 10,
            fc_hidden: None,
        }
    }

    fn validate(&self) {
        assert!(self.side.is_multiple_of(4), "side must be divisible by 4 (two 2x2 pools)");
        assert!(!self.kernel.is_multiple_of(2), "kernel must be odd for same-padding");
        assert!(self.classes >= 2);
    }
}

/// The two-conv-layer CNN model.
#[derive(Debug, Clone)]
pub struct Cnn {
    spec: CnnSpec,
    conv1: Conv2dSpec,
    pool1: Pool2dSpec,
    conv2: Conv2dSpec,
    pool2: Pool2dSpec,
    fc_in: usize,
    /// Hidden dense width (0 = direct softmax head).
    hidden: usize,
}

/// [`GradScratch`]-resident workspace: the per-model buffers plus the
/// chunk accumulator, tagged with the spec they were sized for.
struct CnnWs {
    spec: CnnSpec,
    ws: Workspace,
    acc: Vec<f64>,
}

/// Reusable forward/backward buffers; one per worker thread in batch mode.
struct Workspace {
    s1: ConvScratch,
    s2: ConvScratch,
    conv1_out: Vec<f64>,
    conv1_pre: Vec<f64>,
    pool1_out: Vec<f64>,
    pool1_arg: Vec<usize>,
    conv2_out: Vec<f64>,
    conv2_pre: Vec<f64>,
    pool2_out: Vec<f64>,
    pool2_arg: Vec<usize>,
    logits: Vec<f64>,
    dlogits: Vec<f64>,
    pre_h: Vec<f64>,
    act_h: Vec<f64>,
    dact_h: Vec<f64>,
    dpool2: Vec<f64>,
    dconv2: Vec<f64>,
    dpool1: Vec<f64>,
    dconv1: Vec<f64>,
    dinput: Vec<f64>,
}

impl Cnn {
    /// Build a CNN from its spec.
    pub fn new(spec: CnnSpec) -> Self {
        spec.validate();
        let conv1 = Conv2dSpec::same(spec.in_ch, spec.conv1_ch, spec.kernel, spec.side, spec.side);
        let pool1 =
            Pool2dSpec { channels: spec.conv1_ch, height: spec.side, width: spec.side, size: 2 };
        let half = spec.side / 2;
        let conv2 = Conv2dSpec::same(spec.conv1_ch, spec.conv2_ch, spec.kernel, half, half);
        let pool2 = Pool2dSpec { channels: spec.conv2_ch, height: half, width: half, size: 2 };
        let quarter = spec.side / 4;
        let fc_in = spec.conv2_ch * quarter * quarter;
        let hidden = spec.fc_hidden.unwrap_or(0);
        Cnn { spec, conv1, pool1, conv2, pool2, fc_in, hidden }
    }

    /// The architecture spec.
    pub fn spec(&self) -> &CnnSpec {
        &self.spec
    }

    // Parameter layout offsets:
    // [w1 | b1 | w2 | b2 | (wh | bh when hidden > 0) | wo | bo].
    fn w1_end(&self) -> usize {
        self.conv1.weight_len()
    }
    fn b1_end(&self) -> usize {
        self.w1_end() + self.spec.conv1_ch
    }
    fn w2_end(&self) -> usize {
        self.b1_end() + self.conv2.weight_len()
    }
    fn b2_end(&self) -> usize {
        self.w2_end() + self.spec.conv2_ch
    }
    fn wh_end(&self) -> usize {
        self.b2_end() + self.hidden * self.fc_in
    }
    fn bh_end(&self) -> usize {
        self.wh_end() + self.hidden
    }
    /// Input width of the softmax head (hidden width, or the flattened
    /// pooled features when no hidden layer).
    fn head_in(&self) -> usize {
        if self.hidden > 0 {
            self.hidden
        } else {
            self.fc_in
        }
    }
    fn wfc_end(&self) -> usize {
        self.bh_end() + self.spec.classes * self.head_in()
    }

    fn workspace(&self) -> Workspace {
        Workspace {
            s1: ConvScratch::new(&self.conv1),
            s2: ConvScratch::new(&self.conv2),
            conv1_out: vec![0.0; self.conv1.output_len()],
            conv1_pre: vec![0.0; self.conv1.output_len()],
            pool1_out: vec![0.0; self.pool1.output_len()],
            pool1_arg: vec![0; self.pool1.output_len()],
            conv2_out: vec![0.0; self.conv2.output_len()],
            conv2_pre: vec![0.0; self.conv2.output_len()],
            pool2_out: vec![0.0; self.pool2.output_len()],
            pool2_arg: vec![0; self.pool2.output_len()],
            logits: vec![0.0; self.spec.classes],
            dlogits: vec![0.0; self.spec.classes],
            pre_h: vec![0.0; self.hidden],
            act_h: vec![0.0; self.hidden],
            dact_h: vec![0.0; self.hidden],
            dpool2: vec![0.0; self.pool2.output_len()],
            dconv2: vec![0.0; self.conv2.output_len()],
            dpool1: vec![0.0; self.pool1.output_len()],
            dconv1: vec![0.0; self.conv1.output_len()],
            dinput: vec![0.0; self.conv1.input_len()],
        }
    }

    /// Forward pass; leaves intermediates in `ws` for the backward pass.
    fn forward(&self, w: &[f64], x: &[f64], ws: &mut Workspace) {
        debug_assert_eq!(x.len(), self.conv1.input_len(), "cnn: input length");
        let w1 = &w[..self.w1_end()];
        let b1 = &w[self.w1_end()..self.b1_end()];
        let w2 = &w[self.b1_end()..self.w2_end()];
        let b2 = &w[self.w2_end()..self.b2_end()];
        let wh = &w[self.b2_end()..self.wh_end()];
        let bh = &w[self.wh_end()..self.bh_end()];
        let wo = &w[self.bh_end()..self.wfc_end()];
        let bo = &w[self.wfc_end()..];

        conv2d_forward(&self.conv1, x, w1, b1, &mut ws.conv1_out, &mut ws.s1);
        ws.conv1_pre.copy_from_slice(&ws.conv1_out);
        relu_inplace(&mut ws.conv1_out);
        maxpool2d_forward(&self.pool1, &ws.conv1_out, &mut ws.pool1_out, &mut ws.pool1_arg);

        conv2d_forward(&self.conv2, &ws.pool1_out, w2, b2, &mut ws.conv2_out, &mut ws.s2);
        ws.conv2_pre.copy_from_slice(&ws.conv2_out);
        relu_inplace(&mut ws.conv2_out);
        maxpool2d_forward(&self.pool2, &ws.conv2_out, &mut ws.pool2_out, &mut ws.pool2_arg);

        let head_in = self.head_in();
        let head_src: &[f64] = if self.hidden > 0 {
            kernel::matvec_into(wh, self.hidden, self.fc_in, &ws.pool2_out, &mut ws.pre_h);
            for (p, &b) in ws.pre_h.iter_mut().zip(bh) {
                *p += b;
            }
            ws.act_h.copy_from_slice(&ws.pre_h);
            relu_inplace(&mut ws.act_h);
            &ws.act_h
        } else {
            &ws.pool2_out
        };
        kernel::matvec_into(wo, self.spec.classes, head_in, head_src, &mut ws.logits);
        for (l, &b) in ws.logits.iter_mut().zip(bo) {
            *l += b;
        }
    }

    /// Backward pass for the sample whose forward intermediates are in
    /// `ws` (`x` is the same input the forward saw); accumulates
    /// `scale * ∇f_i` into `out`.
    fn backward(
        &self,
        w: &[f64],
        x: &[f64],
        target: usize,
        scale: f64,
        out: &mut [f64],
        ws: &mut Workspace,
    ) {
        cross_entropy_grad_from_logits(&ws.logits, target, &mut ws.dlogits);
        vecops::scale(scale, &mut ws.dlogits);

        let w2 = &w[self.b1_end()..self.w2_end()];
        let wh = &w[self.b2_end()..self.wh_end()];
        let wo = &w[self.bh_end()..self.wfc_end()];
        let head_in = self.head_in();

        // Dense head (optionally through the hidden ReLU layer).
        if self.hidden > 0 {
            // Output layer grads + backprop into the hidden activations.
            {
                let (_, rest) = out.split_at_mut(self.bh_end());
                let (dwo, dbo) = rest.split_at_mut(self.wfc_end() - self.bh_end());
                for c in 0..self.spec.classes {
                    let g = ws.dlogits[c];
                    dbo[c] += g;
                    if g != 0.0 {
                        vecops::axpy(g, &ws.act_h, &mut dwo[c * head_in..(c + 1) * head_in]);
                    }
                }
            }
            // dact_h[h] = Σ_c dlogits[c] * wo[c, h].
            kernel::matvec_t_into(wo, self.spec.classes, head_in, &ws.dlogits, &mut ws.dact_h);
            relu_backward_inplace(&mut ws.dact_h, &ws.pre_h);
            // Hidden layer grads + backprop into the pooled features.
            {
                let (front, rest) = out.split_at_mut(self.wh_end());
                let (_, dwh) = front.split_at_mut(self.b2_end());
                let dbh = &mut rest[..self.hidden];
                for (j, &g) in ws.dact_h.iter().enumerate() {
                    dbh[j] += g;
                    if g != 0.0 {
                        vecops::axpy(
                            g,
                            &ws.pool2_out,
                            &mut dwh[j * self.fc_in..(j + 1) * self.fc_in],
                        );
                    }
                }
            }
            kernel::matvec_t_into(wh, self.hidden, self.fc_in, &ws.dact_h, &mut ws.dpool2);
        } else {
            {
                let (_, rest) = out.split_at_mut(self.bh_end());
                let (dwo, dbo) = rest.split_at_mut(self.wfc_end() - self.bh_end());
                for c in 0..self.spec.classes {
                    let g = ws.dlogits[c];
                    dbo[c] += g;
                    if g != 0.0 {
                        vecops::axpy(g, &ws.pool2_out, &mut dwo[c * head_in..(c + 1) * head_in]);
                    }
                }
            }
            kernel::matvec_t_into(wo, self.spec.classes, head_in, &ws.dlogits, &mut ws.dpool2);
        }

        // Pool2 → ReLU → Conv2.
        maxpool2d_backward(&self.pool2, &ws.dpool2, &ws.pool2_arg, &mut ws.dconv2);
        relu_backward_inplace(&mut ws.dconv2, &ws.conv2_pre);
        {
            let (front, _) = out.split_at_mut(self.b2_end());
            let (front1, dw2b2) = front.split_at_mut(self.b1_end());
            let _ = front1;
            let (dw2, db2) = dw2b2.split_at_mut(self.conv2.weight_len());
            conv2d_backward(
                &self.conv2,
                &ws.pool1_out,
                &ws.dconv2,
                w2,
                dw2,
                db2,
                &mut ws.dpool1,
                &mut ws.s2,
            );
        }

        // Pool1 → ReLU → Conv1.
        maxpool2d_backward(&self.pool1, &ws.dpool1, &ws.pool1_arg, &mut ws.dconv1);
        relu_backward_inplace(&mut ws.dconv1, &ws.conv1_pre);
        {
            let w1 = &w[..self.w1_end()];
            let (dw1b1, _) = out.split_at_mut(self.b1_end());
            let (dw1, db1) = dw1b1.split_at_mut(self.conv1.weight_len());
            conv2d_backward(
                &self.conv1,
                x,
                &ws.dconv1,
                w1,
                dw1,
                db1,
                &mut ws.dinput,
                &mut ws.s1,
            );
        }
    }
}

impl LossModel for Cnn {
    fn dim(&self) -> usize {
        self.wfc_end() + self.spec.classes
    }

    fn init_params(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0; self.dim()];
        let k2 = self.spec.kernel * self.spec.kernel;
        let (w1e, b1e, w2e, b2e) =
            (self.w1_end(), self.b1_end(), self.w2_end(), self.b2_end());
        fedprox_tensor::init::he_normal(&mut rng, &mut w[..w1e], self.spec.in_ch * k2);
        fedprox_tensor::init::he_normal(&mut rng, &mut w[b1e..w2e], self.spec.conv1_ch * k2);
        if self.hidden > 0 {
            let whe = self.wh_end();
            fedprox_tensor::init::he_normal(&mut rng, &mut w[b2e..whe], self.fc_in);
        }
        let (bhe, wfce) = (self.bh_end(), self.wfc_end());
        fedprox_tensor::init::xavier_uniform(
            &mut rng,
            &mut w[bhe..wfce],
            self.head_in(),
            self.spec.classes,
        );
        w
    }

    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        let mut ws = self.workspace();
        self.forward(w, data.x(i), &mut ws);
        cross_entropy_from_logits(&ws.logits, data.class_of(i))
    }

    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        let mut ws = self.workspace();
        self.forward(w, data.x(i), &mut ws);
        self.backward(w, data.x(i), data.class_of(i), scale, out, &mut ws);
    }

    /// Batch gradient overridden to reuse one workspace per rayon worker
    /// instead of allocating scratch per sample — the training hot path.
    fn batch_grad(&self, w: &[f64], data: &Dataset, indices: &[usize], out: &mut [f64]) {
        assert_eq!(out.len(), self.dim(), "batch_grad: out length");
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= 4 {
            // Fixed chunks + ordered combination: keeps results independent
            // of thread scheduling and machine core count (see
            // LossModel::batch_loss docs).
            let partials: Vec<Vec<f64>> = indices
                .par_chunks(8)
                .map(|chunk_idx| {
                    let mut acc = vec![0.0; self.dim()];
                    let mut ws = self.workspace();
                    for &i in chunk_idx {
                        self.forward(w, data.x(i), &mut ws);
                        self.backward(w, data.x(i), data.class_of(i), scale, &mut acc, &mut ws);
                    }
                    acc
                })
                .collect();
            for p in &partials {
                vecops::add_assign(out, p);
            }
        } else {
            let mut ws = self.workspace();
            for &i in indices {
                self.forward(w, data.x(i), &mut ws);
                self.backward(w, data.x(i), data.class_of(i), scale, out, &mut ws);
            }
        }
    }

    /// Like [`Self::batch_grad`], but holding the workspace and chunk
    /// accumulator in `scratch` across calls: a local solve of τ steps
    /// builds the (large) conv workspace once instead of once per chunk.
    /// Bit-identical to `batch_grad` — the vendored rayon shim is
    /// sequential, and even under real threading the fixed chunks are
    /// combined in index order either way.
    fn batch_grad_in(
        &self,
        w: &[f64],
        data: &Dataset,
        indices: &[usize],
        out: &mut [f64],
        scratch: &mut GradScratch,
    ) {
        assert_eq!(out.len(), self.dim(), "batch_grad_in: out length");
        let spec = self.spec;
        let dim = self.dim();
        let cws = scratch.model_ws::<CnnWs, _, _>(
            || CnnWs { spec, ws: self.workspace(), acc: vec![0.0; dim] },
            |cws| cws.spec == spec,
        );
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= 4 {
            for chunk_idx in indices.chunks(8) {
                cws.acc.fill(0.0);
                for &i in chunk_idx {
                    self.forward(w, data.x(i), &mut cws.ws);
                    self.backward(
                        w,
                        data.x(i),
                        data.class_of(i),
                        scale,
                        &mut cws.acc,
                        &mut cws.ws,
                    );
                }
                vecops::add_assign(out, &cws.acc);
            }
        } else {
            for &i in indices {
                self.forward(w, data.x(i), &mut cws.ws);
                self.backward(w, data.x(i), data.class_of(i), scale, out, &mut cws.ws);
            }
        }
    }

    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        let mut ws = self.workspace();
        self.forward(w, x, &mut ws);
        let mut best = 0;
        for (c, &v) in ws.logits.iter().enumerate() {
            if v > ws.logits[best] {
                best = c;
            }
        }
        best as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_batch_grad;
    use fedprox_tensor::Matrix;

    fn tiny_data(n: usize, spec: &CnnSpec, seed: u64) -> Dataset {
        let dim = spec.in_ch * spec.side * spec.side;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64).abs()
        };
        let mut f = Matrix::zeros(n, dim);
        let mut y = Vec::new();
        for i in 0..n {
            for j in 0..dim {
                f.row_mut(i)[j] = next();
            }
            y.push((i % spec.classes) as f64);
        }
        Dataset::new(f, y, spec.classes)
    }

    #[test]
    fn paper_spec_dim_matches_hand_count() {
        let cnn = Cnn::new(CnnSpec::paper());
        // conv1: 32*1*25 + 32; conv2: 64*32*25 + 64; fc: 10*(64*7*7) + 10.
        let want = 32 * 25 + 32 + 64 * 32 * 25 + 64 + 10 * 64 * 49 + 10;
        assert_eq!(cnn.dim(), want);
    }

    #[test]
    fn gradient_matches_finite_difference_tiny() {
        let spec = CnnSpec::tiny();
        let cnn = Cnn::new(spec);
        let data = tiny_data(3, &spec, 5);
        let w = cnn.init_params(2);
        // Stride through coordinates to keep runtime reasonable; covers
        // every parameter block (conv1 w/b, conv2 w/b, fc w/b).
        let r = check_batch_grad(&cnn, &w, &data, &[0, 1, 2], 1e-5, 7);
        assert!(r.max_rel_err < 1e-3, "rel err {} at {}", r.max_rel_err, r.worst_coord);
    }

    #[test]
    fn gradient_matches_finite_difference_under_every_kernel() {
        // The fused im2col-GEMM conv path (and the tiled head matvecs) get
        // their own finite-difference check: the FD loss probes and the
        // analytic gradient both run through the selected kernel, so this
        // validates the fused forward *and* backward, not just the
        // reference implementation.
        use fedprox_tensor::kernel::{with_kernel, Kernel};
        let spec = CnnSpec::tiny();
        let cnn = Cnn::new(spec);
        let data = tiny_data(3, &spec, 5);
        let w = cnn.init_params(2);
        for k in [Kernel::Reference, Kernel::Tiled, Kernel::TiledParallel] {
            let r = with_kernel(k, || check_batch_grad(&cnn, &w, &data, &[0, 1, 2], 1e-5, 7));
            assert!(
                r.max_rel_err < 1e-3,
                "{k:?}: rel err {} at {}",
                r.max_rel_err,
                r.worst_coord
            );
        }
    }

    #[test]
    fn batch_grad_is_kernel_invariant_bitwise() {
        // Stronger than the FD check: the whole CNN batch gradient must be
        // *bitwise* identical whichever kernel computed it.
        use fedprox_tensor::kernel::{with_kernel, Kernel};
        let spec = CnnSpec::tiny_hidden();
        let cnn = Cnn::new(spec);
        let data = tiny_data(6, &spec, 11);
        let w = cnn.init_params(3);
        let idx: Vec<usize> = (0..6).collect();
        let grad_under = |k: Kernel| {
            with_kernel(k, || {
                let mut g = vec![0.0; cnn.dim()];
                cnn.batch_grad(&w, &data, &idx, &mut g);
                g
            })
        };
        let reference = grad_under(Kernel::Reference);
        for k in [Kernel::Tiled, Kernel::TiledParallel] {
            let got = grad_under(k);
            let same =
                got.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{k:?} batch gradient diverged from reference bitwise");
        }
    }

    #[test]
    fn mcmahan_spec_dim_matches_hand_count() {
        let cnn = Cnn::new(CnnSpec::paper_mcmahan());
        // paper() conv blocks + hidden 512: wh 512*3136 + bh 512,
        // head 10*512 + 10 instead of 10*3136 + 10.
        let want = 32 * 25 + 32 + 64 * 32 * 25 + 64 + 512 * 3136 + 512 + 10 * 512 + 10;
        assert_eq!(cnn.dim(), want);
    }

    #[test]
    fn gradient_matches_finite_difference_tiny_hidden() {
        // The dense-hidden path gets its own FD check.
        let spec = CnnSpec::tiny_hidden();
        let cnn = Cnn::new(spec);
        let data = tiny_data(3, &spec, 6);
        let mut w = cnn.init_params(2);
        // Nudge off ReLU kinks.
        for (j, v) in w.iter_mut().enumerate() {
            *v += 1e-3 * ((j % 13) as f64 - 6.0) / 6.0;
        }
        let r = check_batch_grad(&cnn, &w, &data, &[0, 1, 2], 1e-5, 7);
        assert!(r.max_rel_err < 1e-3, "rel err {} at {}", r.max_rel_err, r.worst_coord);
    }

    #[test]
    fn hidden_cnn_descends() {
        let spec = CnnSpec::tiny_hidden();
        let cnn = Cnn::new(spec);
        let data = tiny_data(9, &spec, 8);
        let mut w = cnn.init_params(1);
        let mut g = vec![0.0; cnn.dim()];
        let l0 = cnn.full_loss(&w, &data);
        for _ in 0..40 {
            cnn.full_grad(&w, &data, &mut g);
            vecops::axpy(-0.3, &g, &mut w);
        }
        assert!(cnn.full_loss(&w, &data) < l0, "hidden CNN failed to descend");
    }

    #[test]
    fn batch_grad_parallel_matches_sequential_samples() {
        let spec = CnnSpec::tiny();
        let cnn = Cnn::new(spec);
        let data = tiny_data(12, &spec, 9);
        let w = cnn.init_params(4);
        let idx: Vec<usize> = (0..12).collect();
        let mut par = vec![0.0; cnn.dim()];
        cnn.batch_grad(&w, &data, &idx, &mut par);
        let mut seq = vec![0.0; cnn.dim()];
        for &i in &idx {
            cnn.sample_grad_accum(&w, &data, i, 1.0 / 12.0, &mut seq);
        }
        let num = vecops::dist(&par, &seq);
        let den = vecops::norm(&seq).max(1e-12);
        assert!(num / den < 1e-10, "rel diff {}", num / den);
    }

    #[test]
    fn learns_to_separate_two_fixed_patterns() {
        // Two constant images (all-0.9 vs all-0.1) must be trivially
        // separable; a few GD steps should reach 100% accuracy.
        let spec = CnnSpec::tiny();
        let cnn = Cnn::new(spec);
        let dim = spec.in_ch * spec.side * spec.side;
        let mut f = Matrix::zeros(6, dim);
        let mut y = Vec::new();
        for i in 0..6 {
            let v = if i % 2 == 0 { 0.9 } else { 0.1 };
            for j in 0..dim {
                f.row_mut(i)[j] = v + 0.01 * ((i + j) % 3) as f64;
            }
            y.push((i % 2) as f64);
        }
        let data = Dataset::new(f, y, spec.classes);
        let mut w = cnn.init_params(1);
        let mut g = vec![0.0; cnn.dim()];
        for _ in 0..60 {
            cnn.full_grad(&w, &data, &mut g);
            vecops::axpy(-0.5, &g, &mut w);
        }
        assert_eq!(cnn.accuracy(&w, &data), 1.0, "loss={}", cnn.full_loss(&w, &data));
    }

    #[test]
    fn loss_at_init_close_to_log_classes() {
        let spec = CnnSpec::tiny();
        let cnn = Cnn::new(spec);
        let data = tiny_data(10, &spec, 3);
        let w = cnn.init_params(8);
        let l = cnn.full_loss(&w, &data);
        assert!((l - (spec.classes as f64).ln()).abs() < 1.0, "loss {l}");
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn rejects_bad_side() {
        let _ = Cnn::new(CnnSpec { side: 10, ..CnnSpec::tiny() });
    }
}
