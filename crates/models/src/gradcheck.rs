//! Finite-difference gradient verification, used by every model's tests.

use crate::LossModel;
use fedprox_data::Dataset;

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheck {
    /// Largest absolute difference between analytic and numeric partials.
    pub max_abs_err: f64,
    /// Largest relative difference (guarded against tiny denominators).
    pub max_rel_err: f64,
    /// Coordinate index where the maximum relative error occurred.
    pub worst_coord: usize,
}

/// Compare the analytic gradient of `Σ_{i∈indices} f_i(w) / |indices|`
/// against central finite differences with step `h`, probing every
/// `stride`-th coordinate (stride > 1 keeps CNN checks fast).
pub fn check_batch_grad<M: LossModel>(
    model: &M,
    w: &[f64],
    data: &Dataset,
    indices: &[usize],
    h: f64,
    stride: usize,
) -> GradCheck {
    assert!(stride >= 1, "stride must be >= 1");
    let mut analytic = vec![0.0; model.dim()];
    model.batch_grad(w, data, indices, &mut analytic);

    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    let mut worst = 0;
    let mut wp = w.to_vec();
    for j in (0..model.dim()).step_by(stride) {
        let orig = wp[j];
        wp[j] = orig + h;
        let lp = model.batch_loss(&wp, data, indices);
        wp[j] = orig - h;
        let lm = model.batch_loss(&wp, data, indices);
        wp[j] = orig;
        let fd = (lp - lm) / (2.0 * h);
        let abs = (fd - analytic[j]).abs();
        let rel = abs / fd.abs().max(analytic[j].abs()).max(1.0);
        if abs > max_abs {
            max_abs = abs;
        }
        if rel > max_rel {
            max_rel = rel;
            worst = j;
        }
    }
    GradCheck { max_abs_err: max_abs, max_rel_err: max_rel, worst_coord: worst }
}

/// Assert helper: panics with a descriptive message when the check fails.
pub fn assert_grad_ok<M: LossModel>(
    model: &M,
    w: &[f64],
    data: &Dataset,
    indices: &[usize],
    tol: f64,
) {
    let r = check_batch_grad(model, w, data, indices, 1e-6, 1);
    assert!(
        r.max_rel_err < tol,
        "gradient check failed: rel err {} (abs {}) at coord {}",
        r.max_rel_err,
        r.max_abs_err,
        r.worst_coord
    );
}
