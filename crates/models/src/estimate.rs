//! Empirical estimation of the problem constants of Assumption 1.
//!
//! Fig. 1 of the paper notes that L and λ "can be estimated by sampling
//! real-world dataset". This module does exactly that:
//!
//! * **L** (per-sample smoothness): the largest observed Lipschitz ratio
//!   `‖∇f_i(w) − ∇f_i(w′)‖ / ‖w − w′‖` over sampled points and samples,
//! * **λ** (bounded non-convexity): the largest observed violation of
//!   convexity of `F_n`, via the secant condition
//!   `⟨∇F(w) − ∇F(w′), w − w′⟩ ≥ −λ ‖w − w′‖²`,
//! * an *empirical* curvature scale (`typical_curvature`) — the mean
//!   rather than max ratio — which is what the experiment harness feeds
//!   into `η = 1/(βL)` (worst-case L makes steps needlessly small; see
//!   the fig2 binary's discussion).

use crate::LossModel;
use fedprox_data::synthetic::device_rng;
use fedprox_data::Dataset;
use fedprox_tensor::vecops;
use rand::Rng;

/// Result of constant estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantEstimates {
    /// Max observed per-sample Lipschitz ratio (→ L).
    pub smoothness_max: f64,
    /// Mean observed ratio (practical curvature scale).
    pub smoothness_typical: f64,
    /// Max observed non-convexity (→ λ; 0 for convex losses up to noise).
    pub nonconvexity: f64,
    /// Number of probe pairs used.
    pub probes: usize,
}

/// Configuration of the probing procedure.
#[derive(Debug, Clone, Copy)]
pub struct EstimateConfig {
    /// Probe pairs to draw.
    pub probes: usize,
    /// Radius of the probe ball around the reference point.
    pub radius: f64,
    /// Samples per probe used for the per-sample Lipschitz ratio.
    pub samples_per_probe: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig { probes: 32, radius: 0.5, samples_per_probe: 4, seed: 0 }
    }
}

/// Estimate L and λ by sampling gradient differences around `w_ref`.
pub fn estimate_constants<M: LossModel>(
    model: &M,
    data: &Dataset,
    w_ref: &[f64],
    cfg: &EstimateConfig,
) -> ConstantEstimates {
    assert!(!data.is_empty(), "estimate_constants: empty dataset");
    assert_eq!(w_ref.len(), model.dim());
    let dim = model.dim();
    let mut rng = device_rng(cfg.seed, 0xE57);

    let mut max_ratio = 0.0f64;
    let mut sum_ratio = 0.0f64;
    let mut count = 0usize;
    let mut nonconvexity = 0.0f64;

    let mut w1 = vec![0.0; dim];
    let mut w2 = vec![0.0; dim];
    let mut g1 = vec![0.0; dim];
    let mut g2 = vec![0.0; dim];

    for _ in 0..cfg.probes {
        // Two random points in the ball around w_ref.
        for (a, (b, &r)) in w1.iter_mut().zip(w2.iter_mut().zip(w_ref)) {
            *a = r + rng.gen_range(-cfg.radius..=cfg.radius);
            *b = r + rng.gen_range(-cfg.radius..=cfg.radius);
        }
        let dw = vecops::dist(&w1, &w2);
        if dw < 1e-12 {
            continue;
        }

        // Per-sample Lipschitz ratios → L.
        for _ in 0..cfg.samples_per_probe {
            let i = rng.gen_range(0..data.len());
            g1.fill(0.0);
            g2.fill(0.0);
            model.sample_grad_accum(&w1, data, i, 1.0, &mut g1);
            model.sample_grad_accum(&w2, data, i, 1.0, &mut g2);
            let ratio = vecops::dist(&g1, &g2) / dw;
            if ratio.is_finite() {
                max_ratio = max_ratio.max(ratio);
                sum_ratio += ratio;
                count += 1;
            }
        }

        // Full-batch secant condition → λ.
        model.full_grad(&w1, data, &mut g1);
        model.full_grad(&w2, data, &mut g2);
        let mut diff_g = vec![0.0; dim];
        vecops::sub_into(&g1, &g2, &mut diff_g);
        let mut diff_w = vec![0.0; dim];
        vecops::sub_into(&w1, &w2, &mut diff_w);
        let secant = vecops::dot(&diff_g, &diff_w) / (dw * dw);
        if secant < 0.0 {
            nonconvexity = nonconvexity.max(-secant);
        }
    }

    ConstantEstimates {
        smoothness_max: max_ratio,
        smoothness_typical: if count > 0 { sum_ratio / count as f64 } else { 0.0 },
        nonconvexity,
        probes: cfg.probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearRegression, Mlp, MultinomialLogistic};
    use fedprox_tensor::Matrix;

    fn data(n: usize, dim: usize, classes: usize) -> Dataset {
        let mut f = Matrix::zeros(n, dim);
        let mut y = Vec::with_capacity(n);
        let mut state = 0x1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for i in 0..n {
            for j in 0..dim {
                f.row_mut(i)[j] = next();
            }
            y.push((i % classes.max(1)) as f64);
        }
        Dataset::new(f, y, classes)
    }

    #[test]
    fn linreg_smoothness_matches_max_row_norm_sq() {
        // For ½(xᵀw − y)², the per-sample Hessian is x xᵀ: L_i = ‖x_i‖².
        let d = data(30, 4, 0);
        let model = LinearRegression::new(4);
        let w = vec![0.0; 4];
        let est = estimate_constants(&model, &d, &w, &EstimateConfig::default());
        let want: f64 =
            (0..d.len()).map(|i| vecops::norm_sq(d.x(i))).fold(0.0, f64::max);
        // The sampled max is a lower bound on the true max and should be
        // within the right ballpark.
        assert!(est.smoothness_max <= want + 1e-9);
        assert!(est.smoothness_max > 0.3 * want, "{} vs {want}", est.smoothness_max);
        // Least squares is convex: λ ≈ 0.
        assert!(est.nonconvexity < 1e-9, "lambda {}", est.nonconvexity);
    }

    #[test]
    fn logistic_is_convex_and_bounded_curvature() {
        let d = data(20, 3, 4);
        let model = MultinomialLogistic::new(3, 4);
        let w = model.init_params(1);
        let est = estimate_constants(&model, &d, &w, &EstimateConfig::default());
        assert!(est.nonconvexity < 1e-6, "lambda {}", est.nonconvexity);
        assert!(est.smoothness_max > 0.0);
        assert!(est.smoothness_typical <= est.smoothness_max);
    }

    #[test]
    fn mlp_exhibits_nonconvexity() {
        let d = data(16, 3, 2);
        let model = Mlp::new(3, 8, 2);
        let w = model.init_params(3);
        let cfg = EstimateConfig { probes: 64, radius: 1.5, ..Default::default() };
        let est = estimate_constants(&model, &d, &w, &cfg);
        assert!(est.nonconvexity > 1e-6, "MLP should show negative curvature somewhere");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = data(10, 3, 2);
        let model = MultinomialLogistic::new(3, 2);
        let w = model.init_params(0);
        let a = estimate_constants(&model, &d, &w, &EstimateConfig::default());
        let b = estimate_constants(&model, &d, &w, &EstimateConfig::default());
        assert_eq!(a, b);
    }
}
