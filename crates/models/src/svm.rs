//! Binary SVM with a smoothed hinge loss.
//!
//! The paper's System Model cites the hinge loss
//! `f_i(w) = max{0, 1 − y_i x_iᵀ w}`, but its Assumption 1 requires
//! per-sample L-smoothness, which the plain hinge violates at the kink.
//! We therefore use the standard quadratically-smoothed hinge of width
//! `gamma` (gradient is `1/gamma`-Lipschitz), which satisfies the paper's
//! assumptions while coinciding with the hinge outside the smoothing band.

use crate::LossModel;
use fedprox_data::Dataset;
use fedprox_tensor::activations::{smooth_hinge, smooth_hinge_deriv};
use fedprox_tensor::vecops;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Smoothed-hinge binary SVM. Labels may be stored either as ±1 values
/// (regression-style dataset) or as classes {0, 1}; both are accepted.
#[derive(Debug, Clone)]
pub struct SmoothedSvm {
    features: usize,
    /// Smoothing width (L = 1/gamma per unit feature norm).
    pub gamma: f64,
    /// L2 penalty (`+ l2/2 ‖w‖²` per sample); the usual SVM margin term.
    pub l2: f64,
}

impl SmoothedSvm {
    /// SVM over `features` inputs with smoothing width `gamma`.
    pub fn new(features: usize, gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        SmoothedSvm { features, gamma, l2: 0.0 }
    }

    /// Add L2 regularisation.
    pub fn with_l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0);
        self.l2 = l2;
        self
    }

    /// Convert a stored label to ±1.
    fn signed(y: f64) -> f64 {
        // +1 labels arrive as exactly 1.0 (class 1) or +1.0 (regression
        // style); everything else (class 0 or −1.0) maps to −1.
        if y > 0.5 {
            1.0
        } else {
            -1.0
        }
    }
}

impl LossModel for SmoothedSvm {
    fn dim(&self) -> usize {
        self.features
    }

    fn init_params(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0; self.dim()];
        fedprox_tensor::init::uniform(&mut rng, &mut w, 0.01);
        w
    }

    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        let y = Self::signed(data.y(i));
        let margin = y * vecops::dot(w, data.x(i));
        let reg = if self.l2 > 0.0 { self.l2 / 2.0 * vecops::norm_sq(w) } else { 0.0 };
        smooth_hinge(margin, self.gamma) + reg
    }

    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        let x = data.x(i);
        let y = Self::signed(data.y(i));
        let margin = y * vecops::dot(w, x);
        let d = smooth_hinge_deriv(margin, self.gamma); // d loss / d margin
        if d != 0.0 {
            vecops::axpy(scale * d * y, x, out);
        }
        if self.l2 > 0.0 {
            vecops::axpy(scale * self.l2, w, out);
        }
    }

    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        // Returns the class convention used by 0/1-labelled datasets.
        if vecops::dot(w, x) >= 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_ok;
    use fedprox_tensor::Matrix;

    /// Linearly separable two-cluster data, labels in {0, 1}.
    fn separable() -> Dataset {
        let pts = [
            ([2.0, 2.0], 1.0),
            ([3.0, 1.5], 1.0),
            ([2.5, 3.0], 1.0),
            ([-2.0, -1.0], 0.0),
            ([-1.5, -2.5], 0.0),
            ([-3.0, -2.0], 0.0),
        ];
        let mut f = Matrix::zeros(6, 2);
        let mut y = Vec::new();
        for (i, (x, lab)) in pts.iter().enumerate() {
            f.row_mut(i).copy_from_slice(x);
            y.push(*lab);
        }
        Dataset::new(f, y, 2)
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = separable();
        let model = SmoothedSvm::new(2, 0.5).with_l2(0.05);
        // Check at several points, including near the smoothing band.
        for seed in [1, 2, 3] {
            let w = model.init_params(seed);
            assert_grad_ok(&model, &w, &d, &[0, 1, 2, 3, 4, 5], 1e-4);
        }
        assert_grad_ok(&model, &[0.3, 0.3], &d, &[0, 3], 1e-4);
    }

    #[test]
    fn learns_separable_data() {
        let d = separable();
        let model = SmoothedSvm::new(2, 0.5).with_l2(0.01);
        let mut w = model.init_params(1);
        let mut g = vec![0.0; 2];
        for _ in 0..2000 {
            model.full_grad(&w, &d, &mut g);
            vecops::axpy(-0.2, &g, &mut w);
        }
        assert_eq!(model.accuracy(&w, &d), 1.0, "w={w:?}");
    }

    #[test]
    fn loss_zero_beyond_margin() {
        let model = SmoothedSvm::new(2, 0.5);
        let mut f = Matrix::zeros(1, 2);
        f.row_mut(0).copy_from_slice(&[10.0, 0.0]);
        let d = Dataset::new(f, vec![1.0], 2);
        // w gives margin 10 ≥ 1 → zero loss, zero grad.
        let w = vec![1.0, 0.0];
        assert_eq!(model.sample_loss(&w, &d, 0), 0.0);
        let mut g = vec![0.0; 2];
        model.sample_grad_accum(&w, &d, 0, 1.0, &mut g);
        assert_eq!(g, vec![0.0, 0.0]);
    }

    #[test]
    fn accepts_plus_minus_one_labels() {
        let mut f = Matrix::zeros(2, 1);
        f.row_mut(0)[0] = 1.0;
        f.row_mut(1)[0] = -1.0;
        let d = Dataset::new(f, vec![1.0, -1.0], 0); // regression-style ±1
        let model = SmoothedSvm::new(1, 0.5);
        let w = vec![2.0];
        // Both samples have margin 2 → zero loss.
        assert_eq!(model.full_loss(&w, &d), 0.0);
    }
}
