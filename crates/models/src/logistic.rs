//! Multinomial logistic regression — the paper's convex model
//! (used on Synthetic, MNIST and Fashion-MNIST with 100 devices).
//!
//! Parameters are a `classes x features` weight matrix plus a bias vector,
//! flattened row-major as `[W; b]`. The per-sample loss is cross-entropy
//! over the softmax of the logits, optionally with an L2 term.

use crate::{GradScratch, LossModel};
use fedprox_data::Dataset;
use fedprox_tensor::activations::{cross_entropy_from_logits, cross_entropy_grad_from_logits};
use fedprox_tensor::{kernel, vecops};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Multinomial (softmax) logistic regression.
#[derive(Debug, Clone)]
pub struct MultinomialLogistic {
    features: usize,
    classes: usize,
    /// L2 penalty coefficient (applied to weights only, not biases).
    pub l2: f64,
}

impl MultinomialLogistic {
    /// Model over `features` inputs and `classes` outputs.
    pub fn new(features: usize, classes: usize) -> Self {
        assert!(classes >= 2, "need at least two classes");
        MultinomialLogistic { features, classes, l2: 0.0 }
    }

    /// Add L2 regularisation on the weights.
    pub fn with_l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0);
        self.l2 = l2;
        self
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    #[inline]
    fn weights_len(&self) -> usize {
        self.classes * self.features
    }

    /// Conservative smoothness bound for the per-sample softmax
    /// cross-entropy over `data`: the Hessian of CE w.r.t. the logits is
    /// bounded by ½·I, so `L ≤ max_i (‖x_i‖² + 1) / 2 + l2` (the +1 covers
    /// the bias coordinate). Used by the experiment harness to set the
    /// paper's step size η = 1/(βL) from data rather than by hand.
    pub fn smoothness_bound(&self, data: &Dataset) -> f64 {
        let mut max_sq = 0.0f64;
        for i in 0..data.len() {
            max_sq = max_sq.max(vecops::norm_sq(data.x(i)));
        }
        (max_sq + 1.0) / 2.0 + self.l2
    }

    /// Compute the logits `W x + b` into `out` (len = classes).
    pub fn logits(&self, w: &[f64], x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(w.len(), self.dim());
        debug_assert_eq!(x.len(), self.features);
        debug_assert_eq!(out.len(), self.classes);
        let wl = self.weights_len();
        kernel::matvec_into(&w[..wl], self.classes, self.features, x, out);
        for (o, &b) in out.iter_mut().zip(&w[wl..]) {
            *o += b;
        }
    }

    /// Core of [`LossModel::sample_grad_accum`] with caller-held buffers
    /// (`logits`/`dlogits`, len = classes). Runs the exact operations of
    /// the allocating path in the same order — only buffer provenance
    /// differs.
    #[allow(clippy::too_many_arguments)]
    fn grad_into(
        &self,
        w: &[f64],
        x: &[f64],
        class: usize,
        scale: f64,
        out: &mut [f64],
        logits: &mut [f64],
        dlogits: &mut [f64],
    ) {
        self.logits(w, x, logits);
        cross_entropy_grad_from_logits(logits, class, dlogits);
        let wl = self.weights_len();
        let (dw, db) = out.split_at_mut(wl);
        for c in 0..self.classes {
            let g = scale * dlogits[c];
            if g != 0.0 {
                vecops::axpy(g, x, &mut dw[c * self.features..(c + 1) * self.features]);
            }
            db[c] += g;
        }
        if self.l2 > 0.0 {
            vecops::axpy(scale * self.l2, &w[..wl], dw);
        }
    }
}

/// Reusable forward/backward buffers for [`MultinomialLogistic`].
struct LogisticWs {
    logits: Vec<f64>,
    dlogits: Vec<f64>,
    /// Chunk accumulator for the fixed-chunk batch reduction.
    acc: Vec<f64>,
}

impl LossModel for MultinomialLogistic {
    fn dim(&self) -> usize {
        self.classes * (self.features + 1)
    }

    fn init_params(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = vec![0.0; self.dim()];
        let wl = self.weights_len();
        fedprox_tensor::init::xavier_uniform(&mut rng, &mut w[..wl], self.features, self.classes);
        // Biases start at zero.
        w
    }

    fn sample_loss(&self, w: &[f64], data: &Dataset, i: usize) -> f64 {
        let mut logits = vec![0.0; self.classes];
        self.logits(w, data.x(i), &mut logits);
        let ce = cross_entropy_from_logits(&logits, data.class_of(i));
        if self.l2 > 0.0 {
            ce + self.l2 / 2.0 * vecops::norm_sq(&w[..self.weights_len()])
        } else {
            ce
        }
    }

    fn sample_grad_accum(&self, w: &[f64], data: &Dataset, i: usize, scale: f64, out: &mut [f64]) {
        let mut logits = vec![0.0; self.classes];
        let mut dlogits = vec![0.0; self.classes];
        self.grad_into(w, data.x(i), data.class_of(i), scale, out, &mut logits, &mut dlogits);
    }

    fn batch_grad_in(
        &self,
        w: &[f64],
        data: &Dataset,
        indices: &[usize],
        out: &mut [f64],
        scratch: &mut GradScratch,
    ) {
        assert_eq!(out.len(), self.dim(), "batch_grad_in: out length");
        let (classes, dim) = (self.classes, self.dim());
        let ws = scratch.model_ws::<LogisticWs, _, _>(
            || LogisticWs {
                logits: vec![0.0; classes],
                dlogits: vec![0.0; classes],
                acc: vec![0.0; dim],
            },
            |ws| ws.logits.len() == classes && ws.acc.len() == dim,
        );
        out.fill(0.0);
        if indices.is_empty() {
            return;
        }
        let scale = 1.0 / indices.len() as f64;
        if indices.len() >= crate::BATCH_PAR_THRESHOLD {
            for chunk in indices.chunks(crate::BATCH_CHUNK) {
                ws.acc.fill(0.0);
                for &i in chunk {
                    self.grad_into(
                        w,
                        data.x(i),
                        data.class_of(i),
                        scale,
                        &mut ws.acc,
                        &mut ws.logits,
                        &mut ws.dlogits,
                    );
                }
                vecops::add_assign(out, &ws.acc);
            }
        } else {
            for &i in indices {
                self.grad_into(
                    w,
                    data.x(i),
                    data.class_of(i),
                    scale,
                    out,
                    &mut ws.logits,
                    &mut ws.dlogits,
                );
            }
        }
    }

    fn predict(&self, w: &[f64], x: &[f64]) -> f64 {
        let mut logits = vec![0.0; self.classes];
        self.logits(w, x, &mut logits);
        let mut best = 0;
        for (c, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = c;
            }
        }
        best as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_grad_ok;
    use fedprox_tensor::Matrix;

    /// Three well-separated Gaussian-ish clusters in 2-D.
    fn clusters() -> Dataset {
        let centers = [[4.0, 0.0], [-2.0, 3.5], [-2.0, -3.5]];
        let mut f = Matrix::zeros(30, 2);
        let mut y = Vec::new();
        for i in 0..30 {
            let c = i % 3;
            let jitter = [((i * 7 % 5) as f64 - 2.0) * 0.2, ((i * 13 % 5) as f64 - 2.0) * 0.2];
            f.row_mut(i)[0] = centers[c][0] + jitter[0];
            f.row_mut(i)[1] = centers[c][1] + jitter[1];
            y.push(c as f64);
        }
        Dataset::new(f, y, 3)
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = clusters();
        for l2 in [0.0, 0.1] {
            let model = MultinomialLogistic::new(2, 3).with_l2(l2);
            let w = model.init_params(7);
            assert_grad_ok(&model, &w, &d, &[0, 1, 2, 5, 10], 1e-4);
        }
    }

    #[test]
    fn dim_layout() {
        let m = MultinomialLogistic::new(5, 3);
        assert_eq!(m.dim(), 3 * 6);
        assert_eq!(m.classes(), 3);
        assert_eq!(m.features(), 5);
    }

    #[test]
    fn learns_clusters() {
        let d = clusters();
        let model = MultinomialLogistic::new(2, 3);
        let mut w = model.init_params(1);
        let mut g = vec![0.0; model.dim()];
        for _ in 0..800 {
            model.full_grad(&w, &d, &mut g);
            vecops::axpy(-0.5, &g, &mut w);
        }
        assert_eq!(model.accuracy(&w, &d), 1.0);
        assert!(model.full_loss(&w, &d) < 0.2);
    }

    #[test]
    fn loss_at_zero_params_is_log_classes() {
        let d = clusters();
        let model = MultinomialLogistic::new(2, 3);
        let w = vec![0.0; model.dim()];
        assert!((model.full_loss(&w, &d) - 3.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn grad_bias_components_sum_to_zero_per_sample() {
        // Softmax gradient over logits sums to zero, so bias grads do too.
        let d = clusters();
        let model = MultinomialLogistic::new(2, 3);
        let w = model.init_params(3);
        let mut g = vec![0.0; model.dim()];
        model.sample_grad_accum(&w, &d, 0, 1.0, &mut g);
        let bias_sum: f64 = g[model.weights_len()..].iter().sum();
        assert!(bias_sum.abs() < 1e-12);
    }

    #[test]
    fn predict_returns_valid_class() {
        let d = clusters();
        let model = MultinomialLogistic::new(2, 3);
        let w = model.init_params(5);
        for i in 0..d.len() {
            let p = model.predict(&w, d.x(i));
            assert!((0.0..3.0).contains(&p) && p.fract() == 0.0);
        }
    }
}
