//! Property-based tests shared by all loss models: gradient consistency
//! with finite differences at random points, batch linearity, and
//! prediction sanity.

use fedprox_data::Dataset;
use fedprox_models::gradcheck::check_batch_grad;
use fedprox_models::{Cnn, CnnSpec, LinearRegression, LossModel, Mlp, MultinomialLogistic, SmoothedSvm};
use fedprox_tensor::{vecops, Matrix};
use proptest::prelude::*;

fn class_data(n: usize, dim: usize, classes: usize, seed: u64) -> Dataset {
    let mut f = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    for i in 0..n {
        for j in 0..dim {
            f.row_mut(i)[j] = next();
        }
        y.push((i % classes) as f64);
    }
    Dataset::new(f, y, classes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn logistic_gradcheck_random_points(seed in any::<u64>()) {
        let data = class_data(8, 4, 3, seed);
        let model = MultinomialLogistic::new(4, 3).with_l2(0.05);
        let w = model.init_params(seed);
        let r = check_batch_grad(&model, &w, &data, &[0, 2, 5], 1e-6, 1);
        prop_assert!(r.max_rel_err < 1e-4, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn linreg_gradcheck_random_points(seed in any::<u64>()) {
        let data = class_data(6, 5, 2, seed); // labels 0/1 used as targets
        let model = LinearRegression::with_intercept(5).with_l2(0.01);
        let w = model.init_params(seed);
        let r = check_batch_grad(&model, &w, &data, &[0, 1, 2, 3], 1e-6, 1);
        prop_assert!(r.max_rel_err < 1e-5, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn svm_gradcheck_random_points(seed in any::<u64>()) {
        let data = class_data(6, 4, 2, seed);
        let model = SmoothedSvm::new(4, 0.4).with_l2(0.02);
        // Random small w avoids landing exactly on the smoothing joints.
        let mut w = model.init_params(seed);
        for (i, v) in w.iter_mut().enumerate() {
            *v += 0.01 * (i as f64 + 1.0);
        }
        let r = check_batch_grad(&model, &w, &data, &[0, 1, 4, 5], 1e-6, 1);
        prop_assert!(r.max_rel_err < 1e-4, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn mlp_gradcheck_random_points(seed in any::<u64>()) {
        let data = class_data(5, 3, 2, seed);
        let model = Mlp::new(3, 6, 2);
        let mut w = model.init_params(seed);
        // Nudge away from ReLU kinks.
        for (i, v) in w.iter_mut().enumerate() {
            *v += 0.03 + 1e-3 * (i as f64).sin();
        }
        let r = check_batch_grad(&model, &w, &data, &[0, 1, 2, 3, 4], 1e-6, 1);
        prop_assert!(r.max_rel_err < 1e-3, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn batch_grad_is_convex_combination_of_sample_grads(
        seed in any::<u64>(),
        pick in proptest::collection::vec(0usize..8, 1..6),
    ) {
        let data = class_data(8, 4, 3, seed);
        let model = MultinomialLogistic::new(4, 3);
        let w = model.init_params(seed ^ 1);
        let mut batch = vec![0.0; model.dim()];
        model.batch_grad(&w, &data, &pick, &mut batch);
        let mut manual = vec![0.0; model.dim()];
        for &i in &pick {
            model.sample_grad_accum(&w, &data, i, 1.0 / pick.len() as f64, &mut manual);
        }
        prop_assert!(vecops::dist(&batch, &manual) < 1e-12);
    }

    #[test]
    fn predictions_are_valid_classes(seed in any::<u64>()) {
        let data = class_data(10, 4, 5, seed);
        let model = MultinomialLogistic::new(4, 5);
        let w = model.init_params(seed);
        for i in 0..data.len() {
            let p = model.predict(&w, data.x(i));
            prop_assert!((0.0..5.0).contains(&p) && p.fract() == 0.0);
        }
        let acc = model.accuracy(&w, &data);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn svm_gradcheck_across_smoothing_values(seed in any::<u64>()) {
        // The smoothed hinge interpolates between the hard hinge (γ → 0)
        // and a quadratic (large γ); the analytic gradient must agree with
        // finite differences at every smoothing level, not just the
        // default. Sharper γ gets a looser tolerance: more curvature near
        // the joints amplifies FD truncation error.
        let data = class_data(6, 4, 2, seed);
        for &gamma in &[0.1, 0.5, 1.0, 2.0] {
            let model = SmoothedSvm::new(4, gamma).with_l2(0.02);
            let mut w = model.init_params(seed);
            // Random small offsets avoid landing exactly on the joints.
            for (i, v) in w.iter_mut().enumerate() {
                *v += 0.013 * (i as f64 + 1.0);
            }
            let r = check_batch_grad(&model, &w, &data, &[0, 1, 4, 5], 1e-6, 1);
            let tol = if gamma < 0.3 { 1e-3 } else { 1e-4 };
            prop_assert!(r.max_rel_err < tol, "gamma={} rel err {}", gamma, r.max_rel_err);
        }
    }

    #[test]
    fn loss_decreases_along_negative_gradient(seed in any::<u64>()) {
        // First-order sanity: a tiny step along −∇F reduces F.
        let data = class_data(12, 4, 3, seed);
        let model = MultinomialLogistic::new(4, 3);
        let w = model.init_params(seed ^ 2);
        let mut g = vec![0.0; model.dim()];
        model.full_grad(&w, &data, &mut g);
        let gnorm = vecops::norm(&g);
        prop_assume!(gnorm > 1e-8);
        let mut w2 = w.clone();
        vecops::axpy(-1e-5 / gnorm, &g, &mut w2);
        prop_assert!(model.full_loss(&w2, &data) <= model.full_loss(&w, &data) + 1e-12);
    }
}

// The CNN gradcheck walks conv → ReLU → maxpool → conv → ReLU → maxpool →
// linear → softmax end to end, so each case is much heavier than the flat
// models above — fewer proptest cases keep the suite fast.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cnn_gradcheck_random_points(seed in any::<u64>()) {
        let spec = CnnSpec::tiny();
        let model = Cnn::new(spec);
        let data = class_data(3, 64, 3, seed); // 1×8×8 images, 3 classes
        let mut w = model.init_params(seed);
        // Nudge away from ReLU kinks; the random pixel data already makes
        // maxpool argmax ties measure-zero.
        for (i, v) in w.iter_mut().enumerate() {
            *v += 0.02 + 1e-3 * (i as f64).sin();
        }
        let r = check_batch_grad(&model, &w, &data, &[0, 1, 2], 1e-5, 7);
        prop_assert!(r.max_rel_err < 1e-3, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn cnn_with_hidden_fc_gradcheck(seed in any::<u64>()) {
        // The optional hidden fully-connected layer adds one more ReLU —
        // cover that variant too.
        let model = Cnn::new(CnnSpec::tiny_hidden());
        let data = class_data(2, 64, 3, seed);
        let mut w = model.init_params(seed ^ 0xFC);
        for (i, v) in w.iter_mut().enumerate() {
            *v += 0.02 + 1e-3 * (i as f64).cos();
        }
        let r = check_batch_grad(&model, &w, &data, &[0, 1], 1e-5, 11);
        prop_assert!(r.max_rel_err < 1e-3, "rel err {}", r.max_rel_err);
    }
}
