//! The benchmark registry: micro-benchmarks over the tensor kernels and
//! the optim inner loop, plus macro-benchmarks timing one full FedProxVR
//! round per model (logistic, MLP, CNN) on small synthetic data.
//!
//! Everything is seeded and fixed-size; the only run-to-run variation is
//! wall time. Iteration budgets are declared per bench (full and quick),
//! never calibrated, so CI can require two runs to execute identical work.

use crate::report::{BenchEntry, BenchReport, SCHEMA};
use crate::timer::{self, Timing};
use fedprox_core::algorithm::Algorithm;
use fedprox_core::config::FedConfig;
use fedprox_core::runner::run_round_sequential;
use fedprox_core::server::{aggregate, weights_from_sizes};
use fedprox_core::device::Device;
use fedprox_data::synthetic::{generate, SyntheticConfig};
use fedprox_data::Dataset;
use fedprox_models::{Cnn, CnnSpec, LossModel, Mlp, MultinomialLogistic};
use fedprox_optim::estimator::{Estimator, EstimatorKind};
use fedprox_optim::prox::{L1Prox, Proximal, QuadraticProx};
use fedprox_optim::solver::{IterateChoice, LocalSolver, LocalSolverConfig};
use fedprox_optim::StepSize;
use fedprox_tensor::activations::softmax_inplace;
use fedprox_tensor::conv::{
    conv2d_backward, conv2d_forward, im2col, Conv2dSpec, ConvScratch,
};
use fedprox_tensor::kernel;
use fedprox_tensor::matrix::{matmul_into, matmul_nt_into, matmul_tn_into};
use fedprox_tensor::{vecops, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// One registered benchmark: identity plus a ready-to-run closure with
/// all state captured (setup happens at construction, outside timing).
pub struct Bench {
    /// Unique id `<op>/<shape>`.
    pub id: String,
    /// Operation name.
    pub op: &'static str,
    /// Shape/configuration token.
    pub shape: &'static str,
    /// `"micro"` or `"macro"`.
    pub kind: &'static str,
    /// Budget for a full run.
    pub full: Timing,
    /// Budget for `--quick`.
    pub quick: Timing,
    /// The timed body.
    pub run: Box<dyn FnMut()>,
}

impl Bench {
    fn new(
        op: &'static str,
        shape: &'static str,
        kind: &'static str,
        full: Timing,
        quick: Timing,
        run: Box<dyn FnMut()>,
    ) -> Self {
        Bench { id: format!("{op}/{shape}"), op, shape, kind, full, quick, run }
    }

    /// The budget for the given mode.
    pub fn timing(&self, quick: bool) -> Timing {
        if quick {
            self.quick
        } else {
            self.full
        }
    }
}

/// Deterministic value stream (independent of the `rand` crate's
/// internals, so fixtures never drift with shim changes).
fn xorshift(mut state: u64) -> impl FnMut() -> f64 {
    state |= 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    }
}

fn filled_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut next = xorshift(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = next();
    }
    m
}

fn filled_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut next = xorshift(seed);
    (0..len).map(|_| next()).collect()
}

/// Classification dataset with unit-interval features (CNN-friendly).
fn image_data(n: usize, dim: usize, classes: usize, seed: u64) -> Dataset {
    let mut next = xorshift(seed);
    let mut f = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        for j in 0..dim {
            f.row_mut(i)[j] = next().abs();
        }
        y.push((i % classes) as f64);
    }
    Dataset::new(f, y, classes)
}

fn matmul_bench(
    op: &'static str,
    shape: &'static str,
    m: usize,
    k: usize,
    n: usize,
    full: Timing,
    quick: Timing,
) -> Bench {
    // Operand shapes per transposition convention (see tensor::matrix).
    let (a, b, out) = match op {
        "matmul" => (filled_matrix(m, k, 11), filled_matrix(k, n, 12), Matrix::zeros(m, n)),
        "matmul_tn" => (filled_matrix(k, m, 13), filled_matrix(k, n, 14), Matrix::zeros(m, n)),
        "matmul_nt" => (filled_matrix(m, k, 15), filled_matrix(n, k, 16), Matrix::zeros(m, n)),
        other => unreachable!("unknown matmul op {other}"),
    };
    let mut out = out;
    Bench::new(
        op,
        shape,
        "micro",
        full,
        quick,
        Box::new(move || {
            match op {
                "matmul" => matmul_into(&a, &b, &mut out),
                "matmul_tn" => matmul_tn_into(&a, &b, &mut out),
                _ => matmul_nt_into(&a, &b, &mut out),
            }
            black_box(out.as_slice());
        }),
    )
}

fn estimator_step_bench(kind: EstimatorKind, shape: &'static str) -> Bench {
    let model = MultinomialLogistic::new(60, 10).with_l2(0.01);
    let data = image_data(64, 60, 10, 0xE57E);
    let w0 = model.init_params(3);
    let mut w_t = w0.clone();
    // A fixed iterate near (but not at) the anchor, so the VR correction
    // terms do real work.
    for (j, v) in w_t.iter_mut().enumerate() {
        *v += 0.01 * ((j % 7) as f64 - 3.0);
    }
    let batch: Vec<usize> = (0..16).map(|i| (i * 37) % 64).collect();
    let mut est = Estimator::begin(kind, &model, &data, &w0);
    let op = match kind {
        EstimatorKind::Svrg => "svrg_step",
        _ => "sarah_step",
    };
    Bench::new(
        op,
        shape,
        "micro",
        Timing::new(5, 100, 5),
        Timing::new(1, 5, 3),
        Box::new(move || {
            est.step(&model, &data, &batch, &w_t);
            black_box(est.direction());
        }),
    )
}

fn prox_bench(op: &'static str, shape: &'static str, prox: Box<dyn Proximal>) -> Bench {
    let x = filled_vec(8192, 0x9B0C);
    let mut out = vec![0.0; 8192];
    Bench::new(
        op,
        shape,
        "micro",
        Timing::new(5, 200, 5),
        Timing::new(1, 5, 3),
        Box::new(move || {
            prox.prox(0.05, &x, &mut out);
            black_box(&out[..]);
        }),
    )
}

fn round_bench(
    op: &'static str,
    shape: &'static str,
    model: Box<dyn LossModel>,
    shards: Vec<Dataset>,
    cfg: FedConfig,
    full: Timing,
    quick: Timing,
) -> Bench {
    let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
    let weights = weights_from_sizes(&sizes);
    let devices: Vec<Device> =
        shards.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
    let w0 = model.init_params(fedprox_models::MODEL_SEED);
    let mut agg = vec![0.0; w0.len()];
    Bench::new(
        op,
        shape,
        "macro",
        full,
        quick,
        Box::new(move || {
            let updates = run_round_sequential(&model, &devices, &w0, &cfg, 0).expect("round");
            let pairs: Vec<(&[f64], f64)> =
                updates.iter().zip(&weights).map(|(u, &wt)| (&u.w[..], wt)).collect();
            aggregate(&pairs, &mut agg);
            black_box(&agg[..]);
        }),
    )
}

/// Build the full benchmark suite, in report order.
// The suite reads as a sequential registry — one push per bench, grouped
// by subsystem with commentary — which a single `vec![]` literal would
// obscure.
#[allow(clippy::vec_init_then_push)]
pub fn build_suite() -> Vec<Bench> {
    let mut benches = Vec::new();

    // -- tensor kernels -----------------------------------------------------
    benches.push(matmul_bench(
        "matmul",
        "64x64x64",
        64,
        64,
        64,
        Timing::new(3, 40, 5),
        Timing::new(1, 3, 3),
    ));
    benches.push(matmul_bench(
        "matmul",
        "128x128x128",
        128,
        128,
        128,
        Timing::new(2, 10, 5),
        Timing::new(1, 2, 3),
    ));
    benches.push(matmul_bench(
        "matmul_tn",
        "96x64x80",
        64,
        96,
        80,
        Timing::new(3, 40, 5),
        Timing::new(1, 3, 3),
    ));
    benches.push(matmul_bench(
        "matmul_nt",
        "64x96x80",
        64,
        96,
        80,
        Timing::new(3, 40, 5),
        Timing::new(1, 3, 3),
    ));

    // The same 128^3 product pinned to the scalar reference kernel: the
    // report shows tiled vs reference side by side, and the ratio is the
    // speedup the blocked kernels buy on this machine.
    {
        let a = filled_matrix(128, 128, 17);
        let b = filled_matrix(128, 128, 18);
        let mut out = Matrix::zeros(128, 128);
        benches.push(Bench::new(
            "matmul_ref",
            "128x128x128",
            "micro",
            Timing::new(2, 10, 5),
            Timing::new(1, 2, 3),
            Box::new(move || {
                kernel::with_kernel(kernel::Kernel::Reference, || matmul_into(&a, &b, &mut out));
                black_box(out.as_slice());
            }),
        ));
    }

    // Tile-size sweep over the blocked kernel (same 128^3 product, varying
    // Blocking): re-run on new hardware to re-pick the defaults. Results
    // are bitwise identical across the sweep, so only time differs.
    for (shape, bl) in [
        ("mc32-kc64-nc128", kernel::Blocking::new(32, 64, 128)),
        ("mc64-kc256-nc256", kernel::Blocking::new(64, 256, 256)),
        ("mc128-kc128-nc512", kernel::Blocking::new(128, 128, 512)),
    ] {
        let a = filled_matrix(128, 128, 21);
        let b = filled_matrix(128, 128, 22);
        let mut out = Matrix::zeros(128, 128);
        benches.push(Bench::new(
            "matmul_tile",
            shape,
            "micro",
            Timing::new(2, 10, 5),
            Timing::new(1, 2, 3),
            Box::new(move || {
                kernel::matmul_into_blocked(&a, &b, &mut out, bl);
                black_box(out.as_slice());
            }),
        ));
    }

    // Matrix-vector products at the logistic model's geometry
    // (10 classes x 784 features is the paper's MNIST head; 512x784 is a
    // bigger dense layer that exercises the row-blocked kernel).
    {
        let a = filled_vec(512 * 784, 0xAB01);
        let x = filled_vec(784, 0xAB02);
        let mut out = vec![0.0; 512];
        benches.push(Bench::new(
            "matvec",
            "512x784",
            "micro",
            Timing::new(3, 60, 5),
            Timing::new(1, 3, 3),
            Box::new(move || {
                kernel::matvec_into(&a, 512, 784, &x, &mut out);
                black_box(&out[..]);
            }),
        ));
    }
    {
        let a = filled_vec(512 * 784, 0xAB03);
        let x = filled_vec(512, 0xAB04);
        let mut out = vec![0.0; 784];
        benches.push(Bench::new(
            "matvec_t",
            "512x784",
            "micro",
            Timing::new(3, 60, 5),
            Timing::new(1, 3, 3),
            Box::new(move || {
                kernel::matvec_t_into(&a, 512, 784, &x, &mut out);
                black_box(&out[..]);
            }),
        ));
    }

    // im2col unfold on the paper's 28x28 geometry (8 output channels).
    {
        let spec = Conv2dSpec::same(1, 8, 5, 28, 28);
        let input = filled_vec(spec.input_len(), 0x1337);
        let mut cols = Matrix::zeros(spec.col_rows(), spec.col_cols());
        benches.push(Bench::new(
            "im2col",
            "1x28x28-k5",
            "micro",
            Timing::new(3, 60, 5),
            Timing::new(1, 3, 3),
            Box::new(move || {
                im2col(&spec, &input, &mut cols);
                black_box(cols.as_slice());
            }),
        ));
    }

    // Convolution forward/backward through the im2col path.
    {
        let spec = Conv2dSpec::same(1, 8, 5, 28, 28);
        let input = filled_vec(spec.input_len(), 0xC0FF);
        let weight = filled_vec(spec.weight_len(), 0xC1FF);
        let bias = filled_vec(spec.out_ch, 0xC2FF);
        let mut output = vec![0.0; spec.output_len()];
        let mut scratch = ConvScratch::new(&spec);
        benches.push(Bench::new(
            "conv2d_fwd",
            "1to8x28x28-k5",
            "micro",
            Timing::new(3, 30, 5),
            Timing::new(1, 3, 3),
            Box::new(move || {
                conv2d_forward(&spec, &input, &weight, &bias, &mut output, &mut scratch);
                black_box(&output[..]);
            }),
        ));
    }
    {
        let spec = Conv2dSpec::same(1, 8, 5, 28, 28);
        let input = filled_vec(spec.input_len(), 0xB0FF);
        let weight = filled_vec(spec.weight_len(), 0xB1FF);
        let bias = filled_vec(spec.out_ch, 0xB2FF);
        let mut output = vec![0.0; spec.output_len()];
        let mut scratch = ConvScratch::new(&spec);
        // Warm the scratch tables once so the timed body measures the
        // steady-state (zero-allocation) backward.
        conv2d_forward(&spec, &input, &weight, &bias, &mut output, &mut scratch);
        let grad_out = filled_vec(spec.output_len(), 0xB3FF);
        let mut gw = vec![0.0; spec.weight_len()];
        let mut gb = vec![0.0; spec.out_ch];
        let mut gi = vec![0.0; spec.input_len()];
        benches.push(Bench::new(
            "conv2d_bwd",
            "1to8x28x28-k5",
            "micro",
            Timing::new(3, 30, 5),
            Timing::new(1, 3, 3),
            Box::new(move || {
                // Grad buffers accumulate (+=); zeroing is part of the op,
                // as every real caller starts from a zeroed gradient.
                gw.fill(0.0);
                gb.fill(0.0);
                conv2d_backward(
                    &spec, &input, &grad_out, &weight, &mut gw, &mut gb, &mut gi, &mut scratch,
                );
                black_box(&gi[..]);
            }),
        ));
    }

    // Softmax and reductions.
    {
        let src = filled_vec(4096, 0x50F7);
        let mut buf = vec![0.0; 4096];
        benches.push(Bench::new(
            "softmax",
            "4096",
            "micro",
            Timing::new(5, 200, 5),
            Timing::new(1, 5, 3),
            Box::new(move || {
                buf.copy_from_slice(&src);
                softmax_inplace(&mut buf);
                black_box(&buf[..]);
            }),
        ));
    }
    {
        let x = filled_vec(16384, 0xA001);
        benches.push(Bench::new(
            "reduce_norm_sq",
            "16384",
            "micro",
            Timing::new(5, 400, 5),
            Timing::new(1, 5, 3),
            Box::new(move || {
                black_box(vecops::norm_sq(&x));
            }),
        ));
    }
    {
        let a = filled_vec(16384, 0xA002);
        let b = filled_vec(16384, 0xA003);
        benches.push(Bench::new(
            "reduce_dot",
            "16384",
            "micro",
            Timing::new(5, 400, 5),
            Timing::new(1, 5, 3),
            Box::new(move || {
                black_box(vecops::dot(&a, &b));
            }),
        ));
    }

    // -- optim inner loop ---------------------------------------------------
    benches.push(estimator_step_bench(EstimatorKind::Svrg, "logistic-60x10-b16"));
    benches.push(estimator_step_bench(EstimatorKind::Sarah, "logistic-60x10-b16"));

    {
        let anchor = filled_vec(8192, 0x9A0C);
        benches.push(prox_bench("prox_quad", "8192", Box::new(QuadraticProx::new(0.3, anchor))));
    }
    benches.push(prox_bench("prox_l1", "8192", Box::new(L1Prox::new(0.02))));

    // A whole local solve: anchor full gradient + tau proximal VR steps.
    {
        let model = MultinomialLogistic::new(60, 10).with_l2(0.01);
        let data = image_data(64, 60, 10, 0x501E);
        let w0 = model.init_params(5);
        let prox = QuadraticProx::new(0.1, w0.clone());
        let scfg = LocalSolverConfig {
            kind: EstimatorKind::Sarah,
            step: StepSize::Constant(0.05),
            tau: 8,
            batch_size: 8,
            choice: IterateChoice::Last,
        };
        let solver = LocalSolver;
        benches.push(Bench::new(
            "local_solve",
            "logistic-60x10-tau8-b8",
            "micro",
            Timing::new(2, 20, 5),
            Timing::new(1, 2, 3),
            Box::new(move || {
                let mut rng = StdRng::seed_from_u64(7);
                let out = solver.solve(&model, &data, &prox, &w0, &scfg, &mut rng);
                black_box(&out.w[..]);
            }),
        ));
    }

    // -- macro: one full FedProxVR round per model --------------------------
    {
        let shards = generate(&SyntheticConfig { seed: 41, ..Default::default() }, &[40; 8]);
        benches.push(round_bench(
            "round",
            "fedproxvr-logistic-8dev",
            Box::new(MultinomialLogistic::new(60, 10).with_l2(0.01)),
            shards,
            FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
                .with_seed(17)
                .with_tau(4)
                .with_batch_size(8)
                .with_mu(0.1),
            Timing::new(2, 10, 5),
            Timing::new(1, 2, 2),
        ));
    }
    {
        let shards = generate(&SyntheticConfig { seed: 43, ..Default::default() }, &[40; 8]);
        benches.push(round_bench(
            "round",
            "fedproxvr-mlp-8dev",
            Box::new(Mlp::new(60, 32, 10).with_l2(0.01)),
            shards,
            FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
                .with_seed(19)
                .with_tau(4)
                .with_batch_size(8)
                .with_mu(0.1),
            Timing::new(2, 8, 5),
            Timing::new(1, 2, 2),
        ));
    }
    {
        let spec = CnnSpec::tiny();
        let dim = spec.in_ch * spec.side * spec.side;
        let shards: Vec<Dataset> =
            (0..4).map(|d| image_data(24, dim, spec.classes, 0xCCC0 + d)).collect();
        benches.push(round_bench(
            "round",
            "fedproxvr-cnn-tiny-4dev",
            Box::new(Cnn::new(spec)),
            shards,
            FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
                .with_seed(23)
                .with_tau(2)
                .with_batch_size(4)
                .with_mu(0.1),
            Timing::new(1, 4, 4),
            Timing::new(1, 1, 2),
        ));
    }

    // -- macro: one event-driven round over a million-device population ----
    // The population is lazy (per-device sample counts + shard synthesis
    // on demand), so setup cost is the Zipf size scan, not data; each
    // iteration samples K=64 clients, solves them, and aggregates.
    {
        use fedprox_core::config::{RunnerKind, SamplerSpec, SimRunnerOptions};
        use fedprox_data::partition::ZipfPopulation;
        use fedprox_data::synthetic::SyntheticPool;
        use fedprox_sim::{LazyPopulation, Population, SimEngine};

        let zipf = ZipfPopulation::new(1_000_000, 40, 120, 1.5, 4.0, 29);
        let pool = SyntheticPool::new(SyntheticConfig { seed: 29, ..Default::default() });
        let lazy = LazyPopulation::new(zipf, pool);
        let model = MultinomialLogistic::new(60, 10);
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_seed(29)
            .with_tau(4)
            .with_batch_size(8)
            .with_mu(0.1)
            .with_rounds(1)
            .with_runner(RunnerKind::EventDriven(
                SimRunnerOptions::default().with_sampler(SamplerSpec::UniformK(64)),
            ));
        benches.push(Bench::new(
            "sim_round_1m",
            "zipf-k64",
            "macro",
            Timing::new(2, 10, 5),
            Timing::new(1, 2, 2),
            Box::new(move || {
                let engine =
                    SimEngine::new(&model, Population::Lazy(lazy.clone()), None, cfg.clone());
                match engine.run() {
                    Ok(h) => {
                        black_box(&h.final_model[..]);
                    }
                    Err(e) => panic!("sim_round_1m failed: {e}"),
                }
            }),
        ));
    }

    benches
}

/// Run the suite (optionally filtered by substring) and assemble the
/// report. `quick` selects the reduced budgets.
pub fn run_suite(name: &str, quick: bool, filter: Option<&str>) -> BenchReport {
    let mut entries = Vec::new();
    for mut bench in build_suite() {
        if let Some(f) = filter {
            if !bench.id.contains(f) {
                continue;
            }
        }
        let timing = bench.timing(quick);
        let m = timer::run(timing, bench.run.as_mut());
        entries.push(BenchEntry {
            id: bench.id.clone(),
            kind: bench.kind.to_string(),
            op: bench.op.to_string(),
            shape: bench.shape.to_string(),
            warmup: timing.warmup,
            iters: timing.iters,
            repeats: timing.repeats,
            ns_per_iter: m.ns_per_iter,
            bytes_per_iter: m.bytes_per_iter,
            allocs_per_iter: m.allocs_per_iter,
        });
    }
    let mode = if quick { "quick" } else { "full" };
    BenchReport {
        schema: SCHEMA.to_string(),
        name: name.to_string(),
        mode: mode.to_string(),
        config: fedprox_obs::fnv64(&format!("fedperf name={name} mode={mode} filter={filter:?}")),
        kernel: kernel::active().name().to_string(),
        features: compiled_features(),
        entries,
    }
}

/// The feature set this harness was compiled with, comma-joined in a
/// fixed order — part of the run-ledger stamp so the baseline gate can
/// refuse cross-build comparisons.
fn compiled_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(feature = "count-alloc") {
        feats.push("count-alloc");
    }
    if cfg!(feature = "telemetry") {
        feats.push("telemetry");
    }
    feats.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;

    #[test]
    fn suite_ids_are_unique_and_cover_micro_and_macro() {
        let suite = build_suite();
        let mut ids: Vec<&str> = suite.iter().map(|b| b.id.as_str()).collect();
        let micro = suite.iter().filter(|b| b.kind == "micro").count();
        let macr = suite.iter().filter(|b| b.kind == "macro").count();
        assert!(micro >= 8, "need >= 8 micro benches, have {micro}");
        assert!(macr >= 3, "need >= 3 macro benches, have {macr}");
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "duplicate bench ids");
    }

    #[test]
    fn quick_suite_runs_and_validates() {
        let rep = run_suite("selftest", true, None);
        let json = rep.to_json().unwrap_or_default();
        let back = crate::report::BenchReport::from_json(&json)
            .unwrap_or_else(|e| panic!("emitted report fails validation: {e}"));
        assert_eq!(back.entries.len(), rep.entries.len());
        assert!(report::check_determinism(&rep, &back).is_ok());
    }

    #[test]
    fn filter_selects_subset() {
        let rep = run_suite("f", true, Some("reduce_"));
        assert_eq!(rep.entries.len(), 2);
        assert!(rep.entries.iter().all(|e| e.op.starts_with("reduce_")));
    }
}
