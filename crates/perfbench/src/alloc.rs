//! Byte/call-counting global allocator (the `count-alloc` feature).
//!
//! The counter tracks **cumulative bytes requested** (frees are not
//! subtracted): the harness measures allocation *traffic* through a timed
//! section, not peak residency, because traffic is what the hot-path
//! allocation pass eliminates and what stays bit-reproducible across runs
//! (the vendored rayon shim is sequential, so no other thread perturbs the
//! counts mid-measurement).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

/// Wraps [`System`], adding every requested allocation to global counters.
#[derive(Debug, Default)]
pub struct CountingAlloc;

// Every method delegates verbatim to `System`; the counter updates are
// lock-free atomics and never allocate, so there is no reentrancy hazard.
// SAFETY: `System` upholds the GlobalAlloc contract and we forward to it.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the layout contract; forwarded to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller upholds the layout contract; forwarded to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller guarantees `ptr`/`layout` came from this allocator.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count the full new size: a grow re-requests the whole block, and
        // over-counting reallocs keeps the metric monotone and simple.
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller guarantees `ptr`/`layout` came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A snapshot of the counters (cumulative since process start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes requested via alloc/alloc_zeroed/realloc.
    pub bytes: u64,
    /// Total allocator calls (excluding frees).
    pub calls: u64,
}

impl AllocStats {
    /// Counter delta `self − earlier` (saturating).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            bytes: self.bytes.saturating_sub(earlier.bytes),
            calls: self.calls.saturating_sub(earlier.calls),
        }
    }
}

/// Read the current counters. Zero when `count-alloc` is disabled.
pub fn stats() -> AllocStats {
    AllocStats { bytes: BYTES.load(Ordering::Relaxed), calls: CALLS.load(Ordering::Relaxed) }
}

/// Whether the counting allocator is installed in this build.
pub fn counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Cumulative `(bytes, calls)` reading in the shape the telemetry
/// collector's allocation probe expects.
#[cfg(feature = "telemetry")]
fn probe() -> (u64, u64) {
    let s = stats();
    (s.bytes, s.calls)
}

/// Hand the counting allocator to `fedprof`: registers [`stats`] as the
/// telemetry collector's allocation probe so armed span trees attribute
/// bytes/allocs to the innermost open span. Call before arming; a no-op
/// build-wise when `count-alloc` is off (the probe then reads constant
/// zeros and the profile's allocation columns stay empty).
#[cfg(feature = "telemetry")]
pub fn install_telemetry_probe() {
    fedprox_telemetry::collector::install_alloc_probe(probe);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_allocation_is_counted() {
        if !counting_enabled() {
            return;
        }
        let before = stats();
        let v = vec![0u8; 4096];
        let after = stats();
        let d = after.since(&before);
        assert!(d.bytes >= 4096, "expected >= 4096 bytes counted, got {}", d.bytes);
        assert!(d.calls >= 1);
        drop(v);
    }

    #[test]
    fn since_is_saturating() {
        let a = AllocStats { bytes: 10, calls: 1 };
        let b = AllocStats { bytes: 30, calls: 4 };
        assert_eq!(b.since(&a), AllocStats { bytes: 20, calls: 3 });
        assert_eq!(a.since(&b), AllocStats { bytes: 0, calls: 0 });
    }
}
