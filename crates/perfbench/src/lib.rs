//! `fedperf`: the repo's deterministic benchmark harness.
//!
//! Design goals (see DESIGN.md §9 "Performance methodology"):
//!
//! * **Deterministic iteration counts.** Every benchmark declares fixed
//!   `warmup`/`iters`/`repeats` constants — there is no time-based
//!   calibration, so two runs on the same machine execute the exact same
//!   work and CI can compare reports structurally (same ids, same counts)
//!   without gating on absolute wall time.
//! * **Allocation accounting.** With the default `count-alloc` feature the
//!   global allocator is wrapped in a byte/call counter, so each entry
//!   reports `bytes_per_iter`/`allocs_per_iter` alongside `ns_per_iter`.
//!   Because the vendored rayon shim is sequential, the counts are exact
//!   and reproducible — they are the primary regression signal (wall time
//!   is machine-dependent, allocation traffic is not).
//! * **Schema'd output.** Reports serialize as `BENCH_<name>.json` with
//!   `schema: "fedperf/v1"`; [`report::validate`] checks the shape and
//!   [`report::gate`] implements the `--baseline old.json --gate 1.25`
//!   regression gate.
//!
//! The library holds the machinery; the `fedperf` binary drives it.

// fedlint: allow(clippy-allow-sync) — crate-wide: the perf harness is R1-exempt; a failing benchmark body is a broken bench, not a recoverable condition
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod alloc;
pub mod report;
pub mod suite;
pub mod timer;
