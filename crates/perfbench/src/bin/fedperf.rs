//! `fedperf` — deterministic benchmark driver.
//!
//! Modes:
//!
//! * default: run the suite, print the human table, and (with `--out`)
//!   write `BENCH_<name>.json`;
//! * `--baseline old.json --gate 1.25`: run the suite, then fail if any
//!   shared entry regressed past the ratio;
//! * `--validate a.json [b.json ...]`: schema-check existing reports;
//! * `--check-determinism a.json b.json`: require two reports to declare
//!   identical benchmark structure (ids + iteration counts; timings are
//!   machine-dependent and deliberately not compared).

use fedprox_perfbench::report::{self, BenchReport};
use fedprox_perfbench::suite;
use std::process::ExitCode;

const USAGE: &str = "usage: fedperf [OPTIONS]

  --quick                 reduced iteration budgets (CI smoke)
  --name NAME             report name, default 'seed' (file: BENCH_<NAME>.json)
  --out DIR               directory to write the JSON report into
  --filter SUBSTR         only run benches whose id contains SUBSTR
  --list                  list bench ids and exit
  --baseline FILE         compare against a prior report
  --gate RATIO            max allowed ns/iter ratio vs baseline (default 1.25)
  --validate FILE...      schema-check report files and exit
  --check-determinism A B require identical structure in two reports, exit
  --help                  this text";

struct Opts {
    quick: bool,
    name: String,
    out: Option<String>,
    filter: Option<String>,
    list: bool,
    baseline: Option<String>,
    gate: f64,
    validate: Vec<String>,
    check_det: Option<(String, String)>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        quick: false,
        name: "seed".to_string(),
        out: None,
        filter: None,
        list: false,
        baseline: None,
        gate: 1.25,
        validate: Vec::new(),
        check_det: None,
    };
    let mut i = 0;
    let need = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => o.quick = true,
            "--list" => o.list = true,
            "--name" => o.name = need(&mut i, "--name")?,
            "--out" => o.out = Some(need(&mut i, "--out")?),
            "--filter" => o.filter = Some(need(&mut i, "--filter")?),
            "--baseline" => o.baseline = Some(need(&mut i, "--baseline")?),
            "--gate" => {
                let v = need(&mut i, "--gate")?;
                o.gate = v.parse::<f64>().map_err(|_| format!("bad --gate value: {v}"))?;
                if !o.gate.is_finite() || o.gate <= 0.0 {
                    return Err(format!("--gate must be a positive finite ratio, got {v}"));
                }
            }
            "--validate" => {
                i += 1;
                while i < args.len() && !args[i].starts_with("--") {
                    o.validate.push(args[i].clone());
                    i += 1;
                }
                if o.validate.is_empty() {
                    return Err("--validate needs at least one file".to_string());
                }
                continue;
            }
            "--check-determinism" => {
                let a = need(&mut i, "--check-determinism")?;
                let b = need(&mut i, "--check-determinism")?;
                o.check_det = Some((a, b));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(o)
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn run(o: &Opts) -> Result<(), String> {
    // File-only modes first.
    if !o.validate.is_empty() {
        for path in &o.validate {
            let rep = load_report(path)?;
            println!("ok: {path} ({} entries, mode {})", rep.entries.len(), rep.mode);
        }
        return Ok(());
    }
    if let Some((a, b)) = &o.check_det {
        let ra = load_report(a)?;
        let rb = load_report(b)?;
        report::check_determinism(&ra, &rb)
            .map_err(|e| format!("determinism check failed: {e}"))?;
        println!("ok: {a} and {b} declare identical benchmark structure");
        return Ok(());
    }
    if o.list {
        for b in suite::build_suite() {
            println!("{:7} {}", b.kind, b.id);
        }
        return Ok(());
    }

    let rep = suite::run_suite(&o.name, o.quick, o.filter.as_deref());
    if rep.entries.is_empty() {
        return Err("no benches matched the filter".to_string());
    }
    print!("{}", report::human_table(&rep));

    if let Some(dir) = &o.out {
        let path = format!("{dir}/BENCH_{}.json", o.name);
        let json = rep.to_json().map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }

    if let Some(base_path) = &o.baseline {
        let base = load_report(base_path)?;
        report::check_comparable(&base, &rep)
            .map_err(|e| format!("{base_path}: not comparable: {e}"))?;
        let outcome = report::gate(&base, &rep, o.gate);
        print!("{}", report::gate_table(&outcome, o.gate));
        if !outcome.passed() {
            return Err(format!("regression gate failed (ratio > {})", o.gate));
        }
        println!("gate passed (<= {}x baseline)", o.gate);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("fedperf: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedperf: {msg}");
            ExitCode::FAILURE
        }
    }
}
