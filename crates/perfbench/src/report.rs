//! The `fedperf/v1` report schema: serialization, validation, the
//! regression gate, and the CI determinism check.

use serde::{Deserialize, Serialize, Value};

/// Schema tag every report carries.
pub const SCHEMA: &str = "fedperf/v1";

/// One measured benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Unique id, `<op>/<shape>` (e.g. `matmul/64x64x64`).
    pub id: String,
    /// `"micro"` (kernel) or `"macro"` (full federated round).
    pub kind: String,
    /// Operation name (`matmul`, `svrg_step`, `round`, ...).
    pub op: String,
    /// Shape / configuration string.
    pub shape: String,
    /// Untimed warmup iterations.
    pub warmup: u32,
    /// Iterations per timed batch.
    pub iters: u32,
    /// Timed batches (median reported).
    pub repeats: u32,
    /// Median wall nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Median allocated bytes per iteration (absent without `count-alloc`).
    pub bytes_per_iter: Option<f64>,
    /// Median allocator calls per iteration (absent without `count-alloc`).
    pub allocs_per_iter: Option<f64>,
}

/// A full `BENCH_<name>.json` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Report name (`BENCH_<name>.json`).
    pub name: String,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Run-ledger config digest (FNV-1a of the canonical suite
    /// invocation). Empty on reports written before the ledger existed;
    /// the fields are serde-defaulted so those still parse.
    #[serde(default)]
    pub config: String,
    /// Tensor kernel selector active during measurement (`reference`,
    /// `tiled`, `tiled-par`; empty on pre-ledger reports).
    #[serde(default)]
    pub kernel: String,
    /// Comma-joined compiled feature set (empty on pre-ledger reports).
    #[serde(default)]
    pub features: String,
    /// Measured entries, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("serialize report: {e:?}"))
    }

    /// Parse and schema-validate a report from JSON text.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("parse JSON: {e:?}"))?;
        validate(&value)?;
        serde_json::from_str(text).map_err(|e| format!("decode report: {e:?}"))
    }
}

fn field<'a>(obj: &'a Value, key: &str, at: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("{at}: missing field `{key}`"))
}

fn expect_string(v: &Value, at: &str) -> Result<String, String> {
    v.as_str().map(str::to_string).ok_or_else(|| format!("{at}: expected string, got {}", v.kind()))
}

fn expect_number(v: &Value, at: &str) -> Result<f64, String> {
    match v {
        Value::Number(n) => Ok(n.as_f64()),
        other => Err(format!("{at}: expected number, got {}", other.kind())),
    }
}

fn expect_count(v: &Value, at: &str) -> Result<u64, String> {
    match v {
        Value::Number(n) => {
            n.as_u64().ok_or_else(|| format!("{at}: expected non-negative integer"))
        }
        other => Err(format!("{at}: expected integer, got {}", other.kind())),
    }
}

/// Validate a parsed JSON value against the `fedperf/v1` schema. Checks
/// required fields, their types, id uniqueness, and iteration counts
/// >= 1. Returns the first problem found.
pub fn validate(value: &Value) -> Result<(), String> {
    let schema = expect_string(field(value, "schema", "report")?, "report.schema")?;
    if schema != SCHEMA {
        return Err(format!("report.schema: expected `{SCHEMA}`, got `{schema}`"));
    }
    expect_string(field(value, "name", "report")?, "report.name")?;
    let mode = expect_string(field(value, "mode", "report")?, "report.mode")?;
    if mode != "full" && mode != "quick" {
        return Err(format!("report.mode: expected `full` or `quick`, got `{mode}`"));
    }
    let Value::Array(entries) = field(value, "entries", "report")? else {
        return Err("report.entries: expected array".to_string());
    };
    if entries.is_empty() {
        return Err("report.entries: empty".to_string());
    }
    let mut seen: Vec<String> = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let at = format!("entries[{i}]");
        let id = expect_string(field(entry, "id", &at)?, &format!("{at}.id"))?;
        if seen.contains(&id) {
            return Err(format!("{at}: duplicate id `{id}`"));
        }
        let kind = expect_string(field(entry, "kind", &at)?, &format!("{at}.kind"))?;
        if kind != "micro" && kind != "macro" {
            return Err(format!("{at}.kind: expected `micro` or `macro`, got `{kind}`"));
        }
        expect_string(field(entry, "op", &at)?, &format!("{at}.op"))?;
        expect_string(field(entry, "shape", &at)?, &format!("{at}.shape"))?;
        expect_count(field(entry, "warmup", &at)?, &format!("{at}.warmup"))?;
        for key in ["iters", "repeats"] {
            let n = expect_count(field(entry, key, &at)?, &format!("{at}.{key}"))?;
            if n == 0 {
                return Err(format!("{at}.{key}: must be >= 1"));
            }
        }
        let ns = expect_number(field(entry, "ns_per_iter", &at)?, &format!("{at}.ns_per_iter"))?;
        if !ns.is_finite() || ns < 0.0 {
            return Err(format!("{at}.ns_per_iter: must be finite and >= 0"));
        }
        for key in ["bytes_per_iter", "allocs_per_iter"] {
            match entry.get(key) {
                None | Some(Value::Null) => {}
                Some(v) => {
                    let b = expect_number(v, &format!("{at}.{key}"))?;
                    if !b.is_finite() || b < 0.0 {
                        return Err(format!("{at}.{key}: must be finite and >= 0"));
                    }
                }
            }
        }
        seen.push(id);
    }
    Ok(())
}

/// One row of a gate comparison.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Benchmark id.
    pub id: String,
    /// Baseline ns/iter.
    pub base_ns: f64,
    /// Current ns/iter.
    pub cur_ns: f64,
    /// `cur / base` (1.0 when the baseline is zero).
    pub ratio: f64,
    /// Whether this row breaches the gate.
    pub failed: bool,
}

/// Result of a gate comparison.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Per-id comparison rows (ids present in both reports, suite order).
    pub rows: Vec<GateRow>,
    /// Ids only in the current report (informational).
    pub new_ids: Vec<String>,
    /// Ids only in the baseline (informational).
    pub missing_ids: Vec<String>,
}

impl GateOutcome {
    /// Whether any shared id breached the gate.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| !r.failed)
    }
}

/// Refuse a gate comparison between reports measured under different
/// code: when BOTH sides carry a run-ledger stamp, the kernel selector
/// and the compiled feature set must match — a `tiled-par` baseline
/// says nothing about a `reference` run, and timing deltas between
/// feature sets are build artifacts, not regressions. Reports from
/// before the stamp existed (empty fields) compare unconditionally.
pub fn check_comparable(baseline: &BenchReport, current: &BenchReport) -> Result<(), String> {
    let stamped =
        |r: &BenchReport| !r.kernel.is_empty() || !r.features.is_empty() || !r.config.is_empty();
    if !(stamped(baseline) && stamped(current)) {
        return Ok(());
    }
    if baseline.kernel != current.kernel {
        return Err(format!(
            "kernel selector differs: baseline `{}` vs current `{}` (re-run with --kernel or \
             regenerate the baseline)",
            baseline.kernel, current.kernel
        ));
    }
    if baseline.features != current.features {
        return Err(format!(
            "compiled feature set differs: baseline `[{}]` vs current `[{}]`",
            baseline.features, current.features
        ));
    }
    Ok(())
}

/// Compare `current` against `baseline`: an id fails when its ns/iter
/// exceeds `gate` times the baseline's. Ids present in only one report
/// are listed but never fail the gate.
pub fn gate(baseline: &BenchReport, current: &BenchReport, gate: f64) -> GateOutcome {
    assert!(gate > 0.0, "gate ratio must be positive");
    let mut rows = Vec::new();
    let mut new_ids = Vec::new();
    for cur in &current.entries {
        match baseline.entries.iter().find(|b| b.id == cur.id) {
            Some(base) => {
                let ratio =
                    if base.ns_per_iter > 0.0 { cur.ns_per_iter / base.ns_per_iter } else { 1.0 };
                rows.push(GateRow {
                    id: cur.id.clone(),
                    base_ns: base.ns_per_iter,
                    cur_ns: cur.ns_per_iter,
                    ratio,
                    failed: ratio > gate,
                });
            }
            None => new_ids.push(cur.id.clone()),
        }
    }
    let missing_ids = baseline
        .entries
        .iter()
        .filter(|b| !current.entries.iter().any(|c| c.id == b.id))
        .map(|b| b.id.clone())
        .collect();
    GateOutcome { rows, new_ids, missing_ids }
}

/// CI determinism check: two runs of the same suite must execute the
/// exact same work — same id sequence and identical
/// `warmup`/`iters`/`repeats` per entry. Timings are machine noise and
/// are deliberately not compared.
pub fn check_determinism(a: &BenchReport, b: &BenchReport) -> Result<(), String> {
    if a.entries.len() != b.entries.len() {
        return Err(format!("entry count differs: {} vs {}", a.entries.len(), b.entries.len()));
    }
    for (ea, eb) in a.entries.iter().zip(&b.entries) {
        if ea.id != eb.id {
            return Err(format!("id order differs: `{}` vs `{}`", ea.id, eb.id));
        }
        if (ea.warmup, ea.iters, ea.repeats) != (eb.warmup, eb.iters, eb.repeats) {
            return Err(format!(
                "iteration counts differ for `{}`: {}/{}/{} vs {}/{}/{}",
                ea.id, ea.warmup, ea.iters, ea.repeats, eb.warmup, eb.iters, eb.repeats
            ));
        }
    }
    Ok(())
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_bytes(b: Option<f64>) -> String {
    match b {
        None => "-".to_string(),
        Some(b) if b >= 1024.0 * 1024.0 => format!("{:.1} MiB", b / (1024.0 * 1024.0)),
        Some(b) if b >= 1024.0 => format!("{:.1} KiB", b / 1024.0),
        Some(b) => format!("{b:.0} B"),
    }
}

/// Render the human-readable table for a report.
pub fn human_table(report: &BenchReport) -> String {
    let mut out = String::new();
    let id_w = report.entries.iter().map(|e| e.id.len()).max().unwrap_or(8).max(8);
    out.push_str(&format!(
        "{:<id_w$}  {:>5}  {:>12}  {:>10}  {:>10}\n",
        "id", "kind", "ns/iter", "bytes/iter", "allocs/iter"
    ));
    for e in &report.entries {
        out.push_str(&format!(
            "{:<id_w$}  {:>5}  {:>12}  {:>10}  {:>10}\n",
            e.id,
            e.kind,
            fmt_ns(e.ns_per_iter),
            fmt_bytes(e.bytes_per_iter),
            match e.allocs_per_iter {
                None => "-".to_string(),
                Some(a) => format!("{a:.1}"),
            },
        ));
    }
    out
}

/// Render the gate comparison table.
pub fn gate_table(outcome: &GateOutcome, gate: f64) -> String {
    let mut out = String::new();
    let id_w = outcome.rows.iter().map(|r| r.id.len()).max().unwrap_or(8).max(8);
    out.push_str(&format!(
        "{:<id_w$}  {:>12}  {:>12}  {:>7}  gate x{gate:.2}\n",
        "id", "baseline", "current", "ratio"
    ));
    for r in &outcome.rows {
        out.push_str(&format!(
            "{:<id_w$}  {:>12}  {:>12}  {:>6.2}x  {}\n",
            r.id,
            fmt_ns(r.base_ns),
            fmt_ns(r.cur_ns),
            r.ratio,
            if r.failed { "FAIL" } else { "ok" },
        ));
    }
    for id in &outcome.new_ids {
        out.push_str(&format!("{id}: new (no baseline entry)\n"));
    }
    for id in &outcome.missing_ids {
        out.push_str(&format!("{id}: missing from current run\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, ns: f64) -> BenchEntry {
        BenchEntry {
            id: id.to_string(),
            kind: "micro".to_string(),
            op: id.split('/').next().unwrap_or(id).to_string(),
            shape: "s".to_string(),
            warmup: 1,
            iters: 10,
            repeats: 3,
            ns_per_iter: ns,
            bytes_per_iter: Some(0.0),
            allocs_per_iter: Some(0.0),
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            name: "t".to_string(),
            mode: "quick".to_string(),
            config: String::new(),
            kernel: String::new(),
            features: String::new(),
            entries,
        }
    }

    #[test]
    fn roundtrip_and_validate() {
        let r = report(vec![entry("matmul/64", 100.0), entry("dot/16384", 5.0)]);
        let json = r.to_json().unwrap_or_default();
        let back = BenchReport::from_json(&json).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[0].id, "matmul/64");
        assert_eq!(back.entries[1].ns_per_iter, 5.0);
    }

    #[test]
    fn validate_rejects_bad_reports() {
        let cases = [
            (r#"{"schema":"bogus/v9","name":"x","mode":"full","entries":[]}"#, "schema"),
            (r#"{"schema":"fedperf/v1","name":"x","mode":"warp","entries":[]}"#, "mode"),
            (r#"{"schema":"fedperf/v1","name":"x","mode":"full","entries":[]}"#, "empty"),
        ];
        for (text, why) in cases {
            let v: Value = serde_json::from_str(text).unwrap_or_else(|e| panic!("{e:?}"));
            assert!(validate(&v).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn validate_rejects_duplicate_ids_and_zero_iters() {
        let mut r = report(vec![entry("a/1", 1.0), entry("a/1", 2.0)]);
        let json = r.to_json().unwrap_or_default();
        assert!(BenchReport::from_json(&json).is_err());
        r.entries[1].id = "b/1".to_string();
        r.entries[1].iters = 0;
        let json = r.to_json().unwrap_or_default();
        assert!(BenchReport::from_json(&json).is_err());
    }

    #[test]
    fn gate_flags_regressions_only_above_threshold() {
        let base = report(vec![entry("a/1", 100.0), entry("b/1", 100.0)]);
        let cur = report(vec![entry("a/1", 120.0), entry("b/1", 130.0)]);
        let out = gate(&base, &cur, 1.25);
        assert!(!out.rows[0].failed);
        assert!(out.rows[1].failed);
        assert!(!out.passed());
        let ok = gate(&base, &cur, 1.5);
        assert!(ok.passed());
    }

    #[test]
    fn gate_handles_disjoint_ids() {
        let base = report(vec![entry("gone/1", 10.0)]);
        let cur = report(vec![entry("new/1", 10.0)]);
        let out = gate(&base, &cur, 1.25);
        assert!(out.rows.is_empty());
        assert_eq!(out.new_ids, vec!["new/1".to_string()]);
        assert_eq!(out.missing_ids, vec!["gone/1".to_string()]);
        assert!(out.passed());
    }

    #[test]
    fn legacy_reports_without_ledger_stamp_still_parse() {
        let json = r#"{"schema":"fedperf/v1","name":"seed","mode":"full","entries":[
            {"id":"a/1","kind":"micro","op":"a","shape":"1","warmup":1,"iters":10,
             "repeats":3,"ns_per_iter":5.0,"bytes_per_iter":null,"allocs_per_iter":null}]}"#;
        let rep = BenchReport::from_json(json).unwrap_or_else(|e| panic!("{e}"));
        assert!(rep.config.is_empty() && rep.kernel.is_empty() && rep.features.is_empty());
    }

    #[test]
    fn comparability_refuses_kernel_or_feature_mismatch_when_both_stamped() {
        let mut base = report(vec![entry("a/1", 1.0)]);
        let mut cur = report(vec![entry("a/1", 1.0)]);
        // Either side unstamped (legacy baseline): compare unconditionally.
        cur.kernel = "tiled-par".to_string();
        cur.features = "count-alloc".to_string();
        assert!(check_comparable(&base, &cur).is_ok(), "legacy baseline must pass");
        // Both stamped and identical: fine.
        base.kernel = "tiled-par".to_string();
        base.features = "count-alloc".to_string();
        assert!(check_comparable(&base, &cur).is_ok());
        // Kernel differs: refused, naming both selectors.
        base.kernel = "reference".to_string();
        let err = check_comparable(&base, &cur).unwrap_err();
        assert!(err.contains("reference") && err.contains("tiled-par"), "{err}");
        // Feature set differs: refused.
        base.kernel = "tiled-par".to_string();
        base.features = "count-alloc,telemetry".to_string();
        assert!(check_comparable(&base, &cur).is_err());
        // Config digest alone differing does NOT refuse (different run
        // shapes may still be compared id-by-id; only the measurement
        // substrate is gated).
        base.features = "count-alloc".to_string();
        base.config = "aaaa".to_string();
        cur.config = "bbbb".to_string();
        assert!(check_comparable(&base, &cur).is_ok());
    }

    #[test]
    fn determinism_check_compares_counts_not_times() {
        let a = report(vec![entry("a/1", 100.0)]);
        let mut b = report(vec![entry("a/1", 900.0)]);
        assert!(check_determinism(&a, &b).is_ok(), "timings must not matter");
        b.entries[0].iters = 11;
        assert!(check_determinism(&a, &b).is_err());
        let c = report(vec![entry("c/1", 100.0)]);
        assert!(check_determinism(&a, &c).is_err());
    }

    #[test]
    fn tables_render() {
        let r = report(vec![entry("a/1", 1234.0)]);
        let t = human_table(&r);
        assert!(t.contains("a/1") && t.contains("µs"));
        let g = gate_table(&gate(&r, &r, 1.25), 1.25);
        assert!(g.contains("1.00x"));
    }
}
