//! Fixed-budget measurement loop: warmup, then `repeats` timed batches of
//! `iters` iterations each, reporting the **median** batch.
//!
//! There is deliberately no adaptive calibration: iteration counts are
//! part of the benchmark definition, so two runs execute identical work
//! and CI can diff reports structurally (see DESIGN.md §9).

use crate::alloc;
use std::time::Instant;

/// Fixed iteration budget of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Untimed warmup iterations (cache/branch-predictor settling).
    pub warmup: u32,
    /// Iterations per timed batch.
    pub iters: u32,
    /// Timed batches; the median batch is reported.
    pub repeats: u32,
}

impl Timing {
    /// Construct a budget (all fields must be >= 1 except warmup).
    pub const fn new(warmup: u32, iters: u32, repeats: u32) -> Self {
        Timing { warmup, iters, repeats }
    }
}

/// Result of measuring one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median wall nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Median allocated bytes per iteration (`None` without `count-alloc`).
    pub bytes_per_iter: Option<f64>,
    /// Median allocator calls per iteration (`None` without `count-alloc`).
    pub allocs_per_iter: Option<f64>,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Run `f` under the budget and report the median batch.
pub fn run(timing: Timing, f: &mut dyn FnMut()) -> Measurement {
    assert!(timing.iters >= 1 && timing.repeats >= 1, "timer: empty budget");
    for _ in 0..timing.warmup {
        f();
    }
    let mut ns = Vec::with_capacity(timing.repeats as usize);
    let mut bytes = Vec::with_capacity(timing.repeats as usize);
    let mut calls = Vec::with_capacity(timing.repeats as usize);
    for _ in 0..timing.repeats {
        let a0 = alloc::stats();
        let t0 = Instant::now();
        for _ in 0..timing.iters {
            f();
        }
        let elapsed = t0.elapsed();
        let da = alloc::stats().since(&a0);
        ns.push(elapsed.as_nanos() as f64 / timing.iters as f64);
        bytes.push(da.bytes as f64 / timing.iters as f64);
        calls.push(da.calls as f64 / timing.iters as f64);
    }
    let counting = alloc::counting_enabled();
    Measurement {
        ns_per_iter: median(&mut ns),
        bytes_per_iter: if counting { Some(median(&mut bytes)) } else { None },
        allocs_per_iter: if counting { Some(median(&mut calls)) } else { None },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn run_invokes_exact_iteration_count() {
        let mut count = 0u64;
        let m = run(Timing::new(2, 5, 3), &mut || count += 1);
        assert_eq!(count, 2 + 5 * 3);
        assert!(m.ns_per_iter >= 0.0);
    }

    #[test]
    fn allocation_free_closure_reports_zero_bytes() {
        if !alloc::counting_enabled() {
            return;
        }
        let mut acc = 0.0f64;
        let m = run(Timing::new(1, 10, 3), &mut || acc += 1.0);
        assert_eq!(m.bytes_per_iter, Some(0.0));
        assert!(acc > 0.0);
    }

    #[test]
    fn allocating_closure_reports_bytes() {
        if !alloc::counting_enabled() {
            return;
        }
        let m = run(Timing::new(0, 4, 3), &mut || {
            let v = std::hint::black_box(vec![0u8; 1024]);
            drop(v);
        });
        let b = m.bytes_per_iter.unwrap_or(0.0);
        assert!(b >= 1024.0, "bytes/iter {b}");
    }
}
