//! Per-round participation records: who responded, who didn't, and why.
//!
//! Backends running with a [`Resilience`] policy produce one
//! [`RoundParticipation`] per global round; `History` carries the list
//! so a finished run documents exactly which devices contributed to
//! each aggregation — the ground truth the resilience experiments and
//! the `participation_gap` health rule read.
//!
//! [`Resilience`]: crate::policy::Resilience

use serde::{Deserialize, Serialize};

/// What one device did in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DeviceOutcome {
    /// Finished its local work and was included in the aggregation (or
    /// would have been, had the round met quorum).
    Responded,
    /// Permanently dead — planned crash or panicked worker under a
    /// crash-tolerant policy. Never returns in later rounds.
    Crashed,
    /// Inside a planned offline window; will rejoin when it ends.
    Offline,
    /// Finished after the round deadline and was excluded.
    DeadlineMiss,
    /// Its link exhausted the retry policy this round; the device is
    /// back next round.
    LinkFailed,
    /// Not sampled into this round's participant set (partial
    /// participation in the local backends).
    NotSelected,
}

impl DeviceOutcome {
    /// Stable snake_case name, matching the serialized form.
    pub fn name(self) -> &'static str {
        match self {
            DeviceOutcome::Responded => "responded",
            DeviceOutcome::Crashed => "crashed",
            DeviceOutcome::Offline => "offline",
            DeviceOutcome::DeadlineMiss => "deadline_miss",
            DeviceOutcome::LinkFailed => "link_failed",
            DeviceOutcome::NotSelected => "not_selected",
        }
    }
}

/// The participation record of one global round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundParticipation {
    /// 1-based global round `s`.
    pub round: usize,
    /// Outcome per device. Indexed by **stable device id** when
    /// [`RoundParticipation::sampled`] is `None`; otherwise `outcomes[j]`
    /// describes device `sampled[j]`.
    pub outcomes: Vec<DeviceOutcome>,
    /// Responding fraction of the total federation aggregation weight
    /// (`Σ D_n/D` over responders), in `[0, 1]`.
    pub responder_weight: f64,
    /// True when the round failed quorum and was skipped: the global
    /// model was left unchanged and no aggregation happened.
    #[serde(default)]
    pub skipped: bool,
    /// Sampled-population (compact) form, used by the event-driven
    /// backend when the population is too large for an outcome per
    /// device: the stable ids of this round's sampled devices, aligned
    /// with `outcomes`. Devices outside the list were not selected.
    /// `None` (the default, and what the full-population backends write)
    /// means `outcomes` is indexed directly by device id.
    #[serde(default)]
    pub sampled: Option<Vec<u32>>,
}

impl RoundParticipation {
    /// Number of devices that responded.
    pub fn responders(&self) -> usize {
        self.count(DeviceOutcome::Responded)
    }

    /// The outcome of the device with stable id `device`:
    /// `NotSelected` for devices outside a compact record's sampled set
    /// (or beyond a dense record's population).
    pub fn outcome_of(&self, device: usize) -> DeviceOutcome {
        match &self.sampled {
            Some(ids) => ids
                .iter()
                .position(|&d| d as usize == device)
                .and_then(|j| self.outcomes.get(j).copied())
                .unwrap_or(DeviceOutcome::NotSelected),
            None => self.outcomes.get(device).copied().unwrap_or(DeviceOutcome::NotSelected),
        }
    }

    /// Number of devices with the given outcome.
    pub fn count(&self, outcome: DeviceOutcome) -> usize {
        self.outcomes.iter().filter(|&&o| o == outcome).count()
    }

    /// Responding fraction of the device count (not weight), ignoring
    /// devices the sampler never selected.
    pub fn responder_fraction(&self) -> f64 {
        let eligible = self.outcomes.len() - self.count(DeviceOutcome::NotSelected);
        if eligible == 0 {
            return 0.0;
        }
        self.responders() as f64 / eligible as f64
    }
}

/// Aggregate view over a run's participation records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticipationSummary {
    /// Rounds covered.
    pub rounds: usize,
    /// Rounds skipped for failing quorum.
    pub skipped_rounds: usize,
    /// Distinct devices that ended the run crashed.
    pub crashed_devices: usize,
    /// Mean over rounds of the responding weight fraction.
    pub mean_responder_weight: f64,
    /// Total deadline misses across all rounds and devices.
    pub deadline_misses: usize,
    /// Total retry-exhausted link failures across all rounds and devices.
    pub link_failures: usize,
}

/// Summarize a run's participation records. An empty slice gives the
/// all-zero summary with `mean_responder_weight` 0.0.
pub fn summarize(records: &[RoundParticipation]) -> ParticipationSummary {
    let rounds = records.len();
    let skipped_rounds = records.iter().filter(|r| r.skipped).count();
    // Distinct ids, not the last round's count: compact (sampled)
    // records only mention a crashed device in rounds that sampled it,
    // so the final record may miss crashes observed earlier. Dense
    // records are unaffected — crashes are monotone, so their last
    // round already lists every crashed device exactly once.
    let mut crashed_ids: Vec<usize> = records
        .iter()
        .flat_map(|r| {
            r.outcomes.iter().enumerate().filter(|&(_, &o)| o == DeviceOutcome::Crashed).map(
                move |(j, _)| match &r.sampled {
                    Some(ids) => ids.get(j).map(|&d| d as usize).unwrap_or(j),
                    None => j,
                },
            )
        })
        .collect();
    crashed_ids.sort_unstable();
    crashed_ids.dedup();
    let crashed_devices = crashed_ids.len();
    let mean_responder_weight = if rounds == 0 {
        0.0
    } else {
        records.iter().map(|r| r.responder_weight).sum::<f64>() / rounds as f64
    };
    let deadline_misses = records.iter().map(|r| r.count(DeviceOutcome::DeadlineMiss)).sum();
    let link_failures = records.iter().map(|r| r.count(DeviceOutcome::LinkFailed)).sum();
    ParticipationSummary {
        rounds,
        skipped_rounds,
        crashed_devices,
        mean_responder_weight,
        deadline_misses,
        link_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, outcomes: Vec<DeviceOutcome>, weight: f64) -> RoundParticipation {
        RoundParticipation {
            round,
            outcomes,
            responder_weight: weight,
            skipped: false,
            sampled: None,
        }
    }

    #[test]
    fn counts_and_fractions() {
        use DeviceOutcome::*;
        let r = record(1, vec![Responded, Crashed, Responded, NotSelected], 0.6);
        assert_eq!(r.responders(), 2);
        assert_eq!(r.count(Crashed), 1);
        assert!((r.responder_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_counts_crashes_in_dense_records() {
        use DeviceOutcome::*;
        let records = vec![
            record(1, vec![Responded, Responded, Responded], 1.0),
            record(2, vec![Responded, LinkFailed, Responded], 0.7),
            RoundParticipation {
                round: 3,
                outcomes: vec![Responded, Crashed, DeadlineMiss],
                responder_weight: 0.3,
                skipped: true,
                sampled: None,
            },
        ];
        let s = summarize(&records);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.skipped_rounds, 1);
        assert_eq!(s.crashed_devices, 1);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.link_failures, 1);
        assert!((s.mean_responder_weight - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_records_summarize_to_zero() {
        let s = summarize(&[]);
        assert_eq!(s.rounds, 0);
        assert_eq!(s.mean_responder_weight, 0.0);
    }

    #[test]
    fn summary_counts_distinct_crashes_across_compact_records() {
        use DeviceOutcome::*;
        // Compact (sampled) records: a crashed device appears only in
        // rounds that sample it. Device 28563 crashes in round 1, is
        // sampled crashed again in round 2, and the final round never
        // samples it — it must still count exactly once.
        let compact = |round, ids: Vec<u32>, outcomes, weight| RoundParticipation {
            round,
            outcomes,
            responder_weight: weight,
            skipped: false,
            sampled: Some(ids),
        };
        let records = vec![
            compact(1, vec![7, 28563, 91], vec![Responded, Crashed, Responded], 0.6),
            compact(2, vec![28563, 404], vec![Crashed, Responded], 0.4),
            compact(3, vec![12, 404], vec![Responded, Crashed], 0.3),
        ];
        let s = summarize(&records);
        assert_eq!(s.crashed_devices, 2, "28563 deduped across rounds, 404 added");
    }

    #[test]
    fn compact_records_address_devices_by_stable_id() {
        use DeviceOutcome::*;
        // Three devices sampled out of a large population: outcomes are
        // aligned with the sampled ids, everyone else was not selected.
        let r = RoundParticipation {
            round: 4,
            outcomes: vec![Responded, Crashed, Responded],
            responder_weight: 0.002,
            skipped: false,
            sampled: Some(vec![7, 99_321, 12]),
        };
        assert_eq!(r.outcome_of(7), Responded);
        assert_eq!(r.outcome_of(99_321), Crashed);
        assert_eq!(r.outcome_of(12), Responded);
        assert_eq!(r.outcome_of(0), NotSelected);
        assert_eq!(r.outcome_of(1_000_000), NotSelected);
        assert_eq!(r.responders(), 2);
        // No NotSelected entries in a compact record: the eligible set
        // is the sampled set.
        assert!((r.responder_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // Dense records keep the id-indexed lookup.
        let dense = record(1, vec![Responded, Offline], 0.5);
        assert_eq!(dense.outcome_of(1), Offline);
        assert_eq!(dense.outcome_of(5), NotSelected);
        // A compact record survives the serde roundtrip.
        let json = serde_json::to_string(&r).unwrap_or_default();
        let back: Result<RoundParticipation, _> = serde_json::from_str(&json);
        assert_eq!(back.ok(), Some(r));
    }

    #[test]
    fn outcomes_roundtrip_snake_case() {
        let r = RoundParticipation {
            round: 2,
            outcomes: vec![DeviceOutcome::Responded, DeviceOutcome::DeadlineMiss],
            responder_weight: 0.5,
            skipped: true,
            sampled: None,
        };
        let json = serde_json::to_string(&r).unwrap_or_default();
        assert!(json.contains("\"deadline_miss\""), "snake_case encoding missing: {json}");
        let back: Result<RoundParticipation, _> = serde_json::from_str(&json);
        assert_eq!(back.ok(), Some(r));
    }
}
