//! Deterministic fault injection and graceful degradation — `fedresil`.
//!
//! The paper's evaluation assumes every device finishes every round, but
//! its own premise — heterogeneous, unreliable edge devices — is exactly
//! the regime where devices crash, stall, and rejoin. This crate gives
//! the simulation a real fault model without giving up the repo's
//! determinism contract:
//!
//! * [`plan`] — a typed, serializable **fault schedule** per device
//!   (crash-at-round, offline windows with rejoin, compute slowdowns,
//!   flaky links) plus a seeded random-plan generator, so "20% of the
//!   fleet is unreliable" is a reproducible experiment, not a dice roll,
//! * [`policy`] — the server-side **degradation policies**: a retry /
//!   capped-exponential-backoff policy for transfers, a per-round
//!   simulated-time deadline, and a quorum rule deciding when a round
//!   with missing devices still aggregates (weights renormalized over
//!   the responders) versus being skipped-and-counted,
//! * [`participation`] — the per-round **participation record** (who
//!   responded, who crashed, who was offline, who missed the deadline)
//!   that runs carry in their `History`.
//!
//! Everything here is driven by seeds and round indices only — no wall
//! clocks, no ambient entropy — so a faulted run is bitwise-reproducible:
//! same seed + same fault plan ⇒ identical trajectory, identical
//! participation records, identical simulated time.
//!
//! Round indices in this crate are the **1-based global round `s`** of
//! Algorithm 1 (round 0 is the initial model and cannot fault); the net
//! runtime's internal 0-based wire round converts at the boundary.

#![warn(missing_docs)]

pub mod participation;
pub mod plan;
pub mod policy;

pub use participation::{summarize, DeviceOutcome, ParticipationSummary, RoundParticipation};
pub use plan::{stream_rng, DeviceFault, FaultPlan, FaultRates, PlannedFault};
pub use policy::{QuorumPolicy, Resilience, RetryPolicy};
