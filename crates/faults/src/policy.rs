//! Graceful-degradation policies: retry/backoff, round deadlines, and
//! quorum aggregation.
//!
//! These are the server-side half of the fault model: [`plan`] decides
//! what goes wrong, the policies here decide how the run degrades —
//! bounded retries instead of infinite retransmission, a simulated-time
//! deadline instead of waiting forever for a straggler, and a quorum
//! rule deciding when a partial round still aggregates versus being
//! skipped and counted.
//!
//! [`plan`]: crate::plan

use crate::plan::FaultPlan;
use serde::{Deserialize, Serialize};

/// Bounded-retry policy for one logical transfer, with optional capped
/// exponential backoff charged to simulated time.
///
/// The default reproduces the net runtime's historical hardcoded
/// behaviour exactly — up to 1000 retries, zero backoff — so existing
/// runs are bitwise-unchanged (adding a 0.0-second backoff leaves every
/// f64 delay bit-identical).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt before the transfer is declared
    /// failed.
    #[serde(default = "default_max_retries")]
    pub max_retries: u64,
    /// Backoff before the first retry, in simulated seconds (0 disables
    /// backoff entirely).
    #[serde(default)]
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each retry.
    #[serde(default = "default_backoff_multiplier")]
    pub backoff_multiplier: f64,
    /// Ceiling on any single backoff wait, in simulated seconds.
    #[serde(default = "default_max_backoff")]
    pub max_backoff_s: f64,
}

fn default_max_retries() -> u64 {
    1000
}
fn default_backoff_multiplier() -> f64 {
    2.0
}
fn default_max_backoff() -> f64 {
    f64::INFINITY
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: default_max_retries(),
            base_backoff_s: 0.0,
            backoff_multiplier: default_backoff_multiplier(),
            max_backoff_s: default_max_backoff(),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` attempts and no backoff.
    pub fn attempts(max_retries: u64) -> Self {
        RetryPolicy { max_retries, ..Default::default() }
    }

    /// Capped exponential backoff: `base`, `base·m`, `base·m²`, …
    pub fn exponential(max_retries: u64, base_backoff_s: f64, max_backoff_s: f64) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff_s,
            backoff_multiplier: default_backoff_multiplier(),
            max_backoff_s,
        }
    }

    /// The simulated-time wait before retry number `retry` (1-based):
    /// `min(base · multiplier^(retry−1), cap)`, and exactly 0.0 when
    /// backoff is disabled.
    pub fn backoff_before(&self, retry: u64) -> f64 {
        if self.base_backoff_s <= 0.0 || retry == 0 {
            return 0.0;
        }
        let exp = (retry - 1).min(1024) as i32;
        let raw = self.base_backoff_s * self.backoff_multiplier.powi(exp);
        raw.min(self.max_backoff_s)
    }
}

/// Minimum responder set for a round's aggregation to count.
///
/// Both conditions must hold; the default (any single responder) makes
/// quorum failures impossible in fault-free runs. A round failing quorum
/// is **skipped and counted**, never fatal: the global model is left
/// unchanged and training continues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuorumPolicy {
    /// Minimum responding fraction of the total federation aggregation
    /// weight (`Σ D_n/D` over responders), in `[0, 1]`.
    #[serde(default)]
    pub min_weight: f64,
    /// Minimum number of responding devices.
    #[serde(default = "default_min_responders")]
    pub min_responders: usize,
}

fn default_min_responders() -> usize {
    1
}

impl Default for QuorumPolicy {
    fn default() -> Self {
        QuorumPolicy { min_weight: 0.0, min_responders: default_min_responders() }
    }
}

impl QuorumPolicy {
    /// Require at least `fraction` of the federation weight to respond.
    pub fn weight_fraction(fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "quorum weight fraction must be in [0, 1]");
        QuorumPolicy { min_weight: fraction, min_responders: default_min_responders() }
    }

    /// Whether a responder set meets quorum.
    pub fn met(&self, responder_weight_fraction: f64, responders: usize) -> bool {
        responders >= self.min_responders.max(1)
            && responder_weight_fraction >= self.min_weight
            && responder_weight_fraction > 0.0
    }
}

/// The full resilience configuration of one run: what goes wrong (the
/// [`FaultPlan`]) and how the server degrades (deadline, quorum, panic
/// handling). Attaching a `Resilience` — even an all-default one —
/// switches a backend into graceful-degradation mode: device failures
/// become participation records instead of run-fatal errors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resilience {
    /// The fault schedule (empty = no injected faults).
    #[serde(default)]
    pub plan: FaultPlan,
    /// Per-round simulated-time deadline: devices finishing
    /// `download + compute + upload` after it are excluded from the
    /// round's aggregation. `None` waits for every reachable device.
    #[serde(default)]
    pub deadline_s: Option<f64>,
    /// When a round's responders fall below quorum the round is skipped
    /// (global model unchanged) and counted.
    #[serde(default)]
    pub quorum: QuorumPolicy,
    /// Treat a panicking device worker as a crashed participant
    /// (excluded from this and all later rounds) instead of aborting the
    /// run. Default `true`; set `false` to keep panics fatal, as they
    /// are without a `Resilience` at all.
    #[serde(default = "default_true")]
    pub crash_on_panic: bool,
}

fn default_true() -> bool {
    true
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            plan: FaultPlan::default(),
            deadline_s: None,
            quorum: QuorumPolicy::default(),
            crash_on_panic: true,
        }
    }
}

impl Resilience {
    /// Resilience around a fault plan, with default policies.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Resilience { plan, ..Default::default() }
    }

    /// Builder: set the per-round deadline.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        assert!(deadline_s > 0.0, "deadline must be positive");
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Builder: set the quorum policy.
    pub fn with_quorum(mut self, quorum: QuorumPolicy) -> Self {
        self.quorum = quorum;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_retry_matches_legacy_hardcoded_loop() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 1000);
        assert_eq!(p.backoff_before(1), 0.0);
        assert_eq!(p.backoff_before(500), 0.0);
    }

    #[test]
    fn exponential_backoff_doubles_then_caps() {
        let p = RetryPolicy::exponential(10, 0.1, 0.5);
        assert!((p.backoff_before(1) - 0.1).abs() < 1e-12);
        assert!((p.backoff_before(2) - 0.2).abs() < 1e-12);
        assert!((p.backoff_before(3) - 0.4).abs() < 1e-12);
        assert!((p.backoff_before(4) - 0.5).abs() < 1e-12); // capped
        assert!((p.backoff_before(60) - 0.5).abs() < 1e-12); // no overflow
        assert_eq!(p.backoff_before(0), 0.0);
    }

    #[test]
    fn quorum_default_accepts_any_single_responder() {
        let q = QuorumPolicy::default();
        assert!(q.met(0.01, 1));
        assert!(!q.met(0.0, 0));
        assert!(!q.met(0.0, 3), "zero responding weight can never aggregate");
    }

    #[test]
    fn quorum_weight_and_count_both_bind() {
        let q = QuorumPolicy { min_weight: 0.5, min_responders: 2 };
        assert!(q.met(0.6, 2));
        assert!(!q.met(0.6, 1)); // too few devices
        assert!(!q.met(0.4, 3)); // too little weight
    }

    #[test]
    fn resilience_roundtrips_and_defaults() {
        let r = Resilience::with_plan(FaultPlan::new().crash(1, 3))
            .with_deadline(0.75)
            .with_quorum(QuorumPolicy::weight_fraction(0.25));
        let json = serde_json::to_string(&r).unwrap_or_default();
        let back: Result<Resilience, _> = serde_json::from_str(&json);
        assert_eq!(back.ok(), Some(r));
        // `{}` gives the all-default resilience: crash_on_panic on.
        let d: Resilience = serde_json::from_str("{}").unwrap_or(Resilience {
            crash_on_panic: false,
            ..Default::default()
        });
        assert!(d.crash_on_panic);
        assert_eq!(d.deadline_s, None);
        assert!(d.plan.is_empty());
    }
}
