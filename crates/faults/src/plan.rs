//! The fault-schedule DSL: typed per-device fault plans and the seeded
//! random-plan generator.
//!
//! A [`FaultPlan`] is data, not behaviour — it answers point queries
//! ("is device 3 offline in round 5?", "what is device 1's effective
//! link drop probability this round?") that the runtime backends consult
//! each round. Plans serialize to JSON so a resilience scenario can be
//! checked into an experiment spec and replayed exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One typed fault on one device. Round indices are 1-based global
/// rounds (matching `History::records`); windows are inclusive on both
/// ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DeviceFault {
    /// The device dies at the start of `round` and never returns: it is
    /// excluded from `round` and every later round.
    CrashAtRound {
        /// First round the device is gone (1-based).
        round: usize,
    },
    /// The device is unreachable for rounds `from..=to` and rejoins at
    /// `to + 1` (the federated "device left the charger" case).
    OfflineWindow {
        /// First offline round (1-based).
        from: usize,
        /// Last offline round (inclusive).
        to: usize,
    },
    /// The device's compute time is multiplied by `mult` during rounds
    /// `from..=to` (thermal throttling, background load). Overlapping
    /// slow factors multiply.
    SlowFactor {
        /// Compute-time multiplier (≥ 1 for a slowdown).
        mult: f64,
        /// First affected round (1-based).
        from: usize,
        /// Last affected round (inclusive).
        to: usize,
    },
    /// The device's link drops each transmission attempt with
    /// probability `drop_prob` during rounds `from..=to`. Combines with
    /// the global link drop probability by taking the maximum.
    FlakyLink {
        /// Per-attempt drop probability in `[0, 1)`.
        drop_prob: f64,
        /// First affected round (1-based).
        from: usize,
        /// Last affected round (inclusive).
        to: usize,
    },
}

/// A [`DeviceFault`] bound to the device it afflicts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// **Stable device id** (`Device::id`, the id the device was created
    /// with) — never its spawn order or its position in a round's
    /// sampled participant set. The thread-per-device runtime spawns
    /// workers in id order so the two coincide there; the event-driven
    /// backend samples K of N devices per round and its sharded loop
    /// relies on plan queries staying keyed by this id, so a fault lands
    /// on the same device regardless of which rounds sample it.
    pub device: usize,
    /// The fault.
    pub fault: DeviceFault,
}

/// A full fault schedule: any number of faults over any devices.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Every planned fault. Order is irrelevant to the semantics.
    #[serde(default)]
    pub faults: Vec<PlannedFault>,
}

/// Per-device probabilities for [`FaultPlan::random`]. Each device
/// independently draws at most one fault of each kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a device crashes at some uniformly-drawn round.
    pub crash_prob: f64,
    /// Probability a device has one offline window.
    pub offline_prob: f64,
    /// Probability a device has one slow window.
    pub slow_prob: f64,
    /// Probability a device has one flaky-link window.
    pub flaky_prob: f64,
    /// Slow-window multipliers are drawn uniformly from `[2, max]`.
    pub max_slow_mult: f64,
    /// Flaky-window drop probabilities are drawn uniformly from
    /// `(0, max]`.
    pub max_drop_prob: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            crash_prob: 0.1,
            offline_prob: 0.1,
            slow_prob: 0.2,
            flaky_prob: 0.1,
            max_slow_mult: 10.0,
            max_drop_prob: 0.3,
        }
    }
}

/// Deterministic per-(round, device) RNG stream: mixes a master seed
/// with both indices via SplitMix64, so draws are independent of
/// arrival order and of every other stream. This is the same
/// construction as `fedprox_data::synthetic::device_rng`, extended to
/// two stream indices (the crates deliberately do not depend on each
/// other).
pub fn stream_rng(seed: u64, round: u64, device: u64) -> StdRng {
    let mut z = seed
        ^ round.wrapping_mul(0x9E3779B97F4A7C15)
        ^ device.wrapping_mul(0xD1B54A32D192ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

impl FaultPlan {
    /// An empty plan (no faults — every backend treats it exactly like
    /// no plan at all).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder: add a crash.
    pub fn crash(mut self, device: usize, round: usize) -> Self {
        assert!(round >= 1, "fault rounds are 1-based");
        self.faults.push(PlannedFault { device, fault: DeviceFault::CrashAtRound { round } });
        self
    }

    /// Builder: add an offline window (inclusive; rejoin at `to + 1`).
    pub fn offline(mut self, device: usize, from: usize, to: usize) -> Self {
        assert!(from >= 1 && from <= to, "offline window must be a non-empty 1-based range");
        self.faults.push(PlannedFault { device, fault: DeviceFault::OfflineWindow { from, to } });
        self
    }

    /// Builder: add a slow window.
    pub fn slow(mut self, device: usize, mult: f64, from: usize, to: usize) -> Self {
        assert!(mult > 0.0 && mult.is_finite(), "slow multiplier must be positive and finite");
        assert!(from >= 1 && from <= to, "slow window must be a non-empty 1-based range");
        self.faults
            .push(PlannedFault { device, fault: DeviceFault::SlowFactor { mult, from, to } });
        self
    }

    /// Builder: add a flaky-link window.
    pub fn flaky(mut self, device: usize, drop_prob: f64, from: usize, to: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "flaky drop probability must be in [0, 1)"
        );
        assert!(from >= 1 && from <= to, "flaky window must be a non-empty 1-based range");
        self.faults
            .push(PlannedFault { device, fault: DeviceFault::FlakyLink { drop_prob, from, to } });
        self
    }

    /// The round `device` crashes at, if any (the earliest, when several
    /// crashes were scheduled).
    pub fn crash_round(&self, device: usize) -> Option<usize> {
        self.faults
            .iter()
            .filter(|f| f.device == device)
            .filter_map(|f| match f.fault {
                DeviceFault::CrashAtRound { round } => Some(round),
                _ => None,
            })
            .min()
    }

    /// Whether `device` has crashed by global round `s` (1-based).
    pub fn is_crashed(&self, device: usize, s: usize) -> bool {
        self.crash_round(device).is_some_and(|r| s >= r)
    }

    /// Whether `device` is inside an offline window in round `s`.
    pub fn is_offline(&self, device: usize, s: usize) -> bool {
        self.faults.iter().filter(|f| f.device == device).any(|f| match f.fault {
            DeviceFault::OfflineWindow { from, to } => (from..=to).contains(&s),
            _ => false,
        })
    }

    /// The compute-time multiplier for `device` in round `s` (product of
    /// overlapping slow windows; 1.0 when none apply).
    pub fn slow_factor(&self, device: usize, s: usize) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.device == device)
            .filter_map(|f| match f.fault {
                DeviceFault::SlowFactor { mult, from, to } if (from..=to).contains(&s) => {
                    Some(mult)
                }
                _ => None,
            })
            .product()
    }

    /// The plan's per-attempt link drop probability for `device` in
    /// round `s` (max over overlapping flaky windows; 0.0 when none).
    pub fn drop_prob(&self, device: usize, s: usize) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.device == device)
            .filter_map(|f| match f.fault {
                DeviceFault::FlakyLink { drop_prob, from, to } if (from..=to).contains(&s) => {
                    Some(drop_prob)
                }
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Seeded random plan over `devices` devices and `rounds` rounds:
    /// each device independently draws at most one fault of each kind
    /// according to `rates`, from its own SplitMix64 stream, so the plan
    /// is identical for identical `(seed, devices, rounds, rates)`
    /// regardless of call order.
    pub fn random(seed: u64, devices: usize, rounds: usize, rates: &FaultRates) -> Self {
        let mut plan = FaultPlan::new();
        if rounds == 0 {
            return plan;
        }
        for d in 0..devices {
            let mut rng = stream_rng(seed ^ 0x4653_5241, d as u64, 0);
            if rates.crash_prob > 0.0 && rng.gen_range(0.0..1.0) < rates.crash_prob {
                let round = rng.gen_range(1..=rounds);
                plan = plan.crash(d, round);
            }
            if rates.offline_prob > 0.0 && rng.gen_range(0.0..1.0) < rates.offline_prob {
                let from = rng.gen_range(1..=rounds);
                let to = rng.gen_range(from..=rounds);
                plan = plan.offline(d, from, to);
            }
            if rates.slow_prob > 0.0 && rng.gen_range(0.0..1.0) < rates.slow_prob {
                let from = rng.gen_range(1..=rounds);
                let to = rng.gen_range(from..=rounds);
                let mult = rng.gen_range(2.0..=rates.max_slow_mult.max(2.0));
                plan = plan.slow(d, mult, from, to);
            }
            let drop_cap = rates.max_drop_prob.clamp(0.0, 0.95);
            if rates.flaky_prob > 0.0
                && drop_cap > 0.0
                && rng.gen_range(0.0..1.0) < rates.flaky_prob
            {
                let from = rng.gen_range(1..=rounds);
                let to = rng.gen_range(from..=rounds);
                let p = rng.gen_range(0.0..drop_cap);
                plan = plan.flaky(d, p, from, to);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_is_permanent_from_its_round() {
        let plan = FaultPlan::new().crash(2, 3);
        assert_eq!(plan.crash_round(2), Some(3));
        assert!(!plan.is_crashed(2, 1));
        assert!(!plan.is_crashed(2, 2));
        assert!(plan.is_crashed(2, 3));
        assert!(plan.is_crashed(2, 100));
        assert!(!plan.is_crashed(0, 100));
        // Earliest crash wins when several were scheduled.
        let plan = plan.crash(2, 1);
        assert_eq!(plan.crash_round(2), Some(1));
    }

    #[test]
    fn offline_window_is_inclusive_and_rejoins() {
        let plan = FaultPlan::new().offline(1, 2, 4);
        assert!(!plan.is_offline(1, 1));
        assert!(plan.is_offline(1, 2));
        assert!(plan.is_offline(1, 4));
        assert!(!plan.is_offline(1, 5)); // rejoined
        assert!(!plan.is_offline(0, 3));
    }

    #[test]
    fn slow_factors_multiply_and_drop_probs_max() {
        let plan = FaultPlan::new()
            .slow(0, 2.0, 1, 5)
            .slow(0, 3.0, 4, 6)
            .flaky(0, 0.2, 1, 3)
            .flaky(0, 0.5, 3, 4);
        assert_eq!(plan.slow_factor(0, 1), 2.0);
        assert_eq!(plan.slow_factor(0, 4), 6.0); // overlap: 2 × 3
        assert_eq!(plan.slow_factor(0, 6), 3.0);
        assert_eq!(plan.slow_factor(0, 7), 1.0);
        assert_eq!(plan.drop_prob(0, 1), 0.2);
        assert_eq!(plan.drop_prob(0, 3), 0.5); // overlap: max
        assert_eq!(plan.drop_prob(0, 5), 0.0);
        assert_eq!(plan.slow_factor(1, 4), 1.0);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::new()
            .crash(0, 3)
            .offline(1, 2, 4)
            .slow(2, 5.0, 1, 10)
            .flaky(3, 0.25, 2, 8);
        let json = serde_json::to_string(&plan).unwrap_or_default();
        assert!(json.contains("crash_at_round"), "tagged encoding missing: {json}");
        let back: FaultPlan = serde_json::from_str(&json).unwrap_or_default();
        assert_eq!(back, plan);
        // An empty JSON object parses as an empty plan.
        let empty: FaultPlan = serde_json::from_str("{}").unwrap_or_default();
        assert!(empty.is_empty());
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let rates = FaultRates { crash_prob: 0.5, ..Default::default() };
        let a = FaultPlan::random(7, 20, 10, &rates);
        let b = FaultPlan::random(7, 20, 10, &rates);
        assert_eq!(a, b, "same seed must give the same plan");
        let c = FaultPlan::random(8, 20, 10, &rates);
        assert_ne!(a, c, "different seeds should differ (20 devices at 50% crash)");
        assert!(!a.is_empty(), "50% crash over 20 devices drew nothing");
        // Every scheduled fault stays inside the round horizon.
        for f in &a.faults {
            match f.fault {
                DeviceFault::CrashAtRound { round } => assert!((1..=10).contains(&round)),
                DeviceFault::OfflineWindow { from, to }
                | DeviceFault::SlowFactor { from, to, .. }
                | DeviceFault::FlakyLink { from, to, .. } => {
                    assert!(from >= 1 && from <= to && to <= 10);
                }
            }
        }
    }

    #[test]
    fn zero_rates_give_an_empty_plan() {
        let rates = FaultRates {
            crash_prob: 0.0,
            offline_prob: 0.0,
            slow_prob: 0.0,
            flaky_prob: 0.0,
            ..Default::default()
        };
        assert!(FaultPlan::random(1, 50, 10, &rates).is_empty());
        assert!(FaultPlan::random(1, 50, 0, &FaultRates::default()).is_empty());
    }

    #[test]
    fn stream_rng_is_order_independent() {
        let draw = |r: u64, d: u64| stream_rng(9, r, d).gen_range(0.0..1.0);
        let a = (draw(1, 0), draw(1, 1), draw(2, 0));
        let b = (draw(1, 0), draw(1, 1), draw(2, 0));
        assert_eq!(a, b);
        assert_ne!(draw(1, 0), draw(1, 1), "streams must be independent");
        assert_ne!(draw(1, 0), draw(2, 0), "streams must be independent");
    }
}
