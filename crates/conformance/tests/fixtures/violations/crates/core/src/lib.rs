//! Fixture exercising every D/P/F rule: each block pairs a positive
//! (caught) site with an allow-annotated negative (suppressed) site.
//! Line numbers are asserted exactly by `tests/engine.rs` — edit with
//! care. Never compiled by cargo, only scanned by `engine::analyze`.

use std::collections::HashMap; // line 6: D1 positive (module scope)
// fedlint: allow(unordered-iteration) — fixture: suppressed module-scope import
use std::collections::HashSet; // line 8: D1 negative (annotated)

/// Hosts the in-function D1, D3 and P2 positives.
pub fn entry(xs: &[f64], i: usize) -> f64 {
    let _ = helper(xs);
    let m: HashMap<u32, f64> = HashMap::new(); // line 13: D1 positive
    let s: f64 = m.values().sum(); // line 14: D3 positive
    // fedlint: allow(unordered-float-reduction) — fixture: order-insensitive by construction
    let t: f64 = m.values().sum(); // line 16: D3 negative
    s + t + xs[i] // line 17: P2 positive
}

/// P2 negative host.
pub fn entry_allowed(xs: &[f64], i: usize) -> f64 {
    // fedlint: allow(index-panic) — fixture: caller guarantees bounds
    xs[i] // line 23: P2 negative (annotated)
}

fn helper(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap() // line 27: P1 positive, chain entry -> helper
}

/// D2 positive host.
pub fn spawn_unordered() -> i32 {
    let h = std::thread::spawn(|| 1); // line 32: D2 positive
    h.join().unwrap_or(0)
}

/// D2 negative host.
pub fn spawn_ordered() -> i32 {
    // fedlint: allow(spawn-ordering) — fixture: results keyed by id
    let h = std::thread::spawn(|| 1); // line 39: D2 negative (annotated)
    h.join().unwrap_or(0)
}

/// P1 negative: the annotation also satisfies panic-path and syncs F3.
#[allow(clippy::unwrap_used)] // line 44: F3 negative (synced by the annotation below)
pub fn annotated_panic() -> u32 {
    // fedlint: allow(no-panic) — fixture: value is a compile-time constant
    Some(1).unwrap() // line 47: P1 negative (annotated)
}

#[allow(clippy::expect_used)] // line 50: F3 positive (no adjacent justification)
pub fn clippy_unsynced() -> u32 {
    1
}

#[cfg(feature = "ghost")] // line 55: F1 positive (feature not declared)
pub fn gated() {}

// fedlint: allow(unknown-feature) — fixture: reserved for a future backend
#[cfg(feature = "future")] // line 59: F1 negative (annotated)
pub fn gated_future() {}

#[cfg(feature = "std")] // line 62: F1 clean (declared in Cargo.toml)
pub fn gated_std() {}

/// F4 positive host: a runtime collector call with no feature gate.
pub fn prof_ungated() {
    fedprox_telemetry::collector::arm(); // line 67: F4 positive
}

/// F4 clean: the call sits behind the telemetry feature gate.
#[cfg(feature = "telemetry")] // line 71: F4 gate (and F1 clean — declared)
pub fn prof_gated() {
    fedprox_telemetry::collector::arm(); // line 73: F4 clean (gated)
}

/// F4 negative host.
pub fn prof_allowed() {
    // fedlint: allow(telemetry-gate) — fixture: armed only from test harnesses
    fedprox_telemetry::collector::arm(); // line 79: F4 negative (annotated)
}

/// A `not(feature)` arm compiles the call *into* default builds — the
/// exact bug the rule exists to catch — so it must not satisfy the gate.
#[cfg(not(feature = "telemetry"))] // line 84: no gate (negative cfg)
pub fn prof_not_gated() {
    fedprox_telemetry::collector::arm(); // line 86: F4 positive (not() is no gate)
}
