//! Fixture codec file: the `sample_events` list the F5 rule reads.

use crate::event::Event;

fn sample_events() -> Vec<Event> {
    vec![Event::Covered { round: 1 }]
}
