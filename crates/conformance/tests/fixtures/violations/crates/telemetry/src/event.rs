//! Seeded F5 sites: one variant with a codec fixture, one without, one
//! waived by annotation.

/// Fixture event model.
pub enum Event {
    /// Constructed in `sample_events` — clean.
    Covered { round: u32 },
    /// Missing from `sample_events` — the F5 positive site (line 9).
    Uncovered { round: u32 },
    // fedlint: allow(event-fixture-sync) — seeded waiver: round-trip exercised by a dedicated test
    Waived,
}
