//! Fixture tests: known-bad snippets per rule, asserting the exact rule
//! id and 1-indexed line of every finding, plus the annotation escape
//! hatch and the string-literal false-positive guard.

use fedprox_conformance::{check_source, Rule, RuleSet};

fn findings(source: &str, rules: RuleSet) -> Vec<(Rule, usize)> {
    let report = check_source("fixture.rs", source, rules);
    assert!(
        report.bad_annotations.is_empty(),
        "unexpected malformed annotations: {:?}",
        report.bad_annotations
    );
    report.violations.iter().map(|v| (v.rule, v.line)).collect()
}

#[test]
fn r1_no_panic_flags_every_shape() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    panic!(\"boom\");
    todo!();
    unimplemented!()
}
";
    assert_eq!(
        findings(src, RuleSet::none().with(Rule::NoPanic)),
        vec![
            (Rule::NoPanic, 2),
            (Rule::NoPanic, 3),
            (Rule::NoPanic, 4),
            (Rule::NoPanic, 5),
            (Rule::NoPanic, 6),
        ]
    );
}

#[test]
fn r2_no_ambient_entropy() {
    let src = "\
fn f() {
    let mut rng = rand::thread_rng();
    let r2 = StdRng::from_entropy();
    let t = std::time::SystemTime::now();
}
";
    assert_eq!(
        findings(src, RuleSet::none().with(Rule::NoAmbientEntropy)),
        vec![
            (Rule::NoAmbientEntropy, 2),
            (Rule::NoAmbientEntropy, 3),
            (Rule::NoAmbientEntropy, 4),
        ]
    );
}

#[test]
fn r3_no_debug_print() {
    let src = "\
fn f(x: u32) {
    println!(\"x = {x}\");
    eprintln!(\"x = {x}\");
    let y = dbg!(x);
}
";
    assert_eq!(
        findings(src, RuleSet::none().with(Rule::NoDebugPrint)),
        vec![
            (Rule::NoDebugPrint, 2),
            (Rule::NoDebugPrint, 3),
            (Rule::NoDebugPrint, 4),
        ]
    );
}

#[test]
fn r4_unsafe_needs_safety_comment() {
    let bad = "\
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
";
    assert_eq!(
        findings(bad, RuleSet::none().with(Rule::SafetyComment)),
        vec![(Rule::SafetyComment, 2)]
    );

    let good = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid and aligned.
    unsafe { *p }
}
";
    assert_eq!(findings(good, RuleSet::none().with(Rule::SafetyComment)), vec![]);
}

#[test]
fn r5_lossy_casts_in_hot_paths() {
    let src = "\
fn f(x: f64, i: isize) -> f64 {
    let a = x as f32;
    let idx = i as usize;
    a as f64
}
";
    assert_eq!(
        findings(src, RuleSet::none().with(Rule::LossyCast)),
        vec![(Rule::LossyCast, 2), (Rule::LossyCast, 3)]
    );
}

#[test]
fn r6_wall_clock_flags_instant_and_system_time() {
    let src = "\
fn f() {
    let t0 = std::time::Instant::now();
    let t1 = Instant::now();
    let wall = std::time::SystemTime::now();
    let d = t0.elapsed();
}
";
    assert_eq!(
        findings(src, RuleSet::none().with(Rule::WallClock)),
        vec![
            (Rule::WallClock, 2),
            (Rule::WallClock, 3),
            (Rule::WallClock, 4),
        ]
    );
    // Pin the stable rule id used in reports and allow annotations.
    assert_eq!(Rule::WallClock.id(), "no-wall-clock");
    assert_eq!(Rule::from_id("no-wall-clock"), Some(Rule::WallClock));
}

#[test]
fn r6_wall_clock_annotation_and_prose_are_exempt() {
    let allowed = "\
fn f() {
    // fedlint: allow(no-wall-clock) — span timing is observability-only
    let t0 = std::time::Instant::now();
}
";
    let report = check_source("fixture.rs", allowed, RuleSet::none().with(Rule::WallClock));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].rule, Rule::WallClock);

    // Identifiers merely *containing* the words, and strings/comments
    // mentioning them, never trigger.
    let prose = "\
fn f() {
    // Instant and SystemTime in prose are fine.
    let my_instant_count = 3;
    let s = \"Instant::now() SystemTime::now()\";
    let _ = (my_instant_count, s);
}
";
    let report = check_source("fixture.rs", prose, RuleSet::none().with(Rule::WallClock));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn annotation_suppresses_and_is_counted() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    // fedlint: allow(no-panic) — invariant: x is Some by construction
    x.unwrap()
}
";
    let report = check_source("fixture.rs", src, RuleSet::none().with(Rule::NoPanic));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].rule, Rule::NoPanic);
    assert_eq!(report.allowed[0].line, 3);
    assert_eq!(report.allowed[0].reason, "invariant: x is Some by construction");
    assert!(report.is_clean());
}

#[test]
fn annotation_on_same_line_works_and_double_dash_accepted() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // fedlint: allow(no-panic) -- fixture\n";
    let report = check_source("fixture.rs", src, RuleSet::none().with(Rule::NoPanic));
    assert!(report.violations.is_empty());
    assert_eq!(report.allowed.len(), 1);
}

#[test]
fn annotation_for_wrong_rule_does_not_suppress() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    // fedlint: allow(no-debug-print) — wrong rule on purpose
    x.unwrap()
}
";
    let report = check_source("fixture.rs", src, RuleSet::none().with(Rule::NoPanic));
    assert_eq!(
        report.violations.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
        vec![(Rule::NoPanic, 3)]
    );
}

#[test]
fn malformed_annotation_is_itself_a_finding() {
    // Missing the dash-separated reason.
    let src = "\
fn f(x: Option<u32>) -> u32 {
    // fedlint: allow(no-panic)
    x.unwrap()
}
";
    let report = check_source("fixture.rs", src, RuleSet::none().with(Rule::NoPanic));
    assert!(!report.bad_annotations.is_empty());
    assert!(!report.is_clean());
}

#[test]
fn string_literals_and_comments_never_trigger() {
    let src = "\
fn f() -> String {
    // This mentions unwrap() and panic! and println! in prose.
    let a = \"x.unwrap()\";
    let b = \"panic!(\\\"boom\\\")\";
    let c = r#\"thread_rng() println!(\"hi\")\"#;
    format!(\"{a}{b}{c}\")
}
";
    let report = check_source("fixture.rs", src, RuleSet::all());
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn test_modules_are_exempt_from_no_panic() {
    let src = "\
pub fn lib_code(x: Option<u32>) -> Option<u32> {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn uses_unwrap_freely() {
        super::lib_code(Some(1)).unwrap();
        assert!(true);
    }
}
";
    let report = check_source("fixture.rs", src, RuleSet::none().with(Rule::NoPanic));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn unwrap_or_and_friends_are_not_flagged() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_default();
    let c = x.unwrap_or_else(|| 1);
    a + b + c
}
";
    let report = check_source("fixture.rs", src, RuleSet::none().with(Rule::NoPanic));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}
