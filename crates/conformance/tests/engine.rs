//! Engine tests over the fixture mini-workspace in
//! `tests/fixtures/violations/`: every D/P/F rule must catch its
//! positive site at the exact line, honour its allow-annotated
//! negative, and a seeded regression must fail the gate.

// Module-level helpers sit outside #[test] fns, where clippy.toml's
// allow-expect-in-tests does not reach.
#![allow(clippy::expect_used)]

use fedprox_conformance::engine::{self, Analysis, Baseline};
use fedprox_conformance::Rule;
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn fixture_analysis() -> Analysis {
    engine::analyze(&fixture_root()).expect("analyze fixture workspace")
}

const LIB: &str = "crates/core/src/lib.rs";
const MANIFEST: &str = "crates/core/Cargo.toml";

/// The finding for (rule, file, line), if any.
fn find<'a>(
    analysis: &'a Analysis,
    rule: Rule,
    file: &str,
    line: usize,
) -> Option<&'a engine::Finding> {
    analysis
        .findings
        .iter()
        .find(|f| f.rule == rule && f.file == file && f.line == line)
}

/// Assert a violation (not allowed) exists at the site.
fn assert_violation(analysis: &Analysis, rule: Rule, line: usize) -> &engine::Finding {
    let f = find(analysis, rule, LIB, line)
        .unwrap_or_else(|| panic!("expected {} violation at {LIB}:{line}", rule.id()));
    assert!(f.allowed.is_none(), "{} at line {line} should be a violation", rule.id());
    f
}

/// Assert the site is annotation-suppressed.
fn assert_allowed(analysis: &Analysis, rule: Rule, line: usize) {
    let f = find(analysis, rule, LIB, line)
        .unwrap_or_else(|| panic!("expected allowed {} site at {LIB}:{line}", rule.id()));
    assert!(
        f.allowed.is_some(),
        "{} at line {line} should be suppressed by its annotation",
        rule.id()
    );
}

#[test]
fn fixture_has_no_malformed_annotations() {
    let analysis = fixture_analysis();
    assert!(
        analysis.bad_annotations.is_empty(),
        "fixture annotations must parse: {:?}",
        analysis.bad_annotations
    );
}

#[test]
fn d1_unordered_iteration_positive_and_negative() {
    let analysis = fixture_analysis();
    assert_violation(&analysis, Rule::UnorderedIteration, 6); // module-scope use
    assert_violation(&analysis, Rule::UnorderedIteration, 13); // in-function
    assert_allowed(&analysis, Rule::UnorderedIteration, 8);
}

#[test]
fn d2_spawn_ordering_positive_and_negative() {
    let analysis = fixture_analysis();
    let f = assert_violation(&analysis, Rule::SpawnOrdering, 32);
    assert_eq!(f.chain, vec!["core::spawn_unordered".to_string()]);
    assert_allowed(&analysis, Rule::SpawnOrdering, 39);
}

#[test]
fn d3_unordered_float_reduction_positive_and_negative() {
    let analysis = fixture_analysis();
    let f = assert_violation(&analysis, Rule::UnorderedFloatReduction, 14);
    assert_eq!(f.chain, vec!["core::entry".to_string()]);
    assert_allowed(&analysis, Rule::UnorderedFloatReduction, 16);
}

#[test]
fn p1_panic_path_reports_shortest_public_chain() {
    let analysis = fixture_analysis();
    let f = assert_violation(&analysis, Rule::PanicPath, 27);
    assert_eq!(
        f.chain,
        vec!["core::entry".to_string(), "core::helper".to_string()],
        "private helper must be reported via its public entry point"
    );
    // The annotated unwrap is suppressed — and the no-panic annotation
    // satisfies panic-path too, so one justification covers both views.
    assert_allowed(&analysis, Rule::PanicPath, 47);
    assert_allowed(&analysis, Rule::NoPanic, 47);
}

#[test]
fn p2_index_panic_positive_and_negative() {
    let analysis = fixture_analysis();
    let f = assert_violation(&analysis, Rule::IndexPanic, 17);
    assert_eq!(f.chain, vec!["core::entry".to_string()]);
    assert_allowed(&analysis, Rule::IndexPanic, 23);
}

#[test]
fn f1_unknown_feature_positive_and_negative() {
    let analysis = fixture_analysis();
    let f = assert_violation(&analysis, Rule::UnknownFeature, 55);
    assert!(f.message.contains("ghost"), "message names the feature: {}", f.message);
    assert_allowed(&analysis, Rule::UnknownFeature, 59);
    // Declared feature: clean.
    assert!(find(&analysis, Rule::UnknownFeature, LIB, 62).is_none());
}

#[test]
fn f2_feature_chain_flags_only_the_broken_forward() {
    let analysis = fixture_analysis();
    let broken: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::FeatureChain)
        .collect();
    assert_eq!(broken.len(), 1, "exactly the `broken` chain: {broken:?}");
    assert_eq!(broken[0].file, MANIFEST);
    assert!(
        broken[0].message.contains("nodep"),
        "message names the missing dependency: {}",
        broken[0].message
    );
}

#[test]
fn f3_clippy_allow_sync_positive_and_negative() {
    let analysis = fixture_analysis();
    assert_violation(&analysis, Rule::ClippyAllowSync, 50);
    // Synced clippy allow (adjacent no-panic annotation): no finding.
    assert!(find(&analysis, Rule::ClippyAllowSync, LIB, 44).is_none());
}

#[test]
fn f4_telemetry_gate_positive_negative_and_gated() {
    let analysis = fixture_analysis();
    // Ungated call in plain library code.
    assert_violation(&analysis, Rule::TelemetryGate, 67);
    // A `not(feature = "telemetry")` arm is not a gate: that code is
    // exactly what default builds compile in.
    assert_violation(&analysis, Rule::TelemetryGate, 86);
    assert_allowed(&analysis, Rule::TelemetryGate, 79);
    // Behind a positive feature gate: clean.
    assert!(find(&analysis, Rule::TelemetryGate, LIB, 73).is_none());
}

#[test]
fn f5_event_fixture_sync_positive_negative_and_waived() {
    let analysis = fixture_analysis();
    const EVENTS: &str = "crates/telemetry/src/event.rs";
    let f = find(&analysis, Rule::EventFixtureSync, EVENTS, 9)
        .expect("Uncovered variant must be flagged");
    assert!(f.allowed.is_none());
    assert!(f.message.contains("Uncovered"), "message names the variant: {}", f.message);
    // Constructed in sample_events: clean.
    assert!(find(&analysis, Rule::EventFixtureSync, EVENTS, 7).is_none());
    // Annotated waiver: suppressed, not a violation.
    let w = find(&analysis, Rule::EventFixtureSync, EVENTS, 11)
        .expect("Waived variant still appears as an allowed site");
    assert!(w.allowed.is_some());
}

#[test]
fn seeded_fixture_regression_fails_an_empty_baseline_gate() {
    let analysis = fixture_analysis();
    // An empty baseline means every budget is zero — the fixture's
    // seeded violations must breach it (this is what makes CI exit
    // nonzero when a regression lands without a baseline bump).
    let empty = Baseline::default();
    let result = engine::gate(&analysis, &empty);
    assert!(!result.ok(), "seeded violations must fail a zero-budget gate");
    let text = result.breaches.join("\n");
    for id in ["index-panic", "panic-path", "spawn-ordering", "unordered-iteration"] {
        assert!(text.contains(id), "breach list should mention {id}:\n{text}");
    }
}

#[test]
fn fixture_baseline_roundtrip_gates_clean() {
    let analysis = fixture_analysis();
    // A baseline captured from the same analysis must pass, including
    // after a serialize/parse round-trip.
    let baseline = Baseline::from_analysis(&analysis);
    let reparsed = Baseline::parse(&baseline.emit()).expect("parse emitted baseline");
    assert!(engine::gate(&analysis, &reparsed).ok());
}
