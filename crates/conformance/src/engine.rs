//! The fedlint v2 analysis engine.
//!
//! Pipeline: lexer (masked text) → [`crate::parser`] (items) →
//! [`crate::callgraph`] (workspace call graph) → rules. The engine runs
//! three layers over one walk of `crates/*/src/**.rs`:
//!
//! 1. the line-local R1–R6 rules via [`crate::check_source`] (same
//!    results as fedlint v1);
//! 2. the graph-aware D/P families — determinism taint and
//!    panic-reachability — which only fire on sites *reachable from a
//!    public API* of a strict-path crate, and report the shortest call
//!    chain that gets there;
//! 3. the F family over `Cargo.toml` manifests — feature-gate
//!    consistency between `cfg(feature = …)` uses, feature definitions,
//!    and cross-crate forwarding chains.
//!
//! Results serialize to the `fedlint/v1` JSON schema and gate against a
//! committed baseline (`LINT_BASELINE.json`) of per-rule budgets, so
//! the violation count can only go down: lowering a budget is a
//! one-line diff, raising one is a reviewed decision.

use crate::callgraph::{self, CallGraph, Reachability, SourceFile};
use crate::json;
use crate::lexer;
use crate::manifest::{self, Manifest};
use crate::parser;
use crate::{check_source, rules_for_crate, Rule, Violation};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose code feeds the bitwise-deterministic training path: the
/// D and P1 rules apply to reachable code here.
pub const STRICT_CRATES: &[&str] = &["tensor", "optim", "net", "core"];

/// Crates where an indexing panic crosses the device-actor boundary:
/// the P2 rule applies here.
pub const INDEX_CRATES: &[&str] = &["net", "core"];

/// Report schema identifier.
pub const SCHEMA: &str = "fedlint/v1";

/// One engine finding: a violation or an annotation-suppressed site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Shortest public-API call chain to the site's function (qualified
    /// names, entry first). Empty when not applicable.
    pub chain: Vec<String>,
    /// `Some(reason)` when a `fedlint: allow(…)` annotation suppresses
    /// the site.
    pub allowed: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}:{}: {}", self.rule.id(), self.file, self.line, self.message)?;
        if !self.chain.is_empty() {
            write!(f, "\n    via {}", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// Violation/allowed tallies for one rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Unsuppressed violations.
    pub violations: u64,
    /// Annotation-suppressed sites.
    pub allowed: u64,
}

/// Full result of analyzing a workspace.
#[derive(Debug)]
pub struct Analysis {
    /// All findings (violations and allowed sites), sorted by
    /// (file, line, rule id).
    pub findings: Vec<Finding>,
    /// Malformed `fedlint:` annotations — always gate failures.
    pub bad_annotations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The analyzed sources (graph node indices point into this).
    pub files: Vec<SourceFile>,
    /// The workspace call graph.
    pub graph: CallGraph,
    /// Public-API entry node ids used for reachability.
    pub entries: Vec<usize>,
    /// Reachability from those entries.
    pub reach: Reachability,
}

impl Analysis {
    /// Per-rule tallies, keyed by rule id, covering every rule (zero
    /// entries included so baselines are exhaustive).
    pub fn counts(&self) -> BTreeMap<&'static str, Counts> {
        let mut map: BTreeMap<&'static str, Counts> = BTreeMap::new();
        for rule in crate::ALL_RULES {
            map.insert(rule.id(), Counts::default());
        }
        for f in &self.findings {
            let entry = map.entry(f.rule.id()).or_default();
            if f.allowed.is_some() {
                entry.allowed += 1;
            } else {
                entry.violations += 1;
            }
        }
        map
    }

    /// Unsuppressed violations only.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// Serialize to the `fedlint/v1` JSON schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"graph\": {{\"nodes\": {}, \"edges\": {}, \"entries\": {}}},\n",
            self.graph.nodes.len(),
            self.graph.edge_count(),
            self.entries.len()
        ));
        out.push_str("  \"counts\": {\n");
        let counts = self.counts();
        let mut first = true;
        for (id, c) in &counts {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{id}\": {{\"violations\": {}, \"allowed\": {}}}",
                c.violations, c.allowed
            ));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let chain = f
                .chain
                .iter()
                .map(|s| format!("\"{}\"", json::escape(s)))
                .collect::<Vec<_>>()
                .join(", ");
            let reason = match &f.allowed {
                Some(r) => format!(", \"reason\": \"{}\"", json::escape(r)),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"allowed\": {}, \
                 \"message\": \"{}\", \"chain\": [{chain}]{reason}}}{}\n",
                f.rule.id(),
                json::escape(&f.file),
                f.line,
                f.allowed.is_some(),
                json::escape(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"bad_annotations\": [\n");
        for (i, v) in self.bad_annotations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
                json::escape(&v.file),
                v.line,
                json::escape(&v.message),
                if i + 1 < self.bad_annotations.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Baseline + gate
// ---------------------------------------------------------------------------

/// A committed allow-budget: per-rule maxima for violations and
/// annotated allowances.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Rule id → budget.
    pub budgets: BTreeMap<String, Counts>,
}

impl Baseline {
    /// Snapshot the current counts as a baseline.
    pub fn from_analysis(analysis: &Analysis) -> Baseline {
        Baseline {
            budgets: analysis
                .counts()
                .into_iter()
                .map(|(id, c)| (id.to_string(), c))
                .collect(),
        }
    }

    /// Parse a committed baseline document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = json::parse(text)?;
        let schema = v.get("schema").and_then(json::Value::as_str);
        if schema != Some(SCHEMA) {
            return Err(format!("baseline schema must be \"{SCHEMA}\", got {schema:?}"));
        }
        let budgets = v
            .get("budgets")
            .and_then(json::Value::as_obj)
            .ok_or_else(|| "baseline missing \"budgets\" object".to_string())?;
        let mut out = Baseline::default();
        for (id, entry) in budgets {
            if Rule::from_id(id).is_none() {
                return Err(format!("baseline budget for unknown rule `{id}`"));
            }
            let violations = entry
                .get("violations")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("budget `{id}` missing numeric \"violations\""))?;
            let allowed = entry
                .get("allowed")
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("budget `{id}` missing numeric \"allowed\""))?;
            out.budgets.insert(id.clone(), Counts { violations, allowed });
        }
        Ok(out)
    }

    /// Serialize for committing.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"budgets\": {\n");
        let mut first = true;
        for (id, c) in &self.budgets {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    \"{id}\": {{\"violations\": {}, \"allowed\": {}}}",
                c.violations, c.allowed
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Result of gating an analysis against a baseline.
#[derive(Debug, Clone, Default)]
pub struct GateResult {
    /// One line per breach; empty means the gate passes.
    pub breaches: Vec<String>,
}

impl GateResult {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.breaches.is_empty()
    }
}

/// Compare current counts against the committed budgets. A rule absent
/// from the baseline has budget zero, so *new* rule families gate
/// automatically; counts below budget pass (and invite a budget cut).
pub fn gate(analysis: &Analysis, baseline: &Baseline) -> GateResult {
    let mut result = GateResult::default();
    for v in &analysis.bad_annotations {
        result.breaches.push(format!("malformed annotation: {v}"));
    }
    let zero = Counts::default();
    for (id, current) in analysis.counts() {
        let budget = baseline.budgets.get(id).unwrap_or(&zero);
        if current.violations > budget.violations {
            result.breaches.push(format!(
                "{id}: {} violation(s) exceed budget {}",
                current.violations, budget.violations
            ));
        }
        if current.allowed > budget.allowed {
            result.breaches.push(format!(
                "{id}: {} annotated allowance(s) exceed budget {} — allowances are \
                 budgeted so the escape hatch cannot silently grow",
                current.allowed, budget.allowed
            ));
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Workspace analysis
// ---------------------------------------------------------------------------

/// Analyze a workspace root (a directory with `crates/*/src`).
pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
    let (files, manifests) = load_workspace(root)?;
    let pkg_idents: BTreeMap<String, String> = manifests
        .iter()
        .filter_map(|(dir, m)| {
            m.package_name.as_ref().map(|p| (p.replace('-', "_"), dir.clone()))
        })
        .collect();
    let graph = callgraph::build(&files, &pkg_idents);

    // Public-API entries: pub or trait-callable fns in strict-crate lib
    // code. Trait impls count because a caller can reach them through
    // the trait without any `pub` on the fn itself.
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            STRICT_CRATES.contains(&n.crate_name.as_str()) && (n.public || n.trait_callable)
        })
        .map(|(id, _)| id)
        .collect();
    let reach = graph.reachability(&entries);

    let mut analysis = Analysis {
        findings: Vec::new(),
        bad_annotations: Vec::new(),
        files_scanned: files.len(),
        files,
        graph,
        entries,
        reach,
    };

    lexer_rules(&mut analysis);
    determinism_and_panic_rules(&mut analysis);
    feature_rules(&mut analysis, root, &manifests);
    clippy_sync_rule(&mut analysis);
    telemetry_gate_rule(&mut analysis);
    event_fixture_sync_rule(&mut analysis);

    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule.id()).cmp(&(&b.file, b.line, b.rule.id())));
    Ok(analysis)
}

/// Sources plus per-crate-directory manifests, as loaded from `crates/*`.
type LoadedWorkspace = (Vec<SourceFile>, Vec<(String, Manifest)>);

/// Load every `crates/*/src/**.rs` plus the crate manifests.
fn load_workspace(root: &Path) -> std::io::Result<LoadedWorkspace> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest_path = crate_dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest_path) {
            manifests.push((name.clone(), manifest::parse(&text)));
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for path in crate::rust_files(&src)? {
            let source = std::fs::read_to_string(&path)?;
            let scanned = lexer::scan(&source);
            let parsed = parser::parse(&source, &scanned);
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            let is_bin = path.strip_prefix(&src).is_ok_and(|rel| rel.starts_with("bin"));
            files.push(SourceFile {
                crate_name: name.clone(),
                display,
                is_bin,
                source,
                scanned,
                parsed,
            });
        }
    }
    Ok((files, manifests))
}

/// Layer 1: the line-local R1–R6 rules, with the same per-crate and
/// per-file scoping as [`crate::check_workspace`].
fn lexer_rules(analysis: &mut Analysis) {
    let mut findings = Vec::new();
    for file in &analysis.files {
        let mut rules = rules_for_crate(&file.crate_name);
        if file.is_bin {
            rules = rules.without(Rule::NoDebugPrint);
        }
        if file.crate_name == "net" && file.display.ends_with("clock.rs") {
            rules = rules.without(Rule::WallClock);
        }
        let report = check_source(&file.display, &file.source, rules);
        for v in report.violations {
            findings.push(Finding {
                rule: v.rule,
                file: v.file,
                line: v.line,
                message: v.message,
                chain: Vec::new(),
                allowed: None,
            });
        }
        for a in report.allowed {
            findings.push(Finding {
                rule: a.rule,
                file: a.file,
                line: a.line,
                message: String::new(),
                chain: Vec::new(),
                allowed: Some(a.reason),
            });
        }
        analysis.bad_annotations.extend(report.bad_annotations);
    }
    analysis.findings.extend(findings);
}

/// Parsed annotations of one file, as (line, rule, reason).
fn annotations_of(file: &SourceFile) -> Vec<(usize, Rule, String)> {
    let mut out = Vec::new();
    for comment in &file.scanned.comments {
        if let Some(Ok(ann)) = crate::parse_annotation(&comment.text) {
            out.push((comment.line, ann.rule, ann.reason));
        }
    }
    out
}

/// Whether an annotation for `rule` covers `line` (same line or the
/// line above). `no-panic` annotations also satisfy `panic-path`: one
/// written justification covers both the local and the reachability
/// view of the same site.
fn annotation_for(
    annotations: &[(usize, Rule, String)],
    rule: Rule,
    line: usize,
) -> Option<String> {
    annotations
        .iter()
        .find(|(l, r, _)| {
            (*l == line || *l + 1 == line)
                && (*r == rule || (rule == Rule::PanicPath && *r == Rule::NoPanic))
        })
        .map(|(_, _, reason)| reason.clone())
}

/// Layer 2: graph-aware determinism (D) and panic-reachability (P)
/// rules over strict-crate library sources.
fn determinism_and_panic_rules(analysis: &mut Analysis) {
    let mut findings = Vec::new();
    for (fi, file) in analysis.files.iter().enumerate() {
        let strict = STRICT_CRATES.contains(&file.crate_name.as_str());
        let index_strict = INDEX_CRATES.contains(&file.crate_name.as_str());
        if file.is_bin || (!strict && !index_strict) {
            continue;
        }
        let annotations = annotations_of(file);
        let masked = file.scanned.masked_lines();
        let in_test = crate::test_item_lines(&masked);

        // Reachability of the fn containing a line: Some(chain) when a
        // public entry reaches it, None when dead or test-only code.
        // Module-scope lines (use decls) count as trivially reachable.
        let containing = |line_no: usize| -> Option<Option<Vec<String>>> {
            match file.parsed.fn_containing(line_no) {
                None => Some(None), // module scope: no chain, still live
                Some(fn_idx) => {
                    if file.parsed.fns[fn_idx].cfg_test {
                        return None;
                    }
                    let node = analysis.graph.node_for(fi, fn_idx)?;
                    analysis.reach.dist[node]?;
                    Some(Some(analysis.graph.chain_to(&analysis.reach, node)))
                }
            }
        };

        let mut push = |rule: Rule, line: usize, message: String, chain: Vec<String>| {
            let allowed = annotation_for(&annotations, rule, line);
            findings.push(Finding {
                rule,
                file: file.display.clone(),
                line,
                message,
                chain,
                allowed,
            });
        };

        // Per-fn text for D3: does the body handle an unordered container?
        let body_has_unordered = |fn_idx: usize| -> bool {
            let Some((a, b)) = file.parsed.fns[fn_idx].body else { return false };
            (a..=b).any(|n| {
                masked.get(n - 1).is_some_and(|l| {
                    !crate::word_positions(l, "HashMap").is_empty()
                        || !crate::word_positions(l, "HashSet").is_empty()
                })
            })
        };

        for (idx, line) in masked.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let line_no = idx + 1;

            if strict {
                // D1: unordered containers anywhere live.
                for word in ["HashMap", "HashSet"] {
                    if !crate::word_positions(line, word).is_empty() {
                        if let Some(chain) = containing(line_no) {
                            push(
                                Rule::UnorderedIteration,
                                line_no,
                                format!(
                                    "`{word}` iteration order is nondeterministic; use \
                                     BTreeMap/BTreeSet or sorted keys in strict paths"
                                ),
                                chain.unwrap_or_default(),
                            );
                        }
                    }
                }

                // D2: spawned work joined in completion order.
                for pos in crate::word_positions(line, "spawn") {
                    let after = line[pos + "spawn".len()..].trim_start();
                    if after.starts_with('(') {
                        if let Some(Some(chain)) = containing(line_no) {
                            push(
                                Rule::SpawnOrdering,
                                line_no,
                                "`spawn` results must be collected in a stable order \
                                 (keyed by device id), never completion order"
                                    .to_string(),
                                chain,
                            );
                        }
                    }
                }

                // D3: float reductions inside a fn handling unordered containers.
                if line.contains(".sum(") || line.contains(".fold(") || line.contains(".product(")
                {
                    if let Some(fn_idx) = file.parsed.fn_containing(line_no) {
                        if !file.parsed.fns[fn_idx].cfg_test && body_has_unordered(fn_idx) {
                            if let Some(Some(chain)) = containing(line_no) {
                                push(
                                    Rule::UnorderedFloatReduction,
                                    line_no,
                                    "float reduction in a function handling HashMap/HashSet: \
                                     addition is non-associative, so the result depends on \
                                     iteration order"
                                        .to_string(),
                                    chain,
                                );
                            }
                        }
                    }
                }

                // P1: reachable panic sites, with the shortest chain.
                let mut panic_descs: Vec<String> = Vec::new();
                for word in ["unwrap", "expect"] {
                    for pos in crate::word_positions(line, word) {
                        if crate::is_method_call(line, pos, word) {
                            panic_descs.push(format!("`.{word}()`"));
                        }
                    }
                }
                for mac in ["panic", "todo", "unimplemented"] {
                    for pos in crate::word_positions(line, mac) {
                        if crate::is_macro_call(line, pos, mac) {
                            panic_descs.push(format!("`{mac}!`"));
                        }
                    }
                }
                for desc in panic_descs {
                    if let Some(Some(chain)) = containing(line_no) {
                        push(
                            Rule::PanicPath,
                            line_no,
                            format!("{desc} is reachable from a public API"),
                            chain,
                        );
                    }
                }
            }

            if index_strict && !line.trim_start().starts_with('#') {
                let count = index_sites(line);
                for _ in 0..count {
                    if let Some(Some(chain)) = containing(line_no) {
                        push(
                            Rule::IndexPanic,
                            line_no,
                            "indexing can panic across the device boundary; prefer `get` \
                             with typed error propagation"
                                .to_string(),
                            chain,
                        );
                    }
                }
            }
        }
    }
    analysis.findings.extend(findings);
}

/// Count indexing expressions on a masked line: `[` directly preceded
/// by an identifier character, `)`, or `]` — i.e. `expr[...]`, not
/// slice types (`&[f64]`), array literals (`[0.0; n]`), or attributes.
fn index_sites(line: &str) -> usize {
    let chars: Vec<char> = line.chars().collect();
    let mut count = 0usize;
    for i in 1..chars.len() {
        if chars[i] == '['
            && (is_ident_char_local(chars[i - 1]) || chars[i - 1] == ')' || chars[i - 1] == ']')
        {
            count += 1;
        }
    }
    count
}

fn is_ident_char_local(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Layer 3, F1 + F2: cfg(feature) names must exist in the owning
/// manifest; manifest feature values must resolve (locally or through a
/// dependency's features).
fn feature_rules(analysis: &mut Analysis, root: &Path, manifests: &[(String, Manifest)]) {
    let by_dir: BTreeMap<&str, &Manifest> =
        manifests.iter().map(|(d, m)| (d.as_str(), m)).collect();
    let by_pkg: BTreeMap<&str, &Manifest> = manifests
        .iter()
        .filter_map(|(_, m)| m.package_name.as_deref().map(|p| (p, m)))
        .collect();

    let mut findings = Vec::new();

    // F1: cfg(feature = "…") in sources.
    for file in &analysis.files {
        let Some(m) = by_dir.get(file.crate_name.as_str()) else { continue };
        let annotations = annotations_of(file);
        for feat in &file.parsed.cfg_features {
            if !m.has_feature(&feat.name) {
                let allowed = annotation_for(&annotations, Rule::UnknownFeature, feat.line);
                findings.push(Finding {
                    rule: Rule::UnknownFeature,
                    file: file.display.clone(),
                    line: feat.line,
                    message: format!(
                        "cfg feature `{}` is not declared in the crate's Cargo.toml — \
                         the gated code can never compile in",
                        feat.name
                    ),
                    chain: Vec::new(),
                    allowed,
                });
            }
        }
    }

    // F2: feature forwarding chains in every manifest (crates + the
    // facade/workspace root).
    let mut all: Vec<(String, &Manifest)> = manifests
        .iter()
        .map(|(dir, m)| (format!("crates/{dir}/Cargo.toml"), m))
        .collect();
    let root_manifest_text = std::fs::read_to_string(root.join("Cargo.toml")).ok();
    let root_manifest = root_manifest_text.as_deref().map(manifest::parse);
    if let Some(m) = &root_manifest {
        all.push(("Cargo.toml".to_string(), m));
    }
    for (display, m) in &all {
        for feature in &m.features {
            for value in &feature.values {
                let mut push_f2 = |message: String| {
                    findings.push(Finding {
                        rule: Rule::FeatureChain,
                        file: display.clone(),
                        line: feature.line,
                        message,
                        chain: Vec::new(),
                        allowed: None,
                    });
                };
                if let Some((dep_raw, feat)) = value.split_once('/') {
                    let dep = dep_raw.trim_end_matches('?');
                    if m.dependency(dep).is_none() {
                        push_f2(format!(
                            "feature `{}` forwards to `{value}`, but `{dep}` is not a \
                             dependency of this crate",
                            feature.name
                        ));
                        continue;
                    }
                    if let Some(dep_m) = by_pkg.get(dep) {
                        if !dep_m.has_feature(feat) {
                            push_f2(format!(
                                "feature `{}` forwards to `{value}`, but `{dep}` defines \
                                 no feature `{feat}` — the chain is broken",
                                feature.name
                            ));
                        }
                    }
                } else if let Some(dep) = value.strip_prefix("dep:") {
                    if m.dependency(dep).is_none() {
                        push_f2(format!(
                            "feature `{}` enables `dep:{dep}`, which is not a dependency",
                            feature.name
                        ));
                    }
                } else if !m.has_feature(value) && m.dependency(value).is_none() {
                    push_f2(format!(
                        "feature `{}` references `{value}`, which is neither a feature \
                         nor a dependency of this crate",
                        feature.name
                    ));
                }
            }
        }
    }

    analysis.findings.extend(findings);
}

/// Layer 3, F3: every `#[allow(clippy::unwrap_used / expect_used)]` in
/// library code must sit next to a `fedlint: allow(no-panic)`
/// annotation, so both escape hatches stay justified together.
fn clippy_sync_rule(analysis: &mut Analysis) {
    let mut findings = Vec::new();
    for file in &analysis.files {
        if file.is_bin {
            continue;
        }
        let annotations = annotations_of(file);
        let masked = file.scanned.masked_lines();
        let in_test = crate::test_item_lines(&masked);
        for (idx, line) in masked.iter().enumerate() {
            if in_test[idx] {
                continue;
            }
            let line_no = idx + 1;
            let is_clippy_allow = line.contains("allow")
                && (line.contains("clippy::unwrap_used") || line.contains("clippy::expect_used"));
            if !is_clippy_allow {
                continue;
            }
            // cfg_test fns carry their own rules; skip them here too.
            if file
                .parsed
                .fn_containing(line_no)
                .is_some_and(|i| file.parsed.fns[i].cfg_test)
            {
                continue;
            }
            let synced = annotations.iter().any(|(l, r, _)| {
                (*r == Rule::NoPanic || *r == Rule::PanicPath)
                    && l.abs_diff(line_no) <= 2
            });
            let allowed = annotation_for(&annotations, Rule::ClippyAllowSync, line_no);
            if synced {
                continue;
            }
            findings.push(Finding {
                rule: Rule::ClippyAllowSync,
                file: file.display.clone(),
                line: line_no,
                message: "clippy unwrap/expect allowance without an adjacent \
                          `fedlint: allow(no-panic)` justification"
                    .to_string(),
                chain: Vec::new(),
                allowed,
            });
        }
    }
    analysis.findings.extend(findings);
}

/// Layer 3, F4: runtime collector calls (`collector::…`) in
/// non-telemetry library code must sit behind a `feature = "telemetry"`
/// cfg gate. The two-stage gating contract says profiling hooks vanish
/// from default builds at *compile* time; an ungated call would drag
/// the instrumentation into every build and leave it reachable behind
/// only the runtime `arm()` flag. A gate counts when a positive
/// telemetry cfg line (attribute or `cfg!`, but never a
/// `not(feature = …)` arm — that gates the *absence* of the
/// instrumentation) appears on the fn's own attributes or between just
/// above the enclosing fn and the call line.
fn telemetry_gate_rule(analysis: &mut Analysis) {
    let mut findings = Vec::new();
    for file in &analysis.files {
        if file.is_bin || file.crate_name == "telemetry" {
            continue;
        }
        let annotations = annotations_of(file);
        let masked = file.scanned.masked_lines();
        let in_test = crate::test_item_lines(&masked);
        let source_lines: Vec<&str> = file.source.lines().collect();
        // Lines that positively select the telemetry feature.
        let positive_gate = |line: usize| -> bool {
            source_lines
                .get(line - 1)
                .is_some_and(|l| !l.contains("not(feature"))
        };
        let gate_lines: Vec<usize> = file
            .parsed
            .cfg_features
            .iter()
            .filter(|f| f.name == "telemetry" && positive_gate(f.line))
            .map(|f| f.line)
            .collect();
        for (idx, line) in masked.iter().enumerate() {
            if in_test[idx] || !line.contains("collector::") {
                continue;
            }
            let line_no = idx + 1;
            // Window start: just above the enclosing fn (covering its
            // attribute stack), or just above the line itself at module
            // scope (use decls).
            let window_start = match file.parsed.fn_containing(line_no) {
                Some(fn_idx) => {
                    let f = &file.parsed.fns[fn_idx];
                    if f.cfg_test {
                        continue;
                    }
                    if f.cfgs.iter().any(|c| {
                        c.contains("feature = \"telemetry\"") && !c.contains("not(feature")
                    }) {
                        continue;
                    }
                    f.line.saturating_sub(3)
                }
                None => line_no.saturating_sub(3),
            };
            if gate_lines.iter().any(|g| *g >= window_start && *g <= line_no) {
                continue;
            }
            let allowed = annotation_for(&annotations, Rule::TelemetryGate, line_no);
            findings.push(Finding {
                rule: Rule::TelemetryGate,
                file: file.display.clone(),
                line: line_no,
                message: "runtime collector call outside a `feature = \"telemetry\"` cfg \
                          gate — instrumentation must compile out of default builds"
                    .to_string(),
                chain: Vec::new(),
                allowed,
            });
        }
    }
    analysis.findings.extend(findings);
}

/// Variant names of `pub enum Event` in masked source text, with the
/// 1-indexed line each is declared on. Masked text means doc comments
/// and string literals cannot fake a variant.
fn event_variants(masked: &[&str]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut depth: i64 = 0;
    let mut in_enum = false;
    for (idx, line) in masked.iter().enumerate() {
        if !in_enum {
            if line.contains("pub enum Event") {
                in_enum = true;
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
            }
            continue;
        }
        let at_start = depth;
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if at_start == 1 {
            let t = line.trim_start();
            if t.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let name: String =
                    t.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                if !name.is_empty() {
                    variants.push((name, idx + 1));
                }
            }
        }
        if depth <= 0 {
            break;
        }
    }
    variants
}

/// Layer 3, F5: every `Event` variant must be constructed inside
/// `fn sample_events` in the telemetry crate's `jsonl.rs` — that list
/// drives the codec round-trip suite, so a variant absent from it has
/// an untested `write_line`/`event_from_json` pair. The check parses
/// the enum and the fixture body from the already-loaded sources; if
/// either file or the fixture fn is missing, that is itself a finding
/// (the contract cannot be silently dropped).
fn event_fixture_sync_rule(analysis: &mut Analysis) {
    let Some(event_file) = analysis
        .files
        .iter()
        .find(|f| f.crate_name == "telemetry" && f.display.ends_with("event.rs"))
    else {
        return; // no telemetry crate in this tree (fixture workspaces)
    };
    let masked = event_file.scanned.masked_lines();
    let variants = event_variants(&masked);
    if variants.is_empty() {
        return;
    }
    let annotations = annotations_of(event_file);
    let jsonl = analysis
        .files
        .iter()
        .find(|f| f.crate_name == "telemetry" && f.display.ends_with("jsonl.rs"));
    let fixture_body: Option<String> = jsonl.and_then(|file| {
        let f = file.parsed.fns.iter().find(|f| f.name == "sample_events")?;
        let (a, b) = f.body?;
        let lines: Vec<&str> = file.source.lines().collect();
        Some(lines.get(a - 1..b).unwrap_or(&[]).join("\n"))
    });

    let mut findings = Vec::new();
    let event_display = event_file.display.clone();
    match fixture_body {
        None => findings.push(Finding {
            rule: Rule::EventFixtureSync,
            file: event_display,
            line: variants[0].1,
            message: "no `fn sample_events` fixture list found in the telemetry crate's \
                      jsonl.rs — the Event codec round-trip suite has nothing to exercise"
                .to_string(),
            chain: Vec::new(),
            allowed: None,
        }),
        Some(body) => {
            for (name, line) in variants {
                let needle = format!("Event::{name}");
                let covered = body.match_indices(&needle).any(|(pos, _)| {
                    body[pos + needle.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
                });
                if !covered {
                    let allowed = annotation_for(&annotations, Rule::EventFixtureSync, line);
                    findings.push(Finding {
                        rule: Rule::EventFixtureSync,
                        file: event_display.clone(),
                        line,
                        message: format!(
                            "Event::{name} has no fixture in jsonl.rs `sample_events` — its \
                             JSONL codec round-trip is untested"
                        ),
                        chain: Vec::new(),
                        allowed,
                    });
                }
            }
        }
    }
    analysis.findings.extend(findings);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_variant_parsing_sees_only_depth_one_names() {
        let src = "\
/// docs\n\
pub enum Event {\n\
    /// A span.\n\
    Span {\n\
        name: String,\n\
    },\n\
    RoundEnd { round: u32 },\n\
    Simple,\n\
}\n\
pub enum Other { NotCounted }\n";
        let scanned = lexer::scan(src);
        let masked = scanned.masked_lines();
        let vars = event_variants(&masked);
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Span", "RoundEnd", "Simple"]);
        assert_eq!(vars[1].1, 7, "RoundEnd declared on line 7");
    }

    #[test]
    fn baseline_roundtrip_and_gate() {
        let mut baseline = Baseline::default();
        baseline.budgets.insert("no-panic".to_string(), Counts { violations: 0, allowed: 4 });
        baseline
            .budgets
            .insert("panic-path".to_string(), Counts { violations: 2, allowed: 1 });
        let text = baseline.emit();
        let parsed = Baseline::parse(&text).expect("parse emitted baseline");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn baseline_rejects_unknown_rule_and_bad_schema() {
        assert!(Baseline::parse(r#"{"schema":"fedlint/v1","budgets":{"bogus":{"violations":0,"allowed":0}}}"#).is_err());
        assert!(Baseline::parse(r#"{"schema":"fedperf/v1","budgets":{}}"#).is_err());
    }

    #[test]
    fn index_site_detection() {
        assert_eq!(index_sites("let x = slots[i];"), 1);
        assert_eq!(index_sites("m[i][j] = v;"), 2);
        assert_eq!(index_sites("fn f(xs: &[f64]) -> Vec<[u8; 4]> {"), 0);
        assert_eq!(index_sites("let a = [0.0; 8];"), 0);
        assert_eq!(index_sites("take(v)[0]"), 1);
    }
}
