//! A minimal `Cargo.toml` reader for the F-rules.
//!
//! fedlint is deliberately dependency-free, so this is not a TOML
//! parser — it reads exactly the manifest subset the feature-gate rules
//! need: the package name, `[features]` definitions (with line numbers,
//! for violation locations), and dependency names with their `optional`
//! flag. Multi-line arrays and inline tables are handled; exotic TOML
//! (nested tables in values, literal strings with escapes) is not used
//! by this workspace and is ignored rather than misread.

/// One `[features]` entry: `name = ["value", …]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureDef {
    /// Feature name (the key).
    pub name: String,
    /// 1-indexed line of the key.
    pub line: usize,
    /// The entry's elements: plain feature names, `dep/feat`,
    /// `dep?/feat`, or `dep:name` forms, as written.
    pub values: Vec<String>,
}

/// One dependency (from `[dependencies]`, `[dev-dependencies]`, or
/// `[build-dependencies]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepDef {
    /// The dependency key (package name as referenced in features).
    pub name: String,
    /// Whether it is `optional = true` (defines an implicit feature).
    pub optional: bool,
    /// Whether it came from `[dev-dependencies]`.
    pub dev: bool,
    /// 1-indexed line of the key.
    pub line: usize,
}

/// The manifest subset fedlint reads.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `[package] name`, if present.
    pub package_name: Option<String>,
    /// `[features]` entries in declaration order.
    pub features: Vec<FeatureDef>,
    /// Dependencies across the dependency tables.
    pub dependencies: Vec<DepDef>,
}

impl Manifest {
    /// Whether `name` is a declared feature or an implicit
    /// optional-dependency feature.
    pub fn has_feature(&self, name: &str) -> bool {
        self.features.iter().any(|f| f.name == name)
            || self.dependencies.iter().any(|d| d.optional && d.name == name)
    }

    /// Find a (non-dev) dependency by key.
    pub fn dependency(&self, name: &str) -> Option<&DepDef> {
        self.dependencies.iter().find(|d| d.name == name && !d.dev)
    }
}

/// Parse manifest text. Never fails: unreadable constructs are skipped,
/// which for lint purposes means "cannot verify" rather than an error.
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let line_no = i + 1;
        let line = strip_toml_comment(lines[i]);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            i += 1;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(end) = rest.find(']') {
                section = rest[..end].trim().to_string();
            }
            i += 1;
            continue;
        }
        let Some(eq) = trimmed.find('=') else {
            i += 1;
            continue;
        };
        let key = trimmed[..eq].trim().trim_matches('"').to_string();
        let mut value = trimmed[eq + 1..].trim().to_string();
        // Multi-line array: keep consuming until brackets balance.
        while bracket_balance(&value) > 0 && i + 1 < lines.len() {
            i += 1;
            value.push(' ');
            value.push_str(strip_toml_comment(lines[i]).trim());
        }
        match section.as_str() {
            "package" if key == "name" => {
                m.package_name = Some(value.trim_matches('"').to_string());
            }
            "features" => {
                m.features.push(FeatureDef {
                    name: key,
                    line: line_no,
                    values: string_elements(&value),
                });
            }
            "dependencies" | "dev-dependencies" | "build-dependencies"
            | "workspace.dependencies" => {
                let dev = section == "dev-dependencies";
                let optional = value.contains("optional") && value.contains("true");
                m.dependencies.push(DepDef { name: key, optional, dev, line: line_no });
            }
            _ => {}
        }
        i += 1;
    }
    m
}

/// Drop a `#` comment unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (pos, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..pos],
            _ => {}
        }
    }
    line
}

/// How many more `[`/`{` than `]`/`}` appear outside strings.
fn bracket_balance(value: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Every quoted string element in a value (array or single string).
fn string_elements(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = value;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_package_features_and_deps() {
        let text = "\
[package]
name = \"fedprox-demo\"
version = \"0.1.0\"

[features]
default = []
check = [\"fedprox-tensor/check\"]
telemetry = [
    \"fedprox-telemetry/enabled\",  # forwarded
    \"fedprox-core/telemetry\",
]

[dependencies]
fedprox-tensor = { path = \"../tensor\" }
serde = { workspace = true, optional = true }

[dev-dependencies]
proptest = { path = \"../../vendor/proptest\" }
";
        let m = parse(text);
        assert_eq!(m.package_name.as_deref(), Some("fedprox-demo"));
        assert_eq!(m.features.len(), 3);
        assert_eq!(m.features[1].values, vec!["fedprox-tensor/check".to_string()]);
        assert_eq!(
            m.features[2].values,
            vec![
                "fedprox-telemetry/enabled".to_string(),
                "fedprox-core/telemetry".to_string()
            ]
        );
        assert!(m.has_feature("check"));
        assert!(m.has_feature("serde"), "optional dep is an implicit feature");
        assert!(!m.has_feature("proptest"));
        assert!(m.dependency("fedprox-tensor").is_some());
        assert!(m.dependency("proptest").is_none(), "dev-deps are separate");
        assert!(m.dependencies.iter().any(|d| d.name == "proptest" && d.dev));
    }

    #[test]
    fn comments_and_strings_do_not_confuse_parsing() {
        let text = "\
[features]
# a comment with = and [brackets]
odd = [\"a#b\"]  # trailing comment
";
        let m = parse(text);
        assert_eq!(m.features.len(), 1);
        assert_eq!(m.features[0].values, vec!["a#b".to_string()]);
    }
}
