//! Minimal JSON support for the `fedlint/v1` report schema.
//!
//! The conformance crate is dependency-free by design (it lints the
//! code that everything else depends on, so it must not drag the
//! dependency graph into its own trusted base). This module provides
//! the two halves fedlint needs: an escaping writer for report emission
//! and a small recursive-descent parser for reading committed
//! baselines. The parser accepts standard JSON; numbers are surfaced as
//! `f64` (baseline budgets are small counts, far inside exact-integer
//! range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload rounded to u64, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape a string for embedding in JSON output (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a JSON document. Returns a message describing the first error.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for expected in word.chars() {
            self.eat(expected)?;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                self.pos += 1;
                                let d = self
                                    .peek()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| "bad \\u escape".to_string())?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = parse(r#"{"schema":"fedlint/v1","budgets":{"no-panic":{"violations":0,"allowed":4}},"ok":true,"items":[1,2.5,-3],"none":null}"#)
            .expect("parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("fedlint/v1"));
        let budget = v.get("budgets").and_then(|b| b.get("no-panic")).expect("budget");
        assert_eq!(budget.get("violations").and_then(Value::as_u64), Some(0));
        assert_eq!(budget.get("allowed").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("items").and_then(Value::as_arr).map(<[Value]>::len), Some(3));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "a \"quoted\" path\\with\nnewline\ttab";
        let emitted = format!("\"{}\"", escape(original));
        let parsed = parse(&emitted).expect("parse escaped");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }
}
