//! `fedlint`: a dependency-free static conformance pass over the
//! FedProxVR workspace sources.
//!
//! The pass walks `crates/*/src/**.rs`, scans each file with a
//! string/comment-aware lexer ([`lexer`]), and enforces the workspace
//! rules R1–R5 (see [`Rule`]). Justified exceptions are annotated in
//! source as:
//!
//! ```text
//! // fedlint: allow(no-panic) — channel lifetime is scoped above
//! ```
//!
//! on the offending line or the line directly above it. The annotation
//! requires a rule id and a non-empty reason after an em dash (`—`) or
//! double hyphen (`--`). Allowed sites are counted and reported, never
//! silently dropped.

pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod parser;

use lexer::ScannedFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// The workspace conformance rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1 `no-panic`: no `unwrap()` / `expect()` / `panic!` / `todo!` /
    /// `unimplemented!` in library code.
    NoPanic,
    /// R2 `no-ambient-entropy`: no `thread_rng()` / `from_entropy()` /
    /// `SystemTime::now()` — all randomness and time must be injected.
    NoAmbientEntropy,
    /// R3 `no-debug-print`: no `println!` / `eprintln!` / `dbg!` in
    /// library code (binaries and the bench harness are exempt).
    NoDebugPrint,
    /// R4 `safety-comment`: every `unsafe` must be preceded by a
    /// `// SAFETY:` comment.
    SafetyComment,
    /// R5 `lossy-cast`: no `as f32` / `as usize` narrowing casts in
    /// tensor hot paths unless annotated.
    LossyCast,
    /// R6 `no-wall-clock`: no `std::time::Instant` / `SystemTime` outside
    /// the telemetry collector and the net backend's virtual clock — wall
    /// time anywhere else silently breaks bitwise reproducibility.
    WallClock,
    /// D1 `unordered-iteration`: `HashMap` / `HashSet` in strict-path
    /// crates — iteration order is seeded per-process, so any float
    /// reduction or ordered output over them breaks bitwise replay. Use
    /// `BTreeMap` / `BTreeSet` or sorted keys.
    UnorderedIteration,
    /// D2 `spawn-ordering`: a `spawn(...)` call in a strict-path crate —
    /// results collected from threads in completion order are
    /// nondeterministic; collection must be keyed by a stable id.
    SpawnOrdering,
    /// D3 `unordered-float-reduction`: a float reduction (`sum` / `fold`
    /// / `product`) over an unordered container's iterator inside a
    /// function that handles `HashMap` / `HashSet` — float addition is
    /// non-associative, so the result depends on iteration order.
    UnorderedFloatReduction,
    /// P1 `panic-path`: a panic site (`unwrap` / `expect` / `panic!` /
    /// `todo!` / `unimplemented!`) *reachable from a public API* of a
    /// strict-path crate, reported with the shortest call chain. Unlike
    /// R1's line-local view, an unreachable panic site is not flagged.
    PanicPath,
    /// P2 `index-panic`: slice/collection indexing (`x[i]`) reachable
    /// from a public API in `net` / `core` — an out-of-bounds index
    /// panics across the device-actor boundary instead of surfacing a
    /// typed `NetError`.
    IndexPanic,
    /// F1 `unknown-feature`: a `cfg(feature = "…")` name that does not
    /// exist in the owning crate's `Cargo.toml` — the gated code is
    /// silently dead.
    UnknownFeature,
    /// F2 `feature-chain`: a `Cargo.toml` feature entry that references a
    /// missing dependency or a feature the dependency does not define —
    /// the facade→crate forwarding chain is broken.
    FeatureChain,
    /// F3 `clippy-allow-sync`: an `#[allow(clippy::unwrap_used)]` /
    /// `#[allow(clippy::expect_used)]` in library code without an
    /// adjacent `fedlint: allow(no-panic)` annotation — the two
    /// escape-hatch grammars must stay in sync so every allowance
    /// carries a written justification.
    ClippyAllowSync,
    /// F4 `telemetry-gate`: a runtime collector call (`collector::arm`,
    /// `collector::drain`, probe installs, …) in non-telemetry library
    /// code without an enclosing `feature = "telemetry"` cfg gate —
    /// profiling hooks (`--prof` wiring, alloc probes, streaming sinks)
    /// must compile out of default builds entirely, not linger
    /// half-armed behind a runtime flag alone.
    TelemetryGate,
    /// F5 `event-fixture-sync`: an `Event` variant in
    /// `crates/telemetry/src/event.rs` with no `Event::<Variant>`
    /// construction inside `fn sample_events` in `jsonl.rs` — the codec
    /// round-trip suite exercises exactly the fixture list, so a variant
    /// missing from it ships with an untested serializer/parser pair.
    EventFixtureSync,
}

/// Every rule, in stable report order.
pub const ALL_RULES: [Rule; 16] = [
    Rule::NoPanic,
    Rule::NoAmbientEntropy,
    Rule::NoDebugPrint,
    Rule::SafetyComment,
    Rule::LossyCast,
    Rule::WallClock,
    Rule::UnorderedIteration,
    Rule::SpawnOrdering,
    Rule::UnorderedFloatReduction,
    Rule::PanicPath,
    Rule::IndexPanic,
    Rule::UnknownFeature,
    Rule::FeatureChain,
    Rule::ClippyAllowSync,
    Rule::TelemetryGate,
    Rule::EventFixtureSync,
];

impl Rule {
    /// The stable rule id used in reports and allow annotations.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoAmbientEntropy => "no-ambient-entropy",
            Rule::NoDebugPrint => "no-debug-print",
            Rule::SafetyComment => "safety-comment",
            Rule::LossyCast => "lossy-cast",
            Rule::WallClock => "no-wall-clock",
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::SpawnOrdering => "spawn-ordering",
            Rule::UnorderedFloatReduction => "unordered-float-reduction",
            Rule::PanicPath => "panic-path",
            Rule::IndexPanic => "index-panic",
            Rule::UnknownFeature => "unknown-feature",
            Rule::FeatureChain => "feature-chain",
            Rule::ClippyAllowSync => "clippy-allow-sync",
            Rule::TelemetryGate => "telemetry-gate",
            Rule::EventFixtureSync => "event-fixture-sync",
        }
    }

    /// Parse an id as written inside `allow(...)`.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }
}

/// A set of enabled rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuleSet {
    rules: [bool; ALL_RULES.len()],
}

impl RuleSet {
    /// The empty set.
    pub fn none() -> Self {
        RuleSet::default()
    }

    /// Every rule enabled. (The line-local [`check_source`] pass acts
    /// only on R1–R6; the D/P/F families are evaluated by the
    /// [`engine`], which scopes them itself.)
    pub fn all() -> Self {
        RuleSet { rules: [true; ALL_RULES.len()] }
    }

    /// Add a rule (builder style).
    pub fn with(mut self, rule: Rule) -> Self {
        self.rules[Self::idx(rule)] = true;
        self
    }

    /// Remove a rule (builder style).
    pub fn without(mut self, rule: Rule) -> Self {
        self.rules[Self::idx(rule)] = false;
        self
    }

    /// Whether a rule is enabled.
    pub fn contains(&self, rule: Rule) -> bool {
        self.rules[Self::idx(rule)]
    }

    fn idx(rule: Rule) -> usize {
        // ALL_RULES is tiny and const; a linear scan keeps the enum and
        // the index in sync by construction.
        ALL_RULES.iter().position(|r| *r == rule).unwrap_or(0)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// Path as reported (workspace-relative when walking a workspace).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description of the match.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}:{}: {}", self.rule.id(), self.file, self.line, self.message)
    }
}

/// An annotated (allowed) site: a would-be violation justified in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedSite {
    /// The rule the annotation suppresses.
    pub rule: Rule,
    /// Path as reported.
    pub file: String,
    /// 1-indexed line of the suppressed site.
    pub line: usize,
    /// The justification text after the dash.
    pub reason: String,
}

/// Result of checking one file or a whole workspace.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Hard violations (fail the run).
    pub violations: Vec<Violation>,
    /// Annotated sites that were suppressed.
    pub allowed: Vec<AllowedSite>,
    /// Malformed `fedlint:` annotations (fail the run too — a typo in an
    /// annotation must not silently re-enable a violation).
    pub bad_annotations: Vec<Violation>,
}

impl Report {
    /// Whether the checked sources are clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.bad_annotations.is_empty()
    }

    fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.allowed.extend(other.allowed);
        self.bad_annotations.extend(other.bad_annotations);
    }
}

/// Rules that apply to a crate's library sources, by crate directory name.
///
/// * `tensor` carries every rule including the hot-path cast rule R5.
/// * `net`, `core`, `optim`, `conformance` are panic-free library crates.
/// * `data`, `models` predate the no-panic conversion and carry R2–R4.
/// * `bench` is an experiment harness (it prints and seeds by design):
///   only the `unsafe` hygiene rule applies.
/// * `telemetry` is the one place allowed to read the wall clock (its
///   span guards time real work), so it drops R6; `net`'s virtual-clock
///   module gets a per-file R6 exemption in [`check_workspace`].
pub fn rules_for_crate(crate_dir: &str) -> RuleSet {
    match crate_dir {
        "tensor" => RuleSet::all(),
        "net" | "core" | "optim" | "conformance" => RuleSet::all().without(Rule::LossyCast),
        "telemetry" => RuleSet::all().without(Rule::LossyCast).without(Rule::WallClock),
        "data" | "models" => {
            RuleSet::none()
                .with(Rule::NoAmbientEntropy)
                .with(Rule::NoDebugPrint)
                .with(Rule::SafetyComment)
                .with(Rule::WallClock)
        }
        "bench" => RuleSet::none().with(Rule::SafetyComment).with(Rule::WallClock),
        // The benchmark harness must read the wall clock (that is its job)
        // and casts timing/alloc counters to f64 by design; the allocator
        // wrapper's `unsafe` still requires SAFETY comments.
        "perfbench" => {
            RuleSet::none()
                .with(Rule::NoAmbientEntropy)
                .with(Rule::NoDebugPrint)
                .with(Rule::SafetyComment)
        }
        // Unknown crates get the conservative library default.
        _ => RuleSet::all().without(Rule::LossyCast),
    }
}

// ---------------------------------------------------------------------------
// Annotation parsing
// ---------------------------------------------------------------------------

/// A parsed `fedlint: allow(rule) — reason` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Annotation {
    rule: Rule,
    reason: String,
}

/// Parse an annotation out of a comment's text, if present.
/// Returns `Some(Err(msg))` for a malformed annotation.
fn parse_annotation(comment: &str) -> Option<Result<Annotation, String>> {
    let rest = comment.trim().strip_prefix("fedlint:")?.trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        return Some(Err("expected `allow(<rule>)` after `fedlint:`".to_string()));
    };
    let Some(close) = args.find(')') else {
        return Some(Err("unclosed `allow(` in fedlint annotation".to_string()));
    };
    let rule_id = args[..close].trim();
    let Some(rule) = Rule::from_id(rule_id) else {
        return Some(Err(format!("unknown rule `{rule_id}` in fedlint annotation")));
    };
    let after = args[close + 1..].trim_start();
    let reason = after
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| after.strip_prefix("--"))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Some(Err(format!(
            "fedlint allow({rule_id}) requires a reason after `—` (or `--`)"
        )));
    }
    Some(Ok(Annotation { rule, reason: reason.to_string() }))
}

// ---------------------------------------------------------------------------
// Word-level matching helpers (operate on masked code)
// ---------------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of whole-word occurrences of `word` in `line`.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(word) {
        let start = from + rel;
        let end = start + word.len();
        let before_ok = line[..start].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after_ok = line[end..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            out.push(start);
        }
        from = end;
    }
    out
}

/// Whether `word` at `pos` is a method call: preceded (modulo spaces) by
/// `.` and followed (modulo spaces) by `(`.
fn is_method_call(line: &str, pos: usize, word: &str) -> bool {
    let before = line[..pos].trim_end();
    let after = line[pos + word.len()..].trim_start();
    before.ends_with('.') && after.starts_with('(')
}

/// Whether `word` at `pos` is a macro invocation (`word!`).
fn is_macro_call(line: &str, pos: usize, word: &str) -> bool {
    line[pos + word.len()..].trim_start().starts_with('!')
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` item skipping
// ---------------------------------------------------------------------------

/// Mark lines belonging to `#[cfg(test)]` items (inline test modules and
/// test-only functions). Returns a per-line boolean, 0-indexed. Works on
/// masked lines so braces inside strings/comments cannot desynchronise
/// the match.
fn test_item_lines(masked_lines: &[&str]) -> Vec<bool> {
    let mut skip = vec![false; masked_lines.len()];
    let mut i = 0;
    while i < masked_lines.len() {
        if masked_lines[i].trim() == "#[cfg(test)]" {
            // Skip attribute lines, then the item with its brace block.
            let mut j = i;
            skip[j] = true;
            j += 1;
            // Further attributes between cfg(test) and the item.
            while j < masked_lines.len() && masked_lines[j].trim_start().starts_with("#[") {
                skip[j] = true;
                j += 1;
            }
            // Find the opening brace, then its match.
            let mut depth = 0i64;
            let mut opened = false;
            while j < masked_lines.len() {
                skip[j] = true;
                for c in masked_lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => {
                            // e.g. `#[cfg(test)] use …;` — item ends here.
                            opened = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    skip
}

// ---------------------------------------------------------------------------
// The per-file check
// ---------------------------------------------------------------------------

/// Check one file's source text against a rule set. `display_path` is
/// used verbatim in the report.
pub fn check_source(display_path: &str, source: &str, rules: RuleSet) -> Report {
    let scanned: ScannedFile = lexer::scan(source);
    let lines = scanned.masked_lines();
    let in_test_item = test_item_lines(&lines);

    // Collect annotations by the line they cover (their own line, and the
    // line after — an annotation on its own line covers the next line).
    let mut annotations: Vec<(usize, Annotation)> = Vec::new();
    let mut report = Report::default();
    for comment in &scanned.comments {
        match parse_annotation(&comment.text) {
            None => {}
            Some(Ok(ann)) => annotations.push((comment.line, ann)),
            Some(Err(msg)) => report.bad_annotations.push(Violation {
                rule: Rule::NoPanic, // placeholder rule; message carries the detail
                file: display_path.to_string(),
                line: comment.line,
                message: format!("malformed fedlint annotation: {msg}"),
            }),
        }
    }

    let push = |rule: Rule, line: usize, message: String, report: &mut Report| {
        // A matching annotation on the same line or the line above
        // converts the violation into an allowed site.
        if let Some((_, ann)) = annotations
            .iter()
            .find(|(l, a)| (*l == line || *l + 1 == line) && a.rule == rule)
        {
            report.allowed.push(AllowedSite {
                rule,
                file: display_path.to_string(),
                line,
                reason: ann.reason.clone(),
            });
        } else {
            report.violations.push(Violation {
                rule,
                file: display_path.to_string(),
                line,
                message,
            });
        }
    };

    for (idx, raw_line) in lines.iter().enumerate() {
        if in_test_item[idx] {
            continue;
        }
        let line_no = idx + 1;
        let line = *raw_line;

        if rules.contains(Rule::NoPanic) {
            for word in ["unwrap", "expect"] {
                for pos in word_positions(line, word) {
                    if is_method_call(line, pos, word) {
                        push(
                            Rule::NoPanic,
                            line_no,
                            format!("`.{word}()` in library code"),
                            &mut report,
                        );
                    }
                }
            }
            for mac in ["panic", "todo", "unimplemented"] {
                for pos in word_positions(line, mac) {
                    if is_macro_call(line, pos, mac) {
                        push(
                            Rule::NoPanic,
                            line_no,
                            format!("`{mac}!` in library code"),
                            &mut report,
                        );
                    }
                }
            }
        }

        if rules.contains(Rule::NoAmbientEntropy) {
            for word in ["thread_rng", "from_entropy"] {
                for _pos in word_positions(line, word) {
                    push(
                        Rule::NoAmbientEntropy,
                        line_no,
                        format!("`{word}` draws ambient entropy; inject a seeded RNG"),
                        &mut report,
                    );
                }
            }
            for pos in word_positions(line, "SystemTime") {
                if line[pos..].starts_with("SystemTime::now") {
                    push(
                        Rule::NoAmbientEntropy,
                        line_no,
                        "`SystemTime::now()` breaks reproducibility; use the virtual clock"
                            .to_string(),
                        &mut report,
                    );
                }
            }
        }

        if rules.contains(Rule::NoDebugPrint) {
            for mac in ["println", "eprintln", "dbg"] {
                for pos in word_positions(line, mac) {
                    if is_macro_call(line, pos, mac) {
                        push(
                            Rule::NoDebugPrint,
                            line_no,
                            format!("`{mac}!` in library code"),
                            &mut report,
                        );
                    }
                }
            }
        }

        if rules.contains(Rule::SafetyComment) {
            for _pos in word_positions(line, "unsafe") {
                let has_safety = scanned
                    .comments
                    .iter()
                    .any(|c| {
                        (c.line + 1 == line_no || c.line == line_no)
                            && c.text.trim_start().starts_with("SAFETY:")
                    });
                if !has_safety {
                    push(
                        Rule::SafetyComment,
                        line_no,
                        "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
                        &mut report,
                    );
                }
            }
        }

        if rules.contains(Rule::WallClock) {
            for word in ["Instant", "SystemTime"] {
                for _pos in word_positions(line, word) {
                    push(
                        Rule::WallClock,
                        line_no,
                        format!(
                            "`{word}` reads the wall clock; only fedprox-telemetry and the \
                             net virtual clock may (everything else uses simulated time)"
                        ),
                        &mut report,
                    );
                }
            }
        }

        if rules.contains(Rule::LossyCast) {
            for target in ["f32", "usize"] {
                for pos in word_positions(line, target) {
                    let before = line[..pos].trim_end();
                    if before.ends_with("as")
                        && before[..before.len() - 2]
                            .chars()
                            .next_back()
                            .is_none_or(|c| !is_ident_char(c))
                    {
                        push(
                            Rule::LossyCast,
                            line_no,
                            format!("lossy `as {target}` cast in tensor hot path"),
                            &mut report,
                        );
                    }
                }
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d)?;
        for entry in entries {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Check every `crates/*/src/**.rs` under `workspace_root`. Test files
/// (`tests/`, `benches/`, `examples/`) are out of scope by construction;
/// binaries under `src/bin/` are exempt from the debug-print rule.
pub fn check_workspace(workspace_root: &Path) -> std::io::Result<Report> {
    let crates_dir = workspace_root.join("crates");
    let mut report = Report::default();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let base_rules = rules_for_crate(&name);
        for file in rust_files(&src)? {
            let mut rules = base_rules;
            // Binaries own their stdout: they may print.
            if file.strip_prefix(&src).is_ok_and(|rel| rel.starts_with("bin")) {
                rules = rules.without(Rule::NoDebugPrint);
            }
            // The virtual clock is the net backend's one sanctioned
            // time module (it defines simulated time itself).
            if name == "net"
                && file.strip_prefix(&src).is_ok_and(|rel| rel == Path::new("clock.rs"))
            {
                rules = rules.without(Rule::WallClock);
            }
            let source = std::fs::read_to_string(&file)?;
            let display = file
                .strip_prefix(workspace_root)
                .unwrap_or(&file)
                .to_string_lossy()
                .into_owned();
            report.merge(check_source(&display, &source, rules));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar() {
        let ok = parse_annotation("fedlint: allow(no-panic) — scoped above").unwrap().unwrap();
        assert_eq!(ok.rule, Rule::NoPanic);
        assert_eq!(ok.reason, "scoped above");
        let ok2 = parse_annotation("fedlint: allow(lossy-cast) -- bounded index").unwrap().unwrap();
        assert_eq!(ok2.rule, Rule::LossyCast);
        assert!(parse_annotation("fedlint: allow(no-panic)").unwrap().is_err());
        assert!(parse_annotation("fedlint: allow(nope) — x").unwrap().is_err());
        assert!(parse_annotation("fedlint: deny(no-panic)").unwrap().is_err());
        assert!(parse_annotation("just a comment").is_none());
    }

    #[test]
    fn rule_ids_roundtrip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("not-a-rule"), None);
    }

    #[test]
    fn telemetry_crate_is_exempt_from_wall_clock() {
        assert!(!rules_for_crate("telemetry").contains(Rule::WallClock));
        assert!(rules_for_crate("telemetry").contains(Rule::NoPanic));
        for lib_crate in ["tensor", "net", "core", "optim", "data", "models", "bench"] {
            assert!(
                rules_for_crate(lib_crate).contains(Rule::WallClock),
                "{lib_crate} must carry no-wall-clock"
            );
        }
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "\
fn lib() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { Some(1).unwrap(); }\n\
}\n";
        let report = check_source("x.rs", src, RuleSet::all());
        assert!(report.is_clean(), "{:?}", report.violations);
    }
}
