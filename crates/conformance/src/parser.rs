//! Item-level parsing of masked Rust source.
//!
//! The parser sits on top of [`crate::lexer`]: it tokenizes the *masked*
//! view of a file (so string/comment contents can never desynchronise
//! brace matching) and extracts the item structure the analysis layer
//! needs — functions with their spans, visibility, module path, impl
//! context and cfg attributes, `use` declarations for cross-crate call
//! resolution, and every `feature = "…"` name mentioned in a cfg
//! position (those come from the *original* text, because the lexer
//! blanks string interiors).
//!
//! This is deliberately not a full Rust grammar: bodies are treated as
//! opaque token ranges (the call-graph layer scans them separately),
//! nested items inside bodies are not recorded, and generics are only
//! tracked far enough to find the self type of an `impl` block. Those
//! approximations are safe for lint purposes — they can only make the
//! analysis miss edges, never miscount braces.

use crate::lexer::ScannedFile;

/// Item visibility as written in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` qualifier.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — visible inside the
    /// crate but not part of its public API.
    Crate,
    /// Plain `pub`.
    Public,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing inline-module path within the file (`mod a { mod b {` →
    /// `["a", "b"]`).
    pub module: Vec<String>,
    /// Self type when the fn lives in an `impl` block (`impl Foo` /
    /// `impl Trait for Foo` → `Foo`), or the trait name inside a
    /// `trait` declaration.
    pub impl_type: Option<String>,
    /// Whether the fn belongs to a trait impl (`impl Trait for Type`)
    /// or a trait declaration — i.e. is callable through a trait.
    pub trait_impl: bool,
    /// Visibility qualifier.
    pub vis: Visibility,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// Inclusive 1-indexed line span of the body block, `None` for
    /// bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Whether the fn (or an enclosing item) is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Raw text of the fn's own `#[cfg(...)]` attributes.
    pub cfgs: Vec<String>,
}

impl FnItem {
    /// Qualified display name: `module::Type::name`.
    pub fn qualified(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if let Some(t) = &self.impl_type {
            parts.push(t);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// One `use` declaration, kept as raw path text (`a::b::{c, d}`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// 1-indexed line of the `use` keyword.
    pub line: usize,
    /// The declaration's path text with whitespace collapsed.
    pub path: String,
}

/// A `feature = "name"` occurrence in a cfg position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgFeature {
    /// 1-indexed line.
    pub line: usize,
    /// The feature name as written (unmasked).
    pub name: String,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `use` declaration.
    pub uses: Vec<UseDecl>,
    /// Every cfg-position `feature = "…"` name.
    pub cfg_features: Vec<CfgFeature>,
}

impl ParsedFile {
    /// The fn whose body contains `line`, if any. Bodies never nest
    /// (items inside bodies are not recorded), so the match is unique.
    pub fn fn_containing(&self, line: usize) -> Option<usize> {
        self.fns.iter().position(|f| {
            f.body.is_some_and(|(a, b)| line >= a && line <= b) || f.line == line
        })
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Punct(char),
    Open(char),
    Close(char),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize masked source. Lifetimes, numbers and masked literal
/// interiors are consumed silently; only identifiers, punctuation and
/// bracket tokens survive.
fn tokenize(masked: &str) -> Vec<Token> {
    let chars: Vec<char> = masked.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() || c == '"' {
            // Masked literal interiors are spaces; the delimiting quotes
            // carry no structure either.
            i += 1;
            continue;
        }
        if c == '\'' {
            // Lifetime / loop label (char-literal interiors are masked).
            i += 1;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            out.push(Token { tok: Tok::Ident(chars[start..i].iter().collect()), line });
            continue;
        }
        if c.is_ascii_digit() {
            // Number literal: consume digits/underscores/suffix chars and
            // a decimal point only when a digit follows (so `0..n` and
            // `1.max(x)` terminate correctly).
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                if d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.'
                        && chars.get(i + 1).copied().is_some_and(|n| n.is_ascii_digit()))
                {
                    i += 1;
                } else {
                    break;
                }
            }
            continue;
        }
        let tok = match c {
            '{' | '(' | '[' => Tok::Open(c),
            '}' | ')' | ']' => Tok::Close(c),
            other => Tok::Punct(other),
        };
        out.push(Token { tok, line });
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Item parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ScopeKind {
    Module(String),
    Impl { ty: Option<String>, trait_impl: bool },
    Trait(String),
    Other,
}

#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    cfg_test: bool,
}

fn ident_of(tok: &Tok) -> Option<&str> {
    match tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

/// Join the tokens of a bracketed group into display text (used for
/// attribute bodies). `i` points at the opening bracket; returns the
/// joined interior text and the index just past the matching close.
fn capture_group(toks: &[Token], i: usize) -> (String, usize) {
    let mut depth = 0i64;
    let mut text = String::new();
    let mut j = i;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Open(_) => {
                if depth > 0 {
                    text.push(open_char(&toks[j].tok));
                }
                depth += 1;
            }
            Tok::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return (text, j + 1);
                }
                text.push(close_char(&toks[j].tok));
            }
            Tok::Ident(s) => {
                if !text.is_empty() && text.ends_with(|c: char| is_ident_char(c)) {
                    text.push(' ');
                }
                text.push_str(s);
            }
            Tok::Punct(p) => text.push(*p),
        }
        j += 1;
    }
    (text, j)
}

fn open_char(t: &Tok) -> char {
    match t {
        Tok::Open(c) => *c,
        _ => ' ',
    }
}

fn close_char(t: &Tok) -> char {
    match t {
        Tok::Close(c) => *c,
        _ => ' ',
    }
}

/// Skip past a balanced bracket group starting at `i` (which must be an
/// `Open`). Returns the index just past the matching close.
fn skip_group(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Does an attribute body name `test` in a cfg position (`cfg(test)`,
/// `cfg(all(test, …))`, `cfg_attr(test, …)`)?
fn attr_is_cfg_test(attr: &str) -> bool {
    if !attr.starts_with("cfg") {
        return false;
    }
    let mut rest = attr;
    while let Some(pos) = rest.find("test") {
        let before_ok =
            rest[..pos].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after_ok =
            rest[pos + 4..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + 4..];
    }
    false
}

/// Parse one file. `source` is the original text (for cfg feature
/// names), `scanned` its masked view.
pub fn parse(source: &str, scanned: &ScannedFile) -> ParsedFile {
    let toks = tokenize(&scanned.masked);
    let mut out = ParsedFile {
        cfg_features: extract_cfg_features(source, scanned),
        ..ParsedFile::default()
    };

    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut pending_vis = Visibility::Private;
    let mut i = 0usize;

    macro_rules! clear_pending {
        () => {{
            pending_attrs.clear();
            pending_vis = Visibility::Private;
        }};
    }

    while i < toks.len() {
        let line = toks[i].line;
        match &toks[i].tok {
            // Attribute: `#[...]` or `#![...]`.
            Tok::Punct('#') => {
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Open('['))) {
                    let (text, ni) = capture_group(&toks, j);
                    pending_attrs.push(text);
                    i = ni;
                } else {
                    i += 1;
                }
            }
            Tok::Ident(w) if w == "pub" => {
                i += 1;
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Open('('))) {
                    pending_vis = Visibility::Crate;
                    i = skip_group(&toks, i);
                } else {
                    pending_vis = Visibility::Public;
                }
            }
            Tok::Ident(w) if w == "mod" => {
                let name = toks
                    .get(i + 1)
                    .and_then(|t| ident_of(&t.tok))
                    .unwrap_or("")
                    .to_string();
                i += 2;
                // `mod name;` declares a file module — nothing to scope.
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Open('{'))) {
                    let cfg_test = enclosing_cfg_test(&scopes)
                        || pending_attrs.iter().any(|a| attr_is_cfg_test(a));
                    scopes.push(Scope { kind: ScopeKind::Module(name), cfg_test });
                    i += 1;
                }
                clear_pending!();
            }
            Tok::Ident(w) if w == "impl" => {
                let (scope, ni) = parse_impl_header(&toks, i + 1);
                let cfg_test = enclosing_cfg_test(&scopes)
                    || pending_attrs.iter().any(|a| attr_is_cfg_test(a));
                scopes.push(Scope { kind: scope, cfg_test });
                i = ni;
                clear_pending!();
            }
            Tok::Ident(w) if w == "trait" => {
                let name = toks
                    .get(i + 1)
                    .and_then(|t| ident_of(&t.tok))
                    .unwrap_or("")
                    .to_string();
                // Scan to the trait's `{` (or `;` for alias-like forms).
                let mut j = i + 1;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Open('{') => break,
                        Tok::Punct(';') => break,
                        Tok::Open(_) => {
                            j = skip_group(&toks, j);
                            continue;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Open('{'))) {
                    let cfg_test = enclosing_cfg_test(&scopes)
                        || pending_attrs.iter().any(|a| attr_is_cfg_test(a));
                    scopes.push(Scope { kind: ScopeKind::Trait(name), cfg_test });
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                clear_pending!();
            }
            Tok::Ident(w) if w == "fn" => {
                let name = toks
                    .get(i + 1)
                    .and_then(|t| ident_of(&t.tok))
                    .unwrap_or("")
                    .to_string();
                // Signature runs to the body `{` or a terminating `;`,
                // skipping bracket groups (argument list, where-bounds).
                let mut j = i + 1;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Open('{') => {
                            let start_line = toks[j].line;
                            let end = skip_group(&toks, j);
                            let end_line =
                                toks.get(end.saturating_sub(1)).map_or(start_line, |t| t.line);
                            body = Some((start_line, end_line));
                            j = end;
                            break;
                        }
                        Tok::Punct(';') => {
                            j += 1;
                            break;
                        }
                        Tok::Open(_) => {
                            j = skip_group(&toks, j);
                            continue;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let cfg_test = enclosing_cfg_test(&scopes)
                    || pending_attrs.iter().any(|a| attr_is_cfg_test(a));
                let (impl_type, trait_impl) = impl_context(&scopes);
                out.fns.push(FnItem {
                    name,
                    module: module_path(&scopes),
                    impl_type,
                    trait_impl,
                    vis: pending_vis,
                    line,
                    body,
                    cfg_test,
                    cfgs: pending_attrs
                        .iter()
                        .filter(|a| a.starts_with("cfg"))
                        .cloned()
                        .collect(),
                });
                i = j;
                clear_pending!();
            }
            Tok::Ident(w) if w == "use" => {
                let mut j = i + 1;
                let mut path = String::new();
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct(';') => break,
                        Tok::Ident(s) => {
                            if path.ends_with(|c: char| is_ident_char(c)) {
                                path.push(' ');
                            }
                            path.push_str(s);
                        }
                        Tok::Punct(p) => path.push(*p),
                        Tok::Open(c) => path.push(*c),
                        Tok::Close(c) => path.push(*c),
                    }
                    j += 1;
                }
                out.uses.push(UseDecl { line, path });
                i = j + 1;
                clear_pending!();
            }
            Tok::Ident(w) if w == "macro_rules" => {
                // `macro_rules! name { arbitrary token soup }` — the body
                // may contain `fn` fragments; skip it wholesale.
                let mut j = i + 1;
                while j < toks.len() && !matches!(toks[j].tok, Tok::Open(_)) {
                    j += 1;
                }
                i = if j < toks.len() { skip_group(&toks, j) } else { j };
                clear_pending!();
            }
            // `const fn` keeps its pending qualifiers; a const *item*
            // consumes them (its initializer may contain brace groups,
            // which fall through to the generic handling below).
            Tok::Ident(w) if w == "const" || w == "static" || w == "unsafe" || w == "async"
                || w == "extern" || w == "default" =>
            {
                i += 1;
            }
            Tok::Ident(w)
                if w == "struct" || w == "enum" || w == "union" || w == "type" =>
            {
                i += 1;
                clear_pending!();
            }
            Tok::Open('{') => {
                scopes.push(Scope {
                    kind: ScopeKind::Other,
                    cfg_test: enclosing_cfg_test(&scopes),
                });
                i += 1;
                clear_pending!();
            }
            Tok::Close('}') => {
                scopes.pop();
                i += 1;
            }
            Tok::Open(_) => {
                i = skip_group(&toks, i);
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

fn enclosing_cfg_test(scopes: &[Scope]) -> bool {
    scopes.iter().any(|s| s.cfg_test)
}

fn module_path(scopes: &[Scope]) -> Vec<String> {
    scopes
        .iter()
        .filter_map(|s| match &s.kind {
            ScopeKind::Module(m) => Some(m.clone()),
            _ => None,
        })
        .collect()
}

fn impl_context(scopes: &[Scope]) -> (Option<String>, bool) {
    for s in scopes.iter().rev() {
        match &s.kind {
            ScopeKind::Impl { ty, trait_impl } => return (ty.clone(), *trait_impl),
            ScopeKind::Trait(name) => return (Some(name.clone()), true),
            _ => {}
        }
    }
    (None, false)
}

/// Parse an `impl` header starting just past the `impl` keyword:
/// `impl<G> Type<G> {`, `impl Trait for Type {`. Returns the scope and
/// the index just past the opening `{`.
fn parse_impl_header(toks: &[Token], start: usize) -> (ScopeKind, usize) {
    let mut j = start;
    let mut angle = 0i64;
    let mut prev_dash = false;
    let mut idents_top: Vec<String> = Vec::new();
    let mut after_for: Option<usize> = None;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Open('{') => {
                let pool: Vec<String> = match after_for {
                    Some(k) => idents_top[k..].to_vec(),
                    None => idents_top.clone(),
                };
                let ty = pool.into_iter().next_back();
                return (
                    ScopeKind::Impl { ty, trait_impl: after_for.is_some() },
                    j + 1,
                );
            }
            Tok::Punct(';') => {
                // Degenerate (`impl Trait for Type;` never parses in real
                // Rust, but stay robust).
                return (ScopeKind::Other, j + 1);
            }
            Tok::Open(_) => {
                j = skip_group(toks, j);
                prev_dash = false;
                continue;
            }
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => {
                if prev_dash {
                    // `->` arrow inside an fn-pointer type.
                } else if angle > 0 {
                    angle -= 1;
                }
            }
            Tok::Ident(w) if w == "where" && angle == 0 => {
                // Bounds follow; the self type is already collected.
                // Fast-forward to the `{`.
                let mut k = j + 1;
                while k < toks.len() {
                    match &toks[k].tok {
                        Tok::Open('{') => {
                            let pool: Vec<String> = match after_for {
                                Some(p) => idents_top[p..].to_vec(),
                                None => idents_top.clone(),
                            };
                            let ty = pool.into_iter().next_back();
                            return (
                                ScopeKind::Impl { ty, trait_impl: after_for.is_some() },
                                k + 1,
                            );
                        }
                        Tok::Open(_) => {
                            k = skip_group(toks, k);
                            continue;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return (ScopeKind::Other, k);
            }
            Tok::Ident(w) if w == "for" && angle == 0 => {
                after_for = Some(idents_top.len());
            }
            Tok::Ident(w) if angle == 0 && w != "dyn" => {
                idents_top.push(w.clone());
            }
            _ => {}
        }
        prev_dash = matches!(&toks[j].tok, Tok::Punct('-'));
        j += 1;
    }
    (ScopeKind::Other, j)
}

// ---------------------------------------------------------------------------
// cfg feature extraction (reads the original text)
// ---------------------------------------------------------------------------

/// Collect every `feature = "name"` occurrence on lines that carry a
/// `cfg` token in *code* position (masked view) — `#[cfg(feature =
/// "x")]`, `#[cfg_attr(feature = "x", …)]`, `cfg!(feature = "x")`.
/// Prose in comments or strings never matches because the `cfg` token
/// itself is masked there.
fn extract_cfg_features(source: &str, scanned: &ScannedFile) -> Vec<CfgFeature> {
    let mut out = Vec::new();
    let masked_lines = scanned.masked_lines();
    for (idx, orig) in source.lines().enumerate() {
        let Some(masked) = masked_lines.get(idx) else { continue };
        if !has_word(masked, "cfg") && !has_word(masked, "cfg_attr") {
            continue;
        }
        let mut rest = orig;
        let mut base = 0usize;
        while let Some(pos) = rest.find("feature") {
            let abs = base + pos;
            let before_ok =
                orig[..abs].chars().next_back().is_none_or(|c| !is_ident_char(c));
            let after = &orig[abs + "feature".len()..];
            let trimmed = after.trim_start();
            if before_ok {
                if let Some(eq_rest) = trimmed.strip_prefix('=') {
                    let v = eq_rest.trim_start();
                    if let Some(q) = v.strip_prefix('"') {
                        if let Some(close) = q.find('"') {
                            out.push(CfgFeature {
                                line: idx + 1,
                                name: q[..close].to_string(),
                            });
                        }
                    }
                }
            }
            base = abs + "feature".len();
            rest = &orig[base..];
        }
    }
    out
}

fn has_word(line: &str, word: &str) -> bool {
    let mut from = 0usize;
    while let Some(rel) = line[from..].find(word) {
        let start = from + rel;
        let end = start + word.len();
        let before_ok = line[..start].chars().next_back().is_none_or(|c| !is_ident_char(c));
        let after_ok = line[end..].chars().next().is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parsed(src: &str) -> ParsedFile {
        parse(src, &scan(src))
    }

    #[test]
    fn plain_and_pub_fns_with_spans() {
        let src = "\
pub fn alpha(x: u32) -> u32 {
    x + 1
}

fn beta() {}
pub(crate) fn gamma() -> Result<(), ()> {
    Ok(())
}
";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "alpha");
        assert_eq!(p.fns[0].vis, Visibility::Public);
        assert_eq!(p.fns[0].body, Some((1, 3)));
        assert_eq!(p.fns[1].name, "beta");
        assert_eq!(p.fns[1].vis, Visibility::Private);
        assert_eq!(p.fns[1].body, Some((5, 5)));
        assert_eq!(p.fns[2].vis, Visibility::Crate);
    }

    #[test]
    fn impl_blocks_and_trait_impls() {
        let src = "\
struct Foo;
impl Foo {
    pub fn new() -> Foo { Foo }
    fn helper(&self) {}
}
impl std::fmt::Display for Foo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"foo\")
    }
}
impl<T: Clone> From<T> for Foo where T: Default {
    fn from(_: T) -> Foo { Foo }
}
";
        let p = parsed(src);
        let names: Vec<(&str, Option<&str>, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.trait_impl))
            .collect();
        assert_eq!(
            names,
            vec![
                ("new", Some("Foo"), false),
                ("helper", Some("Foo"), false),
                ("fmt", Some("Foo"), true),
                ("from", Some("Foo"), true),
            ]
        );
        assert_eq!(p.fns[0].vis, Visibility::Public);
    }

    #[test]
    fn modules_nest_and_cfg_test_propagates() {
        let src = "\
mod outer {
    pub fn visible() {}
    #[cfg(test)]
    mod tests {
        fn helper() { body(); }
    }
}
#[cfg(test)]
fn top_level_test_helper() {}
";
        let p = parsed(src);
        assert_eq!(p.fns[0].module, vec!["outer".to_string()]);
        assert!(!p.fns[0].cfg_test);
        assert_eq!(p.fns[1].name, "helper");
        assert!(p.fns[1].cfg_test);
        assert!(p.fns[2].cfg_test);
    }

    #[test]
    fn trait_decl_methods_are_trait_callable() {
        let src = "\
pub trait Worker {
    fn update(&mut self, round: u32) -> u32;
    fn reset(&mut self) {
        self.update(0);
    }
}
";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns.iter().all(|f| f.trait_impl));
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Worker"));
        assert_eq!(p.fns[0].body, None);
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn strings_and_macros_cannot_fake_items() {
        let src = "\
pub fn real() {
    let s = \"fn fake_in_string() {}\";
    let _ = s;
}
macro_rules! gen {
    () => {
        fn fake_in_macro() {}
    };
}
fn after_macro() {}
";
        let p = parsed(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "after_macro"]);
    }

    #[test]
    fn use_decls_and_cfg_features() {
        let src = "\
use std::collections::BTreeMap;
use fedprox_net::{NetworkRuntime, runtime::NetError};

#[cfg(feature = \"telemetry\")]
pub fn armed() {}

pub fn probe() -> bool {
    cfg!(feature = \"check\")
}
// a comment mentioning cfg(feature = \"not-real\") is ignored
";
        let p = parsed(src);
        assert_eq!(p.uses.len(), 2);
        assert!(p.uses[1].path.contains("fedprox_net"));
        let names: Vec<&str> = p.cfg_features.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["telemetry", "check"]);
        assert_eq!(p.cfg_features[0].line, 4);
    }

    #[test]
    fn fn_containing_maps_lines_to_bodies() {
        let src = "\
pub fn a() {
    inner();
}

pub fn b() { x(); }
";
        let p = parsed(src);
        assert_eq!(p.fn_containing(2), Some(0));
        assert_eq!(p.fn_containing(5), Some(1));
        assert_eq!(p.fn_containing(4), None);
    }

    #[test]
    fn const_fn_keeps_visibility() {
        let src = "pub const fn answer() -> u32 { 42 }\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].vis, Visibility::Public);
        assert_eq!(p.fns[0].name, "answer");
    }

    #[test]
    fn generic_signatures_span_lines() {
        let src = "\
pub fn run<W: Worker>(
    &self,
    workers: Vec<W>,
    on_round: impl FnMut(u32, &[f64]) -> bool,
) -> Result<Report, NetError> {
    body()
}
";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "run");
        assert_eq!(p.fns[0].body, Some((5, 7)));
    }
}
