//! Workspace call graph over parsed sources.
//!
//! Nodes are the `fn` items the [`crate::parser`] extracted from every
//! crate's library sources; edges are *possible* calls, resolved by
//! name:
//!
//! * free calls `foo(...)` resolve to same-crate free fns, falling back
//!   to `use`-imported fns from other workspace crates;
//! * qualified calls `Type::foo(...)` / `module::foo(...)` resolve
//!   through the path's qualifier, with the leading segment mapped via
//!   `use` declarations and workspace package names;
//! * method calls `.foo(...)` resolve to every impl of that method name
//!   in the caller's crate plus `pub`/trait-callable impls elsewhere —
//!   conservative over-approximation, trimmed by a deny list of
//!   ubiquitous std method names so `.clone()` does not connect the
//!   world.
//!
//! The graph is an over-approximation by construction: an edge means "a
//! call with this shape could land here", which is the right direction
//! for reachability lints (false edges can only make the analysis more
//! cautious, never blind). Known misses — function references passed
//! without call parens (`map(Device::samples)`) and calls through
//! generic parameters (`M::dim()`) — are documented limitations.

use crate::lexer::ScannedFile;
use crate::parser::{FnItem, ParsedFile, Visibility};
use std::collections::BTreeMap;

/// One analyzed source file with everything the graph and rules need.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate directory name under `crates/` (e.g. `core`).
    pub crate_name: String,
    /// Workspace-relative display path.
    pub display: String,
    /// Whether the file lives under `src/bin/` (excluded from the graph
    /// and from public-entry reasoning).
    pub is_bin: bool,
    /// Original text.
    pub source: String,
    /// Masked view + comments.
    pub scanned: ScannedFile,
    /// Item structure.
    pub parsed: ParsedFile,
}

/// One graph node: an `fn` item.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the file list passed to [`build`].
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub fn_idx: usize,
    /// Owning crate directory name.
    pub crate_name: String,
    /// `crate::module::Type::name` display form.
    pub qualified: String,
    /// Whether the fn is `pub` (a public-API entry candidate).
    pub public: bool,
    /// Whether the fn is callable through a trait (trait impls and
    /// trait-declaration defaults) — externally invokable without `pub`.
    pub trait_callable: bool,
}

/// Reachability result from a set of entry nodes (BFS, unit edge cost).
#[derive(Debug, Clone)]
pub struct Reachability {
    /// Shortest distance in calls from any entry, per node.
    pub dist: Vec<Option<u32>>,
    /// BFS predecessor on a shortest path, per node.
    pub parent: Vec<Option<usize>>,
}

/// The workspace call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// All nodes.
    pub nodes: Vec<Node>,
    /// Caller → callee adjacency (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// (file index, fn index) → node id.
    by_fn: BTreeMap<(usize, usize), usize>,
}

/// Method names too ubiquitous to resolve by name alone: edges through
/// them would connect every crate to every collection/iterator helper.
const METHOD_DENY: &[&str] = &[
    "abs", "all", "and_then", "any", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str",
    "borrow", "borrow_mut", "chain", "clamp", "clear", "clone", "cloned", "cmp", "collect",
    "contains", "contains_key", "copied", "count", "dedup", "drain", "entry", "enumerate",
    "eq", "exp", "extend", "filter", "filter_map", "find", "flat_map", "flatten", "flush",
    "fmt", "fold", "for_each", "from", "get", "get_mut", "hash", "insert", "into",
    "into_iter", "is_empty", "is_finite", "is_nan", "is_some", "is_none", "iter",
    "iter_mut", "join", "keys", "last", "len", "ln", "lock", "map", "map_err", "max",
    "max_by", "min", "min_by", "ne", "next", "next_back", "ok", "ok_or", "ok_or_else",
    "partial_cmp", "pop", "position", "powf", "powi", "product", "push", "push_str",
    "read", "recv", "remove", "resize", "retain", "rev", "send", "skip", "sort",
    "sort_by", "sort_by_key", "sort_unstable", "split", "sqrt", "starts_with", "step_by",
    "sum", "take", "then", "to_owned", "to_string", "to_vec", "trim", "truncate",
    "unwrap_or", "unwrap_or_default", "unwrap_or_else", "values", "values_mut", "windows",
    "with_capacity", "write", "zip",
];

/// Keywords that look like `ident (` in expression position.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "let", "else", "break",
    "continue", "move", "fn", "unsafe", "await", "dyn", "where", "impl",
];

/// A call site extracted from one masked line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `a::b::name(...)` or bare `name(...)` — path segments in order.
    Free(Vec<String>),
    /// `.name(...)`.
    Method(String),
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extract the call sites on one masked line.
pub fn calls_on_line(line: &str) -> Vec<Call> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if !(chars[i].is_alphabetic() || chars[i] == '_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        // A leading digit cannot start an ident, so chars[start..i] is a name.
        let name: String = chars[start..i].iter().collect();
        let mut j = i;
        while j < chars.len() && chars[j] == ' ' {
            j += 1;
        }
        // Turbofish: `name::<T>(…)`.
        if chars.get(j) == Some(&':') && chars.get(j + 1) == Some(&':') && chars.get(j + 2) == Some(&'<')
        {
            let mut depth = 0i64;
            let mut k = j + 2;
            while k < chars.len() {
                match chars[k] {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
            while j < chars.len() && chars[j] == ' ' {
                j += 1;
            }
        }
        if chars.get(j) != Some(&'(') {
            continue;
        }
        // Macro invocations (`name!(`) never have `(` directly after the
        // ident, so they are already excluded here.
        let prev = chars[..start].iter().rev().find(|c| **c != ' ').copied();
        if prev == Some('.') {
            out.push(Call::Method(name));
            continue;
        }
        // Walk the path backwards through `::` separators.
        let mut segments = vec![name];
        let mut end = start;
        loop {
            if end >= 2 && chars[end - 1] == ':' && chars[end - 2] == ':' {
                let mut s = end - 2;
                while s > 0 && is_ident_char(chars[s - 1]) {
                    s -= 1;
                }
                if s == end - 2 {
                    // `>::name(` / `)::name(` qualified-self forms: stop.
                    break;
                }
                segments.insert(0, chars[s..end - 2].iter().collect());
                end = s;
            } else {
                break;
            }
        }
        if segments.len() == 1 && CALL_KEYWORDS.contains(&segments[0].as_str()) {
            continue;
        }
        out.push(Call::Free(segments));
    }
    out
}

/// Build the graph. `pkg_idents` maps a crate's path identifier
/// (`fedprox_net`) to its directory name (`net`); files under `src/bin/`
/// and `#[cfg(test)]` fns are excluded.
pub fn build(files: &[SourceFile], pkg_idents: &BTreeMap<String, String>) -> CallGraph {
    let mut nodes = Vec::new();
    let mut by_fn = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if file.is_bin {
            continue;
        }
        for (xi, f) in file.parsed.fns.iter().enumerate() {
            if f.cfg_test {
                continue;
            }
            let id = nodes.len();
            nodes.push(Node {
                file: fi,
                fn_idx: xi,
                crate_name: file.crate_name.clone(),
                qualified: format!("{}::{}", file.crate_name, f.qualified()),
                public: f.vis == Visibility::Public,
                trait_callable: f.trait_impl,
            });
            by_fn.insert((fi, xi), id);
        }
    }

    // Name indices. Free fns and associated fns are kept separate so a
    // bare `foo(` cannot resolve to a method.
    let mut free_idx: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut typed_idx: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut method_idx: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, node) in nodes.iter().enumerate() {
        let item = &files[node.file].parsed.fns[node.fn_idx];
        let key = (node.crate_name.as_str(), item.name.as_str());
        if item.impl_type.is_some() {
            typed_idx.entry(key).or_default().push(id);
            method_idx.entry(item.name.as_str()).or_default().push(id);
        } else {
            free_idx.entry(key).or_default().push(id);
        }
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for caller in 0..nodes.len() {
        let node = &nodes[caller];
        let file = &files[node.file];
        let item = &file.parsed.fns[node.fn_idx];
        let Some((body_start, body_end)) = item.body else { continue };
        let use_map = use_imports(&file.parsed, pkg_idents);
        let masked = file.scanned.masked_lines();
        let mut out: Vec<usize> = Vec::new();
        for line_no in body_start..=body_end {
            let Some(line) = masked.get(line_no - 1) else { continue };
            // The first body line still carries the signature up to the
            // opening brace — `pub fn drive(w: &Worker) {` must not read
            // `drive(` as a self-call.
            let line: &str = if line_no == body_start {
                line.find('{').map_or("", |p| &line[p + 1..])
            } else {
                line
            };
            for call in calls_on_line(line) {
                resolve(
                    &call, node, item, files, &nodes, &free_idx, &typed_idx, &method_idx,
                    &use_map, pkg_idents, &mut out,
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        edges[caller] = out;
    }

    CallGraph { nodes, edges, by_fn }
}

/// Map every name a file imports from a workspace crate to that crate's
/// directory name. `use fedprox_net::{NetworkRuntime, runtime::NetError}`
/// maps `NetworkRuntime`, `runtime`, and `NetError` to `net`.
fn use_imports(parsed: &ParsedFile, pkg_idents: &BTreeMap<String, String>) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for decl in &parsed.uses {
        let Some(first) = decl.path.split("::").next() else { continue };
        let Some(crate_dir) = pkg_idents.get(first.trim()) else { continue };
        let tail = &decl.path[first.len()..];
        let mut ident = String::new();
        for c in tail.chars() {
            if is_ident_char(c) {
                ident.push(c);
            } else {
                if !ident.is_empty() && ident != "as" {
                    map.insert(std::mem::take(&mut ident), crate_dir.clone());
                }
                ident.clear();
            }
        }
        if !ident.is_empty() && ident != "as" {
            map.insert(ident, crate_dir.clone());
        }
    }
    map
}

/// Too-popular method names resolve everywhere; above this candidate
/// count an edge fan-out says more about the name than the call.
const METHOD_FANOUT_CAP: usize = 12;

#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &Call,
    caller: &Node,
    caller_item: &FnItem,
    files: &[SourceFile],
    nodes: &[Node],
    free_idx: &BTreeMap<(&str, &str), Vec<usize>>,
    typed_idx: &BTreeMap<(&str, &str), Vec<usize>>,
    method_idx: &BTreeMap<&str, Vec<usize>>,
    use_map: &BTreeMap<String, String>,
    pkg_idents: &BTreeMap<String, String>,
    out: &mut Vec<usize>,
) {
    match call {
        Call::Method(name) => {
            if METHOD_DENY.contains(&name.as_str()) {
                return;
            }
            let Some(candidates) = method_idx.get(name.as_str()) else { return };
            if candidates.len() > METHOD_FANOUT_CAP {
                return;
            }
            for &id in candidates {
                let n = &nodes[id];
                if n.crate_name == caller.crate_name || n.public || n.trait_callable {
                    out.push(id);
                }
            }
        }
        Call::Free(segments) => {
            let mut segs: Vec<&str> = segments.iter().map(String::as_str).collect();
            let mut target_crate = caller.crate_name.as_str();
            let mut cross = false;
            if segs.len() > 1 {
                if let Some(dir) = pkg_idents.get(segs[0]) {
                    target_crate = dir;
                    cross = *dir != caller.crate_name;
                    segs.remove(0);
                } else if segs[0] == "crate" || segs[0] == "self" || segs[0] == "super" {
                    segs.remove(0);
                } else if let Some(dir) = use_map.get(segs[0]) {
                    target_crate = dir;
                    cross = *dir != caller.crate_name;
                }
            }
            let Some(&name) = segs.last() else { return };
            let qualifier = if segs.len() >= 2 { Some(segs[segs.len() - 2]) } else { None };
            match qualifier {
                Some("Self") => {
                    if let Some(ids) = typed_idx.get(&(caller.crate_name.as_str(), name)) {
                        for &id in ids {
                            let n = &nodes[id];
                            let it = &files[n.file].parsed.fns[n.fn_idx];
                            if it.impl_type == caller_item.impl_type {
                                out.push(id);
                            }
                        }
                    }
                }
                Some(q) => {
                    // `Type::name(…)` or `module::name(…)`.
                    if let Some(ids) = typed_idx.get(&(target_crate, name)) {
                        for &id in ids {
                            let n = &nodes[id];
                            let it = &files[n.file].parsed.fns[n.fn_idx];
                            if it.impl_type.as_deref() == Some(q) && (!cross || n.public || n.trait_callable)
                            {
                                out.push(id);
                            }
                        }
                    }
                    if let Some(ids) = free_idx.get(&(target_crate, name)) {
                        for &id in ids {
                            let n = &nodes[id];
                            let it = &files[n.file].parsed.fns[n.fn_idx];
                            if it.module.last().is_some_and(|m| m == q) && (!cross || n.public) {
                                out.push(id);
                            }
                        }
                    }
                }
                None => {
                    let mut found = false;
                    if let Some(ids) = free_idx.get(&(target_crate, name)) {
                        for &id in ids {
                            if !cross || nodes[id].public {
                                out.push(id);
                                found = true;
                            }
                        }
                    }
                    if !found && !cross {
                        // A bare imported name: `use fedprox_net::transfer;
                        // … transfer(…)`.
                        if let Some(dir) = use_map.get(name) {
                            if let Some(ids) = free_idx.get(&(dir.as_str(), name)) {
                                for &id in ids {
                                    if nodes[id].public {
                                        out.push(id);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

impl CallGraph {
    /// Node id for a (file index, fn index) pair.
    pub fn node_for(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.by_fn.get(&(file, fn_idx)).copied()
    }

    /// Multi-source BFS from `entries` along call edges.
    pub fn reachability(&self, entries: &[usize]) -> Reachability {
        let mut dist: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if e < dist.len() && dist[e].is_none() {
                dist[e] = Some(0);
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u].unwrap_or(0);
            for &v in &self.edges[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        Reachability { dist, parent }
    }

    /// The shortest entry→node call chain as qualified names.
    pub fn chain_to(&self, reach: &Reachability, node: usize) -> Vec<String> {
        let mut rev = Vec::new();
        let mut cur = Some(node);
        while let Some(id) = cur {
            rev.push(self.nodes[id].qualified.clone());
            if rev.len() > self.nodes.len() {
                break; // cycle guard; parents from BFS cannot cycle, stay defensive
            }
            cur = reach.parent[id];
        }
        rev.reverse();
        rev
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::parser::parse;

    fn file(crate_name: &str, display: &str, src: &str) -> SourceFile {
        let scanned = scan(src);
        let parsed = parse(src, &scanned);
        SourceFile {
            crate_name: crate_name.to_string(),
            display: display.to_string(),
            is_bin: false,
            source: src.to_string(),
            scanned,
            parsed,
        }
    }

    fn idents() -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        m.insert("fedprox_alpha".to_string(), "alpha".to_string());
        m.insert("fedprox_beta".to_string(), "beta".to_string());
        m
    }

    #[test]
    fn extracts_free_method_and_qualified_calls() {
        let calls = calls_on_line("let x = helper(Device::new(1).update(w), other::go());");
        assert!(calls.contains(&Call::Free(vec!["helper".to_string()])));
        assert!(calls.contains(&Call::Free(vec!["Device".to_string(), "new".to_string()])));
        assert!(calls.contains(&Call::Method("update".to_string())));
        assert!(calls.contains(&Call::Free(vec!["other".to_string(), "go".to_string()])));
    }

    #[test]
    fn keywords_macros_and_turbofish() {
        let calls = calls_on_line("if check::<f64>(x) { return make!(y); } while go() {}");
        assert_eq!(
            calls,
            vec![Call::Free(vec!["check".to_string()]), Call::Free(vec!["go".to_string()])]
        );
    }

    #[test]
    fn within_crate_edges_and_reachability() {
        let files = vec![file(
            "alpha",
            "crates/alpha/src/lib.rs",
            "\
pub fn entry() {
    step_one();
}
fn step_one() {
    step_two();
}
fn step_two() {}
fn orphan() {}
",
        )];
        let g = build(&files, &idents());
        assert_eq!(g.nodes.len(), 4);
        let entry = g.node_for(0, 0).expect("entry node");
        let two = g.node_for(0, 2).expect("step_two node");
        let orphan = g.node_for(0, 3).expect("orphan node");
        let reach = g.reachability(&[entry]);
        assert_eq!(reach.dist[two], Some(2));
        assert_eq!(reach.dist[orphan], None);
        let chain = g.chain_to(&reach, two);
        assert_eq!(chain, vec!["alpha::entry", "alpha::step_one", "alpha::step_two"]);
    }

    #[test]
    fn cross_crate_edges_respect_pub() {
        let files = vec![
            file(
                "alpha",
                "crates/alpha/src/lib.rs",
                "\
use fedprox_beta::exported;
pub fn caller() {
    exported();
    fedprox_beta::also_exported();
}
",
            ),
            file(
                "beta",
                "crates/beta/src/lib.rs",
                "\
pub fn exported() { hidden(); }
pub fn also_exported() {}
fn hidden() {}
",
            ),
        ];
        let g = build(&files, &idents());
        let caller = g.node_for(0, 0).expect("caller");
        let exported = g.node_for(1, 0).expect("exported");
        let also = g.node_for(1, 1).expect("also_exported");
        assert!(g.edges[caller].contains(&exported));
        assert!(g.edges[caller].contains(&also));
    }

    #[test]
    fn method_calls_resolve_to_impls_not_denied_names() {
        let files = vec![file(
            "alpha",
            "crates/alpha/src/lib.rs",
            "\
pub struct Worker;
impl Worker {
    pub fn update(&mut self) {
        self.commit();
    }
    fn commit(&mut self) {}
}
pub fn drive(w: &mut Worker) {
    w.update();
    w.clone();
}
",
        )];
        let g = build(&files, &idents());
        let drive = g.node_for(0, 2).expect("drive");
        let update = g.node_for(0, 0).expect("update");
        let commit = g.node_for(0, 1).expect("commit");
        assert!(g.edges[drive].contains(&update));
        assert!(g.edges[update].contains(&commit));
        // `.clone()` is denied: no edge beyond update.
        assert_eq!(g.edges[drive], vec![update]);
    }

    #[test]
    fn cfg_test_fns_are_not_nodes() {
        let files = vec![file(
            "alpha",
            "crates/alpha/src/lib.rs",
            "\
pub fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { real(); }
}
",
        )];
        let g = build(&files, &idents());
        assert_eq!(g.nodes.len(), 1);
    }
}
