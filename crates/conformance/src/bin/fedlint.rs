//! `fedlint` — static conformance checker for the FedProxVR workspace.
//!
//! Usage:
//!
//! ```text
//! fedlint --workspace [--root DIR]   # check crates/*/src/**.rs
//! fedlint FILE.rs [FILE.rs ...]      # check individual files (all rules
//!                                    #  except lossy-cast)
//! ```
//!
//! Exit status is 0 when the checked sources are clean, 1 when any
//! violation (or malformed annotation) is found, 2 on usage/IO errors.

use fedprox_conformance::{check_source, check_workspace, Report, Rule, RuleSet};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: fedlint --workspace [--root DIR]");
    eprintln!("       fedlint FILE.rs [FILE.rs ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("fedlint: FedProxVR workspace conformance checker");
                return usage();
            }
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    let report = if workspace {
        let root = root.unwrap_or_else(find_workspace_root);
        match check_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fedlint: cannot walk workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut merged = Report::default();
        let rules = RuleSet::all().without(Rule::LossyCast);
        for file in &files {
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("fedlint: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            };
            let sub = check_source(&file.to_string_lossy(), &source, rules);
            merged.violations.extend(sub.violations);
            merged.allowed.extend(sub.allowed);
            merged.bad_annotations.extend(sub.bad_annotations);
        }
        merged
    };

    for v in &report.bad_annotations {
        println!("{v}");
    }
    for v in &report.violations {
        println!("{v}");
    }
    if report.is_clean() {
        println!(
            "fedlint: clean ({} annotated allowance{})",
            report.allowed.len(),
            if report.allowed.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "fedlint: {} violation(s), {} malformed annotation(s), {} allowed site(s)",
            report.violations.len(),
            report.bad_annotations.len(),
            report.allowed.len()
        );
        ExitCode::FAILURE
    }
}

/// Default root: walk up from the current directory to the first
/// directory containing a `crates/` subdirectory, else use `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
