//! `fedlint` — static conformance checker for the FedProxVR workspace.
//!
//! Usage:
//!
//! ```text
//! fedlint report [--root DIR] [--json PATH] [--all]
//!     Run the full v2 engine (R1–R6 + D/P/F rules) and print findings;
//!     --json writes the fedlint/v1 report document. Exit 0 regardless
//!     of findings (informational; gate with `check`).
//!
//! fedlint check --baseline LINT_BASELINE.json [--gate] [--root DIR]
//!     Run the engine and compare per-rule counts against the committed
//!     budgets. Exit 0 within budget, 1 on any breach, 2 on IO errors.
//!     --gate additionally fails on malformed annotations (they always
//!     breach) and prints the gate table.
//!
//! fedlint baseline [--root DIR] [--out PATH]
//!     Snapshot current counts as a baseline document (stdout or PATH).
//!
//! fedlint graph [--root DIR] [--dot]
//!     Print call-graph statistics, or the full graph in DOT format.
//!
//! fedlint --workspace [--root DIR]      # legacy lexer-only pass
//! fedlint FILE.rs [FILE.rs ...]         # legacy per-file pass
//! ```

use fedprox_conformance::engine::{self, Analysis, Baseline};
use fedprox_conformance::{check_source, check_workspace, Report, Rule, RuleSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: fedlint report [--root DIR] [--json PATH] [--all]");
    eprintln!("       fedlint check --baseline PATH [--gate] [--root DIR]");
    eprintln!("       fedlint baseline [--root DIR] [--out PATH]");
    eprintln!("       fedlint graph [--root DIR] [--dot]");
    eprintln!("       fedlint --workspace [--root DIR]");
    eprintln!("       fedlint FILE.rs [FILE.rs ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => usage(),
        Some("report") => cmd_report(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("baseline") => cmd_baseline(&args[1..]),
        Some("graph") => cmd_graph(&args[1..]),
        Some("--help" | "-h") => {
            println!("fedlint: FedProxVR workspace conformance checker");
            usage()
        }
        _ => legacy(args),
    }
}

/// Pull `--root DIR` (defaulting to the nearest `crates/` ancestor) and
/// leave the remaining flags.
fn split_root(args: &[String]) -> Option<(PathBuf, Vec<String>)> {
    let mut root: Option<PathBuf> = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--root" {
            root = Some(PathBuf::from(it.next()?));
        } else {
            rest.push(arg.clone());
        }
    }
    Some((root.unwrap_or_else(find_workspace_root), rest))
}

fn analyze_or_exit(root: &Path) -> Result<Analysis, ExitCode> {
    engine::analyze(root).map_err(|e| {
        eprintln!("fedlint: cannot analyze workspace at {}: {e}", root.display());
        ExitCode::from(2)
    })
}

fn cmd_report(args: &[String]) -> ExitCode {
    let Some((root, rest)) = split_root(args) else { return usage() };
    let mut json_path: Option<PathBuf> = None;
    let mut show_allowed = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--all" => show_allowed = true,
            _ => return usage(),
        }
    }
    let analysis = match analyze_or_exit(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    for v in &analysis.bad_annotations {
        println!("{v}");
    }
    for f in &analysis.findings {
        if f.allowed.is_none() || show_allowed {
            let marker = if f.allowed.is_some() { " [allowed]" } else { "" };
            println!("{f}{marker}");
        }
    }
    println!();
    print_counts(&analysis);
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, analysis.to_json()) {
            eprintln!("fedlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("fedlint: report written to {}", path.display());
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some((root, rest)) = split_root(args) else { return usage() };
    let mut baseline_path: Option<PathBuf> = None;
    let mut gate_mode = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--gate" => gate_mode = true,
            _ => return usage(),
        }
    }
    let Some(baseline_path) = baseline_path else { return usage() };
    let baseline_path = if baseline_path.is_absolute() {
        baseline_path
    } else {
        root.join(baseline_path)
    };
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fedlint: cannot read baseline {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let baseline = match Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("fedlint: bad baseline {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze_or_exit(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let result = engine::gate(&analysis, &baseline);
    if gate_mode {
        print_counts(&analysis);
    }
    if result.ok() {
        println!(
            "fedlint: gate OK — {} file(s), {} graph node(s), all rule counts within budget",
            analysis.files_scanned,
            analysis.graph.nodes.len()
        );
        ExitCode::SUCCESS
    } else {
        // Show the offending findings so the breach is actionable.
        for f in analysis.violations() {
            println!("{f}");
        }
        for breach in &result.breaches {
            println!("fedlint: BREACH: {breach}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_baseline(args: &[String]) -> ExitCode {
    let Some((root, rest)) = split_root(args) else { return usage() };
    let mut out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let analysis = match analyze_or_exit(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let baseline = Baseline::from_analysis(&analysis);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, baseline.emit()) {
                eprintln!("fedlint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("fedlint: baseline written to {}", path.display());
        }
        None => print!("{}", baseline.emit()),
    }
    ExitCode::SUCCESS
}

fn cmd_graph(args: &[String]) -> ExitCode {
    let Some((root, rest)) = split_root(args) else { return usage() };
    let dot = rest.iter().any(|a| a == "--dot");
    if rest.iter().any(|a| a != "--dot") {
        return usage();
    }
    let analysis = match analyze_or_exit(&root) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let graph = &analysis.graph;
    if dot {
        println!("digraph fedlint {{");
        println!("  rankdir=LR;");
        for (id, node) in graph.nodes.iter().enumerate() {
            let shape = if analysis.entries.contains(&id) { "box" } else { "ellipse" };
            println!("  n{id} [label=\"{}\", shape={shape}];", node.qualified);
        }
        for (from, tos) in graph.edges.iter().enumerate() {
            for to in tos {
                println!("  n{from} -> n{to};");
            }
        }
        println!("}}");
        return ExitCode::SUCCESS;
    }
    println!(
        "fedlint graph: {} node(s), {} edge(s), {} public entr{} across {} file(s)",
        graph.nodes.len(),
        graph.edge_count(),
        analysis.entries.len(),
        if analysis.entries.len() == 1 { "y" } else { "ies" },
        analysis.files_scanned
    );
    // Per-crate node/edge/reachability breakdown.
    let mut per_crate: std::collections::BTreeMap<&str, (usize, usize, usize)> =
        std::collections::BTreeMap::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        let entry = per_crate.entry(node.crate_name.as_str()).or_default();
        entry.0 += 1;
        entry.1 += graph.edges[id].len();
        if analysis.reach.dist[id].is_some() {
            entry.2 += 1;
        }
    }
    println!("{:<14} {:>6} {:>6} {:>10}", "crate", "fns", "calls", "reachable");
    for (name, (fns, calls, reachable)) in per_crate {
        println!("{name:<14} {fns:>6} {calls:>6} {reachable:>10}");
    }
    ExitCode::SUCCESS
}

fn print_counts(analysis: &Analysis) {
    println!("{:<28} {:>10} {:>8}", "rule", "violations", "allowed");
    for (id, c) in analysis.counts() {
        println!("{id:<28} {:>10} {:>8}", c.violations, c.allowed);
    }
}

/// The pre-subcommand interface: `--workspace` or a list of files,
/// lexer rules only. Kept so existing muscle memory and scripts work.
fn legacy(args: Vec<String>) -> ExitCode {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }
    if !workspace && files.is_empty() {
        return usage();
    }

    let report = if workspace {
        let root = root.unwrap_or_else(find_workspace_root);
        match check_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fedlint: cannot walk workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut merged = Report::default();
        let rules = RuleSet::all().without(Rule::LossyCast);
        for file in &files {
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("fedlint: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            };
            let sub = check_source(&file.to_string_lossy(), &source, rules);
            merged.violations.extend(sub.violations);
            merged.allowed.extend(sub.allowed);
            merged.bad_annotations.extend(sub.bad_annotations);
        }
        merged
    };

    for v in &report.bad_annotations {
        println!("{v}");
    }
    for v in &report.violations {
        println!("{v}");
    }
    if report.is_clean() {
        println!(
            "fedlint: clean ({} annotated allowance{})",
            report.allowed.len(),
            if report.allowed.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "fedlint: {} violation(s), {} malformed annotation(s), {} allowed site(s)",
            report.violations.len(),
            report.bad_annotations.len(),
            report.allowed.len()
        );
        ExitCode::FAILURE
    }
}

/// Default root: walk up from the current directory to the first
/// directory containing a `crates/` subdirectory, else use `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
