//! String/comment-aware scanning of Rust source text.
//!
//! The scanner produces a *masked* view of a file: byte-for-byte the same
//! shape as the input, but with comment bodies and string/char-literal
//! interiors replaced by spaces. Rule matching runs over the masked view,
//! so `"unwrap()"` inside a string literal or a doc comment can never
//! trigger a lint. Comments are collected separately (per line) because
//! two rules read them: `fedlint: allow(...)` annotations and `SAFETY:`
//! justifications for `unsafe` blocks.

/// One comment occurrence, with the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line of the comment's first character.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
}

/// The masked view of one source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Source text with comments and literal interiors blanked to spaces.
    /// Newlines are preserved, so line numbers match the original.
    pub masked: String,
    /// Every comment in the file, in order of appearance.
    pub comments: Vec<Comment>,
}

impl ScannedFile {
    /// Masked lines, 0-indexed (line `n` of the file is `lines()[n-1]`).
    pub fn masked_lines(&self) -> Vec<&str> {
        self.masked.lines().collect()
    }

    /// All comments that start on the given 1-indexed line.
    pub fn comments_on_line(&self, line: usize) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth is tracked.
    BlockComment(u32),
    Str,
    /// Raw string with `n` closing hashes expected (`r##"…"##` → 2).
    RawStr(u32),
    CharLit,
}

/// Scan Rust source into its masked view. The scanner is a hand-rolled
/// state machine and deliberately recognises only the lexical shapes that
/// affect masking: line/block comments (nested), plain and raw string
/// literals (with `b`/`r` prefixes), char literals, and lifetimes (which
/// must *not* be confused with an unterminated char literal).
pub fn scan(source: &str) -> ScannedFile {
    let bytes: Vec<char> = source.chars().collect();
    let mut masked = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut comment_buf = String::new();
    let mut comment_line = 0usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment_line = line;
                    comment_buf.clear();
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    comment_line = line;
                    comment_buf.clear();
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                // Raw / byte-string prefixes. The `r` or `b` must not be
                // part of a longer identifier (e.g. `number` ends in `r`).
                let prev_is_ident = i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_');
                if !prev_is_ident && (c == 'r' || c == 'b') {
                    if let Some((consumed, hashes, is_str)) = raw_prefix(&bytes[i..]) {
                        for _ in 0..consumed {
                            masked.push(' ');
                        }
                        i += consumed;
                        state = if is_str { State::RawStr(hashes) } else { State::Str };
                        continue;
                    }
                }
                if c == '"' {
                    state = State::Str;
                    masked.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Distinguish char literal from lifetime: a char
                    // literal is '\…' or 'X' followed by a closing quote.
                    let is_char_lit = matches!(
                        (next, bytes.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char_lit {
                        state = State::CharLit;
                        masked.push('\'');
                        i += 1;
                        continue;
                    }
                    // Lifetime or loop label: emit as code.
                    masked.push('\'');
                    i += 1;
                    continue;
                }
                if c == '\n' {
                    line += 1;
                }
                masked.push(c);
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    comments.push(Comment {
                        line: comment_line,
                        text: comment_buf.trim().to_string(),
                    });
                    state = State::Code;
                    masked.push('\n');
                    line += 1;
                } else {
                    comment_buf.push(c);
                    masked.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        comments.push(Comment {
                            line: comment_line,
                            text: comment_buf.trim().to_string(),
                        });
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    line += 1;
                    masked.push('\n');
                } else {
                    comment_buf.push(c);
                    masked.push(' ');
                }
                i += 1;
            }
            State::Str => {
                if c == '\\' && next.is_some() {
                    masked.push_str("  ");
                    if next == Some('\n') {
                        // Line continuation inside a string.
                        masked.pop();
                        masked.push('\n');
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Code;
                    masked.push('"');
                } else if c == '\n' {
                    line += 1;
                    masked.push('\n');
                } else {
                    masked.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes[i + 1..], hashes) {
                    masked.push('"');
                    for _ in 0..hashes {
                        masked.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                    continue;
                }
                if c == '\n' {
                    line += 1;
                    masked.push('\n');
                } else {
                    masked.push(' ');
                }
                i += 1;
            }
            State::CharLit => {
                if c == '\\' && next.is_some() {
                    masked.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Code;
                    masked.push('\'');
                } else {
                    masked.push(' ');
                }
                i += 1;
            }
        }
    }
    if state == State::LineComment {
        comments.push(Comment { line: comment_line, text: comment_buf.trim().to_string() });
    }
    ScannedFile { masked, comments }
}

/// If `chars` starts a raw/byte string literal prefix (`r"`, `r#"`,
/// `br##"`, `b"` …), return `(consumed_chars, hash_count, is_raw)`.
/// `is_raw == false` means a plain `b"…"` byte string (escapes apply).
fn raw_prefix(chars: &[char]) -> Option<(usize, u32, bool)> {
    let mut idx = 0;
    if chars[idx] == 'b' {
        idx += 1;
    }
    let raw = chars.get(idx) == Some(&'r');
    if raw {
        idx += 1;
    }
    let mut hashes = 0u32;
    while chars.get(idx) == Some(&'#') {
        hashes += 1;
        idx += 1;
    }
    if chars.get(idx) != Some(&'"') {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    if idx == 0 {
        return None; // plain '"' is handled by the caller
    }
    Some((idx + 1, hashes, raw))
}

/// Whether the chars after a `"` inside a raw string close it
/// (i.e. are followed by `hashes` `#` characters).
fn closes_raw(after_quote: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| after_quote.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_string_interiors_but_keeps_shape() {
        let src = "let x = \"unwrap() inside\"; x.unwrap();\n";
        let s = scan(src);
        assert_eq!(s.masked.len(), src.len());
        assert!(!s.masked.contains("unwrap() inside"));
        assert!(s.masked.contains(".unwrap()"));
    }

    #[test]
    fn collects_line_comments_with_line_numbers() {
        let src = "fn f() {}\n// SAFETY: fine\nunsafe { }\n";
        let s = scan(src);
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 2);
        assert_eq!(s.comments[0].text, "SAFETY: fine");
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let src = "/* a /* b */ c */ let s = r#\"panic!(\"x\")\"#;\n";
        let s = scan(src);
        assert!(!s.masked.contains("panic"));
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // trailing\n";
        let s = scan(src);
        assert!(s.masked.contains("&'a str"));
        assert_eq!(s.comments[0].text, "trailing");
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let src = "let q = '\\''; let p = '\"'; x.unwrap();\n";
        let s = scan(src);
        assert!(s.masked.contains(".unwrap()"));
    }

    #[test]
    fn newlines_inside_strings_keep_line_count() {
        let src = "let s = \"line\nbreak\";\n// after\n";
        let s = scan(src);
        assert_eq!(s.comments[0].line, 3);
    }
}
