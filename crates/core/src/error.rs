//! Typed failures of a federated run.
//!
//! Training dynamics (divergence, loss guards, quorum skips) are *not*
//! errors — they are recorded in [`crate::metrics::History`]. A
//! [`FedError`] means the run itself could not proceed: a public API was
//! driven outside its contract, or the simulated transport failed.

use fedprox_net::NetError;
use std::fmt;

/// Why a federated run (or a single local update) could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedError {
    /// An FSVRG local update was requested without the
    /// server-distributed global gradient `∇F̄(w̄)` it anchors on.
    MissingGlobalGradient {
        /// The global round the update was asked for.
        round: usize,
    },
    /// The networked backend's transport layer failed (see [`NetError`]
    /// — in the in-process simulation these are protocol or
    /// configuration bugs, never training dynamics).
    Net(NetError),
    /// `RunnerKind::EventDriven` was selected on the in-process trainer.
    /// The event-driven engine lives above this crate (it synthesizes
    /// populations lazily); drive the run through
    /// `fedprox_sim::SimEngine` with the same `FedConfig`.
    EventDrivenBackend,
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::MissingGlobalGradient { round } => write!(
                f,
                "fsvrg: round {round} local update requires the server-distributed global gradient"
            ),
            FedError::Net(e) => write!(f, "networked backend: {e}"),
            FedError::EventDrivenBackend => write!(
                f,
                "the event-driven backend is hosted by fedprox-sim's SimEngine, \
                 not FederatedTrainer"
            ),
        }
    }
}

impl std::error::Error for FedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FedError::Net(e) => Some(e),
            FedError::MissingGlobalGradient { .. } | FedError::EventDrivenBackend => None,
        }
    }
}

impl From<NetError> for FedError {
    fn from(e: NetError) -> Self {
        FedError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FedError::MissingGlobalGradient { round: 3 };
        assert!(e.to_string().contains("round 3"));
        let n: FedError = NetError::RetryLimit.into();
        assert!(n.to_string().contains("networked backend"));
        assert!(std::error::Error::source(&n).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }
}
