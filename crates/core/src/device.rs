//! A federated device: its data shard and the local update of
//! Algorithm 1 (lines 3–10).

use crate::algorithm::Algorithm;
use crate::config::FedConfig;
use crate::error::FedError;
use fedprox_data::synthetic::device_rng;
use fedprox_data::Dataset;
use fedprox_models::LossModel;
use fedprox_optim::solver::{IterateChoice, LocalOutcome, LocalSolver, LocalSolverConfig};
use fedprox_optim::{EstimatorKind, QuadraticProx, SparseQuadraticProx, StepSize, ZeroProx};

/// One device of the federation.
#[derive(Debug, Clone)]
pub struct Device {
    /// Stable device index `n`.
    pub id: usize,
    /// The local training shard `𝒟_n`.
    pub data: Dataset,
}

/// Result of one local update.
#[derive(Debug, Clone)]
pub struct LocalUpdate {
    /// The local model `w_n^{(s)}`.
    pub w: Vec<f64>,
    /// Per-sample gradient evaluations spent.
    pub grad_evals: usize,
    /// Estimator direction-norm statistics from the solve's probe
    /// (all-zero unless the telemetry collector was armed).
    pub dir_stats: fedprox_optim::DirectionStats,
}

impl Device {
    /// Create a device.
    pub fn new(id: usize, data: Dataset) -> Self {
        Device { id, data }
    }

    /// Shard size `D_n`.
    pub fn samples(&self) -> usize {
        self.data.len()
    }

    /// Run the local update for global iteration `round` starting from
    /// the received global model `global`.
    ///
    /// Randomness is drawn from a stream derived from
    /// `(cfg.seed, round, device id)`, so the result is identical across
    /// the sequential, parallel, and networked backends.
    ///
    /// Fails with [`FedError::MissingGlobalGradient`] when the configured
    /// algorithm is [`Algorithm::Fsvrg`], which anchors on a gradient only
    /// [`Self::local_update_anchored`] can receive.
    pub fn local_update<M: LossModel>(
        &self,
        model: &M,
        global: &[f64],
        cfg: &FedConfig,
        round: usize,
    ) -> Result<LocalUpdate, FedError> {
        self.local_update_anchored(model, global, cfg, round, None)
    }

    /// [`Self::local_update`] with an optional server-distributed global
    /// gradient (required by [`Algorithm::Fsvrg`], ignored otherwise).
    pub fn local_update_anchored<M: LossModel>(
        &self,
        model: &M,
        global: &[f64],
        cfg: &FedConfig,
        round: usize,
        global_grad: Option<&[f64]>,
    ) -> Result<LocalUpdate, FedError> {
        let mut rng = device_rng(
            cfg.seed ^ (round as u64).wrapping_mul(0x2545F4914F6CDD1D),
            self.id as u64,
        );
        let solver = LocalSolver;
        let step = cfg
            .step_override
            .unwrap_or_else(|| StepSize::paper(cfg.beta, cfg.smoothness));
        let outcome: LocalOutcome = match cfg.algorithm {
            Algorithm::FedAvg => {
                // FedAvg: τ plain SGD steps from the global model, last
                // iterate, no proximal term, no anchor full gradient.
                let scfg = LocalSolverConfig {
                    kind: EstimatorKind::Sgd,
                    step,
                    tau: cfg.tau,
                    batch_size: cfg.batch_size,
                    choice: IterateChoice::Last,
                };
                solver.solve(model, &self.data, &ZeroProx, global, &scfg, &mut rng)
            }
            Algorithm::FedProx => {
                // FedProx: proximal surrogate + plain SGD, last iterate.
                let prox = QuadraticProx::new(cfg.mu, global.to_vec());
                let scfg = LocalSolverConfig {
                    kind: EstimatorKind::Sgd,
                    step,
                    tau: cfg.tau,
                    batch_size: cfg.batch_size,
                    choice: IterateChoice::Last,
                };
                solver.solve(model, &self.data, &prox, global, &scfg, &mut rng)
            }
            Algorithm::Fsvrg => {
                // FSVRG: SVRG anchored at the *global* gradient the server
                // distributed; no proximal term; last iterate. A caller
                // that skipped the distribution step gets a typed error
                // rather than a panic reachable from the public API.
                let ag = global_grad.ok_or(FedError::MissingGlobalGradient { round })?;
                let scfg = LocalSolverConfig {
                    kind: EstimatorKind::Svrg,
                    step,
                    tau: cfg.tau,
                    batch_size: cfg.batch_size,
                    choice: IterateChoice::Last,
                };
                solver.solve_anchored(
                    model,
                    &self.data,
                    &ZeroProx,
                    global,
                    &scfg,
                    &mut rng,
                    Some(ag),
                )
            }
            Algorithm::FedProxVr(kind) => {
                let scfg = LocalSolverConfig {
                    kind,
                    step,
                    tau: cfg.tau,
                    batch_size: cfg.batch_size,
                    choice: cfg.iterate_choice,
                };
                if cfg.l1 > 0.0 {
                    let prox = SparseQuadraticProx::new(cfg.mu, cfg.l1, global.to_vec());
                    solver.solve(model, &self.data, &prox, global, &scfg, &mut rng)
                } else {
                    let prox = QuadraticProx::new(cfg.mu, global.to_vec());
                    solver.solve(model, &self.data, &prox, global, &scfg, &mut rng)
                }
            }
        };
        Ok(LocalUpdate { w: outcome.w, grad_evals: outcome.grad_evals, dir_stats: outcome.dir_stats })
    }

    /// Measure the empirical local accuracy ratio of criterion (11):
    /// `‖∇J_n(w_local)‖ / ‖∇F_n(global)‖` (smaller is better; the paper
    /// requires it ≤ θ in expectation).
    pub fn theta_measured<M: LossModel>(
        &self,
        model: &M,
        global: &[f64],
        local: &[f64],
        mu: f64,
    ) -> f64 {
        let solver = LocalSolver;
        let prox = QuadraticProx::new(mu, global.to_vec());
        let j_norm = solver.surrogate_grad_norm(model, &self.data, &prox, local);
        let mut g = vec![0.0; model.dim()];
        model.full_grad(global, &self.data, &mut g);
        let f_norm = fedprox_tensor::vecops::norm(&g);
        if f_norm < 1e-15 {
            0.0
        } else {
            j_norm / f_norm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_models::LinearRegression;
    use fedprox_optim::estimator::EstimatorKind;
    use fedprox_tensor::Matrix;

    fn toy_device(id: usize) -> Device {
        let n = 40;
        let mut f = Matrix::zeros(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            let x0 = ((i + id * 7) as f64 * 0.37).sin();
            let x1 = ((i + id * 3) as f64 * 0.73).cos();
            f.row_mut(i).copy_from_slice(&[x0, x1]);
            y.push(2.0 * x0 - x1 + id as f64 * 0.1);
        }
        Device::new(id, Dataset::new(f, y, 0))
    }

    #[test]
    fn local_update_is_deterministic_per_round_and_device() {
        let d = toy_device(3);
        let m = LinearRegression::new(2);
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_seed(5);
        let w0 = vec![1.0, -1.0];
        let a = d.local_update(&m, &w0, &cfg, 7).expect("update");
        let b = d.local_update(&m, &w0, &cfg, 7).expect("update");
        assert_eq!(a.w, b.w);
        let c = d.local_update(&m, &w0, &cfg, 8).expect("update");
        assert_ne!(a.w, c.w, "different rounds must draw different batches");
    }

    #[test]
    fn different_devices_use_different_streams() {
        let d0 = toy_device(0);
        let d1 = Device::new(1, d0.data.clone()); // same data, different id
        let m = LinearRegression::new(2);
        let cfg = FedConfig::new(Algorithm::FedAvg).with_seed(5).with_tau(5);
        let w0 = vec![0.5, 0.5];
        let a = d0.local_update(&m, &w0, &cfg, 0).expect("update");
        let b = d1.local_update(&m, &w0, &cfg, 0).expect("update");
        assert_ne!(a.w, b.w);
    }

    #[test]
    fn fedavg_skips_anchor_full_gradient() {
        let d = toy_device(1);
        let m = LinearRegression::new(2);
        let cfg = FedConfig::new(Algorithm::FedAvg).with_tau(3).with_batch_size(4);
        let upd = d.local_update(&m, &[0.0, 0.0], &cfg, 0).expect("update");
        // SGD path: one batch per step incl. the first.
        assert_eq!(upd.grad_evals, 4 * 4);
        let cfg_vr = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_tau(3)
            .with_batch_size(4);
        let upd_vr = d.local_update(&m, &[0.0, 0.0], &cfg_vr, 0).expect("update");
        // VR path: full gradient (40) + 2×4 per inner step × 3.
        assert_eq!(upd_vr.grad_evals, 40 + 3 * 8);
    }

    #[test]
    fn proximal_update_improves_surrogate() {
        let d = toy_device(0);
        let m = LinearRegression::new(2);
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
            .with_tau(30)
            .with_mu(0.1)
            .with_beta(3.0);
        let w0 = vec![2.0, 2.0];
        let upd = d.local_update(&m, &w0, &cfg, 0).expect("update");
        let theta = d.theta_measured(&m, &w0, &upd.w, cfg.mu);
        // Uniform-random iterate selection means we cannot demand a tiny
        // θ, but it must improve on no-progress (θ = 1).
        assert!(theta < 1.0, "theta {theta}");
    }

    #[test]
    fn fsvrg_without_anchor_is_a_typed_error() {
        let d = toy_device(0);
        let m = LinearRegression::new(2);
        let cfg = FedConfig::new(Algorithm::Fsvrg).with_tau(2).with_batch_size(4);
        let err = d.local_update(&m, &[0.0, 0.0], &cfg, 4).expect_err("anchorless FSVRG");
        assert_eq!(err, FedError::MissingGlobalGradient { round: 4 });
        // With the server-distributed anchor the same call succeeds.
        let g = vec![0.1, -0.2];
        let upd = d
            .local_update_anchored(&m, &[0.0, 0.0], &cfg, 4, Some(&g))
            .expect("anchored FSVRG");
        assert!(upd.w.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn theta_measured_zero_cases() {
        let d = toy_device(0);
        let m = LinearRegression::new(2);
        // If local == stationary point of J (here: coincides only when
        // gradient tiny), theta small. Degenerate: zero F-gradient →
        // returns 0 by convention.
        let theta = d.theta_measured(&m, &[1e30, 1e30], &[0.0, 0.0], 0.1);
        assert!(theta.is_finite());
    }
}
