//! Per-round metric records and export.

use crate::config::ConfigSummary;
use fedprox_faults::RoundParticipation;
use serde::{Deserialize, Serialize};

/// Overflow-safe running total for the cumulative [`RoundRecord`] fields
/// (`grad_evals`, `bytes`). Accumulation saturates at `u64::MAX` instead
/// of wrapping, so the per-round totals stay monotone non-decreasing even
/// under degenerate configurations (huge τ × rounds × devices products).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunningTotal(u64);

impl RunningTotal {
    /// A zeroed total.
    pub fn new() -> Self {
        RunningTotal(0)
    }

    /// Add `delta`, saturating at `u64::MAX`.
    pub fn add(&mut self, delta: u64) {
        self.0 = self.0.saturating_add(delta);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Metrics captured at one evaluated global iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Global iteration index `s` (1-based, matching the paper).
    pub round: usize,
    /// Global training loss `F̄(w̄^{(s)})`.
    pub train_loss: f64,
    /// Test accuracy of the global model.
    pub test_accuracy: f64,
    /// Stationarity gap `‖∇F̄(w̄^{(s)})‖²` (eq. (12)).
    pub grad_norm_sq: f64,
    /// Mean measured local accuracy ratio (criterion (11)), if enabled.
    pub theta_measured: Option<f64>,
    /// Simulated time at the end of this round (networked backend only).
    pub sim_time: f64,
    /// Cumulative uplink + downlink bytes (networked backend only).
    pub bytes: u64,
    /// Cumulative per-sample gradient evaluations across all devices.
    pub grad_evals: u64,
}

/// Why (and where) a run was recorded as diverged — the typed
/// replacement for the old bare `diverged: bool` flag. Serialized into
/// results JSON; old files without the field deserialize as
/// [`DivergenceCause::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DivergenceCause {
    /// The run completed without tripping a divergence check.
    #[default]
    None,
    /// Aggregated parameters went non-finite. `device` names the first
    /// participating device whose local update was itself non-finite,
    /// when one could be attributed (the networked backend and
    /// aggregation-only blowups report `None`).
    NonFinite {
        /// Global round the check tripped on.
        round: usize,
        /// First offending device, when attributable.
        device: Option<usize>,
    },
    /// Evaluated training loss crossed the configured loss guard (or
    /// went non-finite while the parameters stayed finite).
    LossGuard {
        /// Global round the check tripped on.
        round: usize,
    },
}

impl DivergenceCause {
    /// True for any cause other than [`DivergenceCause::None`].
    pub fn is_diverged(&self) -> bool {
        !matches!(self, DivergenceCause::None)
    }

    /// The round the divergence was detected on, if any.
    pub fn round(&self) -> Option<usize> {
        match self {
            DivergenceCause::None => None,
            DivergenceCause::NonFinite { round, .. } | DivergenceCause::LossGuard { round } => {
                Some(*round)
            }
        }
    }
}

/// The full trajectory of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct History {
    /// Configuration that produced this history.
    pub config: ConfigSummary,
    /// Evaluated rounds, in order.
    pub records: Vec<RoundRecord>,
    /// Divergence cause (round, device, rule); `None` for a clean run.
    /// Results JSON predating this field deserializes to `None`.
    #[serde(default)]
    pub divergence: DivergenceCause,
    /// Rounds actually executed (≤ configured when diverged).
    pub rounds_run: usize,
    /// Final simulated training time (networked backend only).
    pub total_sim_time: f64,
    /// The trained global model `w̄^{(T)}` (empty when the run produced
    /// no rounds).
    #[serde(default)]
    pub final_model: Vec<f64>,
    /// Per-round device participation, one entry per executed round —
    /// recorded only by resilient runs (a configured
    /// [`fedprox_faults::Resilience`]); empty otherwise, and for results
    /// JSON predating the field.
    #[serde(default)]
    pub participation: Vec<RoundParticipation>,
}

impl History {
    /// Whether the run diverged (compatibility accessor over
    /// [`History::divergence`]).
    pub fn diverged(&self) -> bool {
        self.divergence.is_diverged()
    }

    /// Best test accuracy seen at any evaluated round.
    pub fn best_accuracy(&self) -> f64 {
        self.records.iter().map(|r| r.test_accuracy).fold(0.0, f64::max)
    }

    /// Training loss at the last evaluated round.
    pub fn final_loss(&self) -> Option<f64> {
        self.records.last().map(|r| r.train_loss)
    }

    /// The paper's convergence indicator: the running average of the
    /// stationarity gap, `(1/T) Σ_s ‖∇F̄(w̄^{(s)})‖²` (eq. (12)).
    pub fn avg_stationarity_gap(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        Some(self.records.iter().map(|r| r.grad_norm_sq).sum::<f64>() / self.records.len() as f64)
    }

    /// First evaluated round whose test accuracy reaches `target`
    /// (the paper's "starts to converge earlier" comparisons).
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records.iter().find(|r| r.test_accuracy >= target).map(|r| r.round)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        // History serialization is infallible (plain data, no maps with
        // non-string keys); an empty string would only ever surface from
        // a serde bug.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Render as CSV (`round,train_loss,test_accuracy,grad_norm_sq,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,train_loss,test_accuracy,grad_norm_sq,theta_measured,sim_time,bytes,grad_evals\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.round,
                r.train_loss,
                r.test_accuracy,
                r.grad_norm_sq,
                r.theta_measured.map_or(String::new(), |t| t.to_string()),
                r.sim_time,
                r.bytes,
                r.grad_evals
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, loss: f64, acc: f64) -> RoundRecord {
        RoundRecord {
            round,
            train_loss: loss,
            test_accuracy: acc,
            grad_norm_sq: loss * 2.0,
            theta_measured: None,
            sim_time: 0.0,
            bytes: 0,
            grad_evals: 0,
        }
    }

    fn history() -> History {
        History {
            config: ConfigSummary {
                algorithm: "fedavg".into(),
                beta: 5.0,
                tau: 10,
                mu: 0.0,
                batch_size: 32,
                rounds: 3,
                eta: 0.2,
                seed: 0,
                l1: 0.0,
                participation: 1.0,
                uniform_random_iterate: false,
            },
            records: vec![record(1, 2.0, 0.3), record(2, 1.0, 0.6), record(3, 0.5, 0.55)],
            divergence: DivergenceCause::None,
            rounds_run: 3,
            total_sim_time: 0.0,
            final_model: vec![0.5, -0.5],
            participation: Vec::new(),
        }
    }

    #[test]
    fn summary_statistics() {
        let h = history();
        assert_eq!(h.best_accuracy(), 0.6);
        assert_eq!(h.final_loss(), Some(0.5));
        let avg = h.avg_stationarity_gap().unwrap();
        assert!((avg - (4.0 + 2.0 + 1.0) / 3.0).abs() < 1e-12);
        assert_eq!(h.rounds_to_accuracy(0.5), Some(2));
        assert_eq!(h.rounds_to_accuracy(0.99), None);
    }

    #[test]
    fn json_roundtrip() {
        let h = history();
        let s = h.to_json();
        let back = History::from_json(&s).unwrap();
        assert_eq!(back.records, h.records);
        assert_eq!(back.config, h.config);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = history().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("round,train_loss"));
        assert!(lines[1].starts_with("1,2,0.3"));
    }

    #[test]
    fn running_total_saturates_instead_of_wrapping() {
        let mut t = RunningTotal::new();
        t.add(u64::MAX - 5);
        t.add(3);
        assert_eq!(t.get(), u64::MAX - 2);
        t.add(100); // would wrap; must pin at MAX
        assert_eq!(t.get(), u64::MAX);
        t.add(u64::MAX);
        assert_eq!(t.get(), u64::MAX);
    }

    #[test]
    fn cumulative_record_totals_are_monotone_non_decreasing() {
        // Simulate the trainer's accumulation across rounds, including a
        // delta large enough to overflow a wrapping add, and check the
        // recorded totals never decrease.
        let deltas = [10u64, 1 << 40, u64::MAX / 2, u64::MAX, 7];
        let mut evals = RunningTotal::new();
        let mut bytes = RunningTotal::new();
        let mut records = Vec::new();
        for (i, &d) in deltas.iter().enumerate() {
            evals.add(d);
            bytes.add(d / 2);
            let mut r = record(i + 1, 1.0, 0.5);
            r.grad_evals = evals.get();
            r.bytes = bytes.get();
            records.push(r);
        }
        for pair in records.windows(2) {
            assert!(
                pair[1].grad_evals >= pair[0].grad_evals,
                "grad_evals decreased: {} -> {}",
                pair[0].grad_evals,
                pair[1].grad_evals
            );
            assert!(pair[1].bytes >= pair[0].bytes, "bytes decreased");
        }
        assert_eq!(records.last().unwrap().grad_evals, u64::MAX);
    }

    #[test]
    fn divergence_cause_roundtrips_and_accessors() {
        for cause in [
            DivergenceCause::None,
            DivergenceCause::NonFinite { round: 7, device: Some(2) },
            DivergenceCause::NonFinite { round: 3, device: None },
            DivergenceCause::LossGuard { round: 11 },
        ] {
            let mut h = history();
            h.divergence = cause;
            let back = History::from_json(&h.to_json()).unwrap();
            assert_eq!(back.divergence, cause);
            assert_eq!(back.diverged(), cause.is_diverged());
        }
        assert!(!DivergenceCause::None.is_diverged());
        assert_eq!(DivergenceCause::None.round(), None);
        assert_eq!(DivergenceCause::LossGuard { round: 4 }.round(), Some(4));
        assert_eq!(
            DivergenceCause::NonFinite { round: 9, device: Some(1) }.round(),
            Some(9)
        );
    }

    #[test]
    fn legacy_json_without_divergence_field_parses_clean() {
        // Results files written before the DivergenceCause change carry
        // `"diverged": bool` and no `divergence` key; they must still
        // parse, defaulting to no divergence.
        let mut legacy = history().to_json();
        legacy = legacy.replace("\"divergence\": \"None\"", "\"diverged\": false");
        assert!(legacy.contains("\"diverged\""), "substitution failed: {legacy}");
        let h = History::from_json(&legacy).unwrap();
        assert_eq!(h.divergence, DivergenceCause::None);
        assert!(!h.diverged());
    }

    #[test]
    fn participation_records_roundtrip_and_default_empty() {
        use fedprox_faults::DeviceOutcome;
        let mut h = history();
        h.participation = vec![
            RoundParticipation {
                round: 1,
                outcomes: vec![DeviceOutcome::Responded, DeviceOutcome::Responded],
                responder_weight: 1.0,
                skipped: false,
                sampled: None,
            },
            RoundParticipation {
                round: 2,
                outcomes: vec![DeviceOutcome::Responded, DeviceOutcome::Crashed],
                responder_weight: 0.6,
                skipped: true,
                sampled: None,
            },
        ];
        let back = History::from_json(&h.to_json()).unwrap();
        assert_eq!(back.participation, h.participation);
        // Results JSON predating fedresil carries no participation key;
        // it must parse with the field defaulting to empty.
        let compact = serde_json::to_string(&history()).unwrap();
        let legacy = compact.replace("\"participation\":[]", "\"pre_fedresil_probe\":[]");
        assert_ne!(legacy, compact, "substitution failed: {compact}");
        let h = History::from_json(&legacy).unwrap();
        assert!(h.participation.is_empty());
    }

    #[test]
    fn empty_history_edge_cases() {
        let mut h = history();
        h.records.clear();
        assert_eq!(h.best_accuracy(), 0.0);
        assert_eq!(h.final_loss(), None);
        assert_eq!(h.avg_stationarity_gap(), None);
    }
}
