//! Execution backends for one round of local updates.
//!
//! Devices within a round are independent (Algorithm 1 runs them "in
//! parallel"), so the parallel backend is a straight `par_iter` over
//! devices — the rayon pattern the session guides recommend. Because each
//! device draws from its own `(seed, round, id)` RNG stream, the parallel
//! backend produces *bit-identical* results to the sequential one.
//!
//! Every backend returns `Result`: the only failure today is driving
//! FSVRG without its server-distributed anchor gradient
//! ([`FedError::MissingGlobalGradient`]), surfaced as a value instead of
//! a panic so the trainer's public API stays panic-free.

use crate::config::FedConfig;
use crate::device::{Device, LocalUpdate};
use crate::error::FedError;
use fedprox_models::LossModel;
use rayon::prelude::*;

/// Run the local updates of one global iteration sequentially.
pub fn run_round_sequential<M: LossModel>(
    model: &M,
    devices: &[Device],
    global: &[f64],
    cfg: &FedConfig,
    round: usize,
) -> Result<Vec<LocalUpdate>, FedError> {
    devices.iter().map(|d| d.local_update(model, global, cfg, round)).collect()
}

/// Run the local updates of one global iteration across rayon.
pub fn run_round_parallel<M: LossModel>(
    model: &M,
    devices: &[Device],
    global: &[f64],
    cfg: &FedConfig,
    round: usize,
) -> Result<Vec<LocalUpdate>, FedError> {
    devices.par_iter().map(|d| d.local_update(model, global, cfg, round)).collect()
}

/// Run the local updates for a *subset* of devices (partial
/// participation). Results are in `indices` order. `global_grad` is the
/// server-distributed global gradient FSVRG anchors at (None otherwise).
#[allow(clippy::too_many_arguments)]
pub fn run_round_subset<M: LossModel>(
    model: &M,
    devices: &[Device],
    indices: &[usize],
    global: &[f64],
    cfg: &FedConfig,
    round: usize,
    parallel: bool,
    global_grad: Option<&[f64]>,
) -> Result<Vec<LocalUpdate>, FedError> {
    let update_one = |i: usize| {
        fedprox_telemetry::span!("core", "device_update", "device" => i, "round" => round);
        devices[i].local_update_anchored(model, global, cfg, round, global_grad)
    };
    if parallel {
        indices.par_iter().map(|&i| update_one(i)).collect()
    } else {
        indices.iter().map(|&i| update_one(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use fedprox_data::synthetic::{generate, SyntheticConfig};
    use fedprox_models::MultinomialLogistic;
    use fedprox_optim::estimator::EstimatorKind;

    fn small_federation() -> (Vec<Device>, MultinomialLogistic) {
        let shards = generate(&SyntheticConfig { seed: 3, ..Default::default() }, &[25, 40, 15]);
        let devices: Vec<Device> =
            shards.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        (devices, MultinomialLogistic::new(60, 10))
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (devices, model) = small_federation();
        let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
            .with_tau(8)
            .with_batch_size(8)
            .with_seed(11);
        let w0 = model.init_params(1);
        for round in 0..3 {
            let seq = run_round_sequential(&model, &devices, &w0, &cfg, round).expect("seq");
            let par = run_round_parallel(&model, &devices, &w0, &cfg, round).expect("par");
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.w, b.w, "round {round}: parallel diverged from sequential");
                assert_eq!(a.grad_evals, b.grad_evals);
            }
        }
    }

    #[test]
    fn anchorless_fsvrg_round_fails_typed_on_both_backends() {
        let (devices, model) = small_federation();
        let cfg = FedConfig::new(Algorithm::Fsvrg).with_tau(2).with_batch_size(8);
        let w0 = model.init_params(1);
        for parallel in [false, true] {
            let err =
                run_round_subset(&model, &devices, &[0, 1, 2], &w0, &cfg, 0, parallel, None)
                    .expect_err("FSVRG without anchor must fail");
            assert!(matches!(err, FedError::MissingGlobalGradient { round: 0 }));
        }
    }
}
