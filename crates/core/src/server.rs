//! The aggregation server: Algorithm 1, line 12.

use fedprox_tensor::vecops;

/// Weighted aggregation `w̄^{(s)} = Σ_n (D_n/D) w_n^{(s)}`.
///
/// Sums strictly in device order so every backend produces bit-identical
/// global models. Weights are normalised defensively (they should already
/// sum to 1).
pub fn aggregate(locals: &[(&[f64], f64)], out: &mut [f64]) {
    assert!(!locals.is_empty(), "aggregate: no local models");
    out.fill(0.0);
    let mut weight_sum = 0.0;
    for (w, p) in locals {
        assert_eq!(w.len(), out.len(), "aggregate: dim mismatch");
        assert!(*p >= 0.0, "aggregate: negative weight");
        vecops::axpy(*p, w, out);
        weight_sum += p;
    }
    assert!(weight_sum > 0.0, "aggregate: weights sum to zero");
    if (weight_sum - 1.0).abs() > 1e-12 {
        vecops::scale(1.0 / weight_sum, out);
    }
}

/// Aggregation weights `D_n / D` from shard sizes.
pub fn weights_from_sizes(sizes: &[usize]) -> Vec<f64> {
    let total: usize = sizes.iter().sum();
    assert!(total > 0, "weights_from_sizes: empty federation");
    sizes.iter().map(|&s| s as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = [0.0; 2];
        aggregate(&[(&a, 0.25), (&b, 0.75)], &mut out);
        assert_eq!(out, [2.5, 5.0]);
    }

    #[test]
    fn unnormalised_weights_are_normalised() {
        let a = [2.0];
        let b = [4.0];
        let mut out = [0.0; 1];
        aggregate(&[(&a, 1.0), (&b, 1.0)], &mut out);
        assert_eq!(out, [3.0]);
    }

    #[test]
    fn aggregation_inside_convex_hull_per_coordinate() {
        let a = [0.0, 10.0, -5.0];
        let b = [1.0, 0.0, 5.0];
        let c = [0.5, 5.0, 0.0];
        let mut out = [0.0; 3];
        aggregate(&[(&a, 0.2), (&b, 0.5), (&c, 0.3)], &mut out);
        for i in 0..3 {
            let lo = a[i].min(b[i]).min(c[i]);
            let hi = a[i].max(b[i]).max(c[i]);
            assert!(out[i] >= lo - 1e-12 && out[i] <= hi + 1e-12);
        }
    }

    #[test]
    fn weights_from_sizes_sum_to_one() {
        let w = weights_from_sizes(&[10, 30, 60]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        assert_eq!(w, vec![0.1, 0.3, 0.6]);
    }

    #[test]
    #[should_panic(expected = "no local models")]
    fn empty_aggregate_panics() {
        let mut out = [0.0; 1];
        aggregate(&[], &mut out);
    }
}
