//! Experiment configuration.

use crate::algorithm::Algorithm;
use fedprox_net::NetOptions;
use serde::{Deserialize, Serialize};

/// Which execution backend runs the devices.
// `Network` carries the full `NetOptions` (links, retry policy, optional
// resilience plan) and dwarfs the unit variants; a run holds exactly one
// `RunnerKind` inside its `FedConfig`, so the size gap never multiplies
// and boxing would only add churn at every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RunnerKind {
    /// One device after another on the calling thread — fully
    /// deterministic, used by tests and as the reference trajectory.
    Sequential,
    /// Devices fan out across rayon — same trajectory as `Sequential`
    /// for a fixed seed (per-device RNG streams), just faster.
    Parallel,
    /// The `fedprox-net` actor runtime with simulated delays.
    Network(NetRunnerOptions),
    /// The `fedprox-sim` event-driven backend: compact passive device
    /// state machines on a sharded virtual-time event loop, with
    /// per-round client sampling. Scales to million-device populations
    /// with memory bounded by the active set. [`FederatedTrainer`]
    /// cannot host it (the engine lives above this crate); drive the
    /// run through `fedprox_sim::SimEngine`, which consumes the same
    /// `FedConfig`.
    ///
    /// [`FederatedTrainer`]: crate::algorithm::FederatedTrainer
    EventDriven(SimRunnerOptions),
}

/// Options for the networked backend.
#[derive(Debug, Clone)]
pub struct NetRunnerOptions {
    /// Link/drop/straggler configuration.
    pub net: NetOptions,
    /// Compute-cost model: seconds per per-sample gradient evaluation
    /// (turns a device's `grad_evals` into its simulated `d_cmp`).
    pub sec_per_grad_eval: f64,
}

impl Default for NetRunnerOptions {
    fn default() -> Self {
        NetRunnerOptions { net: NetOptions::default(), sec_per_grad_eval: 1e-6 }
    }
}

/// How the event-driven backend picks each round's active client set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerSpec {
    /// Every device, every round (p = 1). On a materialized population
    /// this reproduces the sequential backend's trajectory bitwise.
    Full,
    /// K devices uniformly without replacement, drawn from the same
    /// `(seed, round)` stream the sequential backend's partial
    /// participation uses — so `K = ⌈pN⌉` matches `participation = p`
    /// bitwise.
    UniformK(usize),
    /// K devices without replacement with inclusion probability ∝ their
    /// sample count `n_k` (FedProx's sampling scheme, arXiv 1812.06127);
    /// aggregation then averages the K updates uniformly.
    WeightedK(usize),
    /// Each device independently active with probability p ∈ (0, 1];
    /// aggregation reweights contributions by 1/p with the residual
    /// weight left on the previous global model, so weights still sum
    /// to the full-participation total (unbiased — arXiv 2210.14362).
    Bernoulli(f64),
}

/// Options for the event-driven (`fedprox-sim`) backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimRunnerOptions {
    /// Per-round client sampling strategy.
    pub sampler: SamplerSpec,
    /// Event-loop shard count (≥ 1). Sharding is a memory/locality knob
    /// only: events are ordered by (virtual time, stable device id)
    /// across shards, so the trajectory is shard-count invariant.
    pub shards: usize,
    /// Compute-cost model: seconds per per-sample gradient evaluation.
    pub sec_per_grad_eval: f64,
    /// Server → device transfer time per round, seconds.
    pub downlink_s: f64,
    /// Device → server transfer time per round, seconds.
    pub uplink_s: f64,
    /// Multiplicative per-(round, device) compute jitter half-width
    /// (0 = deterministic timing; timing never feeds back into the
    /// trajectory either way).
    pub jitter: f64,
}

impl Default for SimRunnerOptions {
    fn default() -> Self {
        SimRunnerOptions {
            sampler: SamplerSpec::Full,
            shards: 8,
            sec_per_grad_eval: 1e-6,
            downlink_s: 0.05,
            uplink_s: 0.05,
            jitter: 0.0,
        }
    }
}

impl SimRunnerOptions {
    /// Set the sampler.
    pub fn with_sampler(mut self, sampler: SamplerSpec) -> Self {
        self.sampler = sampler;
        self
    }
    /// Set the event-loop shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "event loop needs at least one shard");
        self.shards = shards;
        self
    }
    /// Set the compute-cost model (seconds per gradient evaluation).
    pub fn with_sec_per_grad_eval(mut self, s: f64) -> Self {
        self.sec_per_grad_eval = s;
        self
    }
    /// Set the per-(round, device) compute jitter half-width.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }
}

/// Full configuration of a federated training run (one curve of
/// Figs. 2–4, or one trial of Tables 1–2).
#[derive(Debug, Clone)]
pub struct FedConfig {
    /// FedAvg or FedProxVR(SVRG | SARAH).
    pub algorithm: Algorithm,
    /// Step-size parameter β (η = 1/(βL)).
    pub beta: f64,
    /// Smoothness estimate L of the per-sample losses.
    pub smoothness: f64,
    /// Local iterations τ per round.
    pub tau: usize,
    /// Proximal penalty μ (ignored by FedAvg).
    pub mu: f64,
    /// Mini-batch size B.
    pub batch_size: usize,
    /// Global iterations T.
    pub rounds: usize,
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Evaluate metrics every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Execution backend.
    pub runner: RunnerKind,
    /// Which local iterate FedProxVR devices return (Algorithm 1 line 10
    /// specifies the uniformly-random iterate, which the convergence proof
    /// needs; the paper's released experiment code returns the last
    /// iterate, which converges faster in practice — the default here).
    pub iterate_choice: fedprox_optim::solver::IterateChoice,
    /// Also measure the empirical local accuracy θ (eq. (11)) each
    /// evaluated round — costs one extra full gradient per device.
    pub measure_theta: bool,
    /// Training-loss ceiling: past it the run is recorded as diverged
    /// (used by the Fig. 4 μ = 0 experiment) and stops.
    pub loss_guard: f64,
    /// Fraction of devices sampled per round, in `(0, 1]`. The paper runs
    /// full participation (1.0, the default); this is the standard FedAvg
    /// `C` knob for the massive-fleet setting the paper's introduction
    /// motivates. Only the sequential/parallel backends support < 1.0.
    pub participation: f64,
    /// Override the local step-size schedule. `None` (default) uses the
    /// paper's fixed `η = 1/(βL)`; setting e.g.
    /// [`fedprox_optim::StepSize::Diminishing`] enables the ablation the
    /// paper's footnote 1 argues against.
    pub step_override: Option<fedprox_optim::StepSize>,
    /// L1 sparsity strength added to FedProxVR's surrogate:
    /// `h_s(w) = μ/2 ‖w − w̄‖² + l1 ‖w‖₁` (still closed-form proximable —
    /// the non-smooth composite setting ProxSVRG/ProxSARAH were built
    /// for). 0 (default) recovers the paper's surrogate exactly.
    pub l1: f64,
    /// Fault-injection plan and graceful-degradation policy (fedresil).
    /// `None` (the default) keeps strict semantics: every sampled device
    /// must respond and any worker failure aborts the run. `Some` runs
    /// the round under the plan's device faults, excludes non-responders
    /// with aggregation weights renormalized over the rest, and records
    /// per-round participation in the [`crate::metrics::History`].
    pub resilience: Option<fedprox_faults::Resilience>,
}

impl FedConfig {
    /// Reasonable defaults around the paper's mid-range settings.
    pub fn new(algorithm: Algorithm) -> Self {
        FedConfig {
            algorithm,
            beta: 5.0,
            smoothness: 1.0,
            tau: 10,
            mu: 0.1,
            batch_size: 32,
            rounds: 100,
            seed: 0,
            eval_every: 1,
            runner: RunnerKind::Sequential,
            iterate_choice: fedprox_optim::solver::IterateChoice::Last,
            measure_theta: false,
            loss_guard: 1e9,
            participation: 1.0,
            step_override: None,
            l1: 0.0,
            resilience: None,
        }
    }

    /// The paper's step size η = 1/(βL).
    pub fn eta(&self) -> f64 {
        1.0 / (self.beta * self.smoothness)
    }

    /// Builder-style setters.
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta > 0.0);
        self.beta = beta;
        self
    }
    /// Set L.
    pub fn with_smoothness(mut self, l: f64) -> Self {
        assert!(l > 0.0);
        self.smoothness = l;
        self
    }
    /// Set τ.
    pub fn with_tau(mut self, tau: usize) -> Self {
        self.tau = tau;
        self
    }
    /// Set μ.
    pub fn with_mu(mut self, mu: f64) -> Self {
        assert!(mu >= 0.0);
        self.mu = mu;
        self
    }
    /// Set B.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        assert!(b >= 1);
        self.batch_size = b;
        self
    }
    /// Set T.
    pub fn with_rounds(mut self, t: usize) -> Self {
        self.rounds = t;
        self
    }
    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    /// Set evaluation cadence.
    pub fn with_eval_every(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.eval_every = k;
        self
    }
    /// Set the backend.
    pub fn with_runner(mut self, r: RunnerKind) -> Self {
        self.runner = r;
        self
    }
    /// Enable θ measurement.
    pub fn with_measure_theta(mut self, on: bool) -> Self {
        self.measure_theta = on;
        self
    }
    /// Choose the local iterate rule (see the field docs).
    pub fn with_iterate_choice(mut self, c: fedprox_optim::solver::IterateChoice) -> Self {
        self.iterate_choice = c;
        self
    }
    /// Sample only a fraction of devices each round (see the field docs).
    pub fn with_participation(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "participation must be in (0, 1]");
        self.participation = p;
        self
    }
    /// Override the local step-size schedule (see the field docs).
    pub fn with_step_override(mut self, step: fedprox_optim::StepSize) -> Self {
        self.step_override = Some(step);
        self
    }
    /// Add L1 sparsity to the FedProxVR surrogate (see the field docs).
    pub fn with_l1(mut self, l1: f64) -> Self {
        assert!(l1 >= 0.0, "l1 must be non-negative");
        self.l1 = l1;
        self
    }
    /// Run under a fault plan with graceful degradation (see the field
    /// docs).
    pub fn with_resilience(mut self, resilience: fedprox_faults::Resilience) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Summary for experiment output.
    pub fn summary(&self) -> ConfigSummary {
        ConfigSummary {
            algorithm: self.algorithm.name().to_string(),
            beta: self.beta,
            tau: self.tau,
            mu: self.mu,
            batch_size: self.batch_size,
            rounds: self.rounds,
            eta: self.eta(),
            seed: self.seed,
            l1: self.l1,
            participation: self.participation,
            uniform_random_iterate: matches!(
                self.iterate_choice,
                fedprox_optim::solver::IterateChoice::UniformRandom
            ),
        }
    }
}

/// Serializable configuration summary embedded in experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSummary {
    /// Algorithm name.
    pub algorithm: String,
    /// β.
    pub beta: f64,
    /// τ.
    pub tau: usize,
    /// μ.
    pub mu: f64,
    /// B.
    pub batch_size: usize,
    /// T.
    pub rounds: usize,
    /// η = 1/(βL).
    pub eta: f64,
    /// Master seed.
    pub seed: u64,
    /// L1 sparsity strength (0 = the paper's surrogate).
    #[serde(default)]
    pub l1: f64,
    /// Device participation fraction.
    #[serde(default = "one")]
    pub participation: f64,
    /// Whether Algorithm 1 line 10's uniform-random iterate was used.
    #[serde(default)]
    pub uniform_random_iterate: bool,
}

fn one() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_optim::estimator::EstimatorKind;

    #[test]
    fn eta_is_inverse_beta_l() {
        let c = FedConfig::new(Algorithm::FedAvg).with_beta(4.0).with_smoothness(0.5);
        assert!((c.eta() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn builder_chains() {
        let c = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
            .with_beta(7.0)
            .with_tau(20)
            .with_mu(0.5)
            .with_batch_size(64)
            .with_rounds(250)
            .with_seed(9)
            .with_eval_every(5)
            .with_measure_theta(true);
        assert_eq!(c.tau, 20);
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.rounds, 250);
        assert_eq!(c.seed, 9);
        assert_eq!(c.eval_every, 5);
        assert!(c.measure_theta);
        let s = c.summary();
        assert_eq!(s.algorithm, "fedproxvr-sarah");
        assert_eq!(s.mu, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_batch() {
        let _ = FedConfig::new(Algorithm::FedAvg).with_batch_size(0);
    }
}
