//! Random hyper-parameter search — the procedure behind Tables 1 and 2:
//! "we conduct a random search on carefully chosen ranges of
//! hyperparameters to determine which combination of them would yield the
//! highest test accuracy with respect to each algorithm."

use crate::algorithm::{Algorithm, FederatedTrainer};
use crate::config::{FedConfig, RunnerKind};
use crate::device::Device;
use crate::error::FedError;
use fedprox_data::synthetic::device_rng;
use fedprox_data::Dataset;
use fedprox_models::LossModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Candidate values for each searched hyper-parameter.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Local iteration counts τ.
    pub taus: Vec<usize>,
    /// Step-size parameters β.
    pub betas: Vec<f64>,
    /// Proximal penalties μ (ignored for FedAvg, which fixes μ = 0).
    pub mus: Vec<f64>,
    /// Mini-batch sizes B.
    pub batches: Vec<usize>,
    /// Global iteration budget range `[lo, hi]` (the paper's Tables 1–2
    /// report T between ~895 and ~995).
    pub rounds: (usize, usize),
}

impl SearchSpace {
    /// Ranges mirroring the paper's Tables 1–2 entries.
    pub fn paper_like() -> Self {
        SearchSpace {
            taus: vec![10, 20],
            betas: vec![5.0, 7.0, 9.0, 10.0],
            mus: vec![0.01, 0.1, 0.5],
            batches: vec![16, 32, 64],
            rounds: (100, 200),
        }
    }
}

/// One sampled trial and its outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// τ sampled.
    pub tau: usize,
    /// β sampled.
    pub beta: f64,
    /// μ sampled (0 for FedAvg).
    pub mu: f64,
    /// B sampled.
    pub batch: usize,
    /// T sampled.
    pub rounds: usize,
    /// Best test accuracy over the run.
    pub accuracy: f64,
    /// Whether the run diverged.
    pub diverged: bool,
}

/// Search outcome: the best trial plus the full log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Algorithm searched.
    pub algorithm: String,
    /// The winning trial.
    pub best: Trial,
    /// Every trial, in execution order.
    pub trials: Vec<Trial>,
}

/// Run `n_trials` random configurations of `algorithm` and return the one
/// with the highest test accuracy. Divergence is a recorded trial
/// outcome, not an error; `Err` means a run could not proceed at all
/// (see [`FedError`]).
#[allow(clippy::too_many_arguments)]
pub fn random_search<M: LossModel>(
    model: &M,
    devices: &[Device],
    test: &Dataset,
    algorithm: Algorithm,
    space: &SearchSpace,
    n_trials: usize,
    seed: u64,
    base: &FedConfig,
) -> Result<SearchResult, FedError> {
    assert!(n_trials >= 1, "need at least one trial");
    assert!(
        !space.taus.is_empty()
            && !space.betas.is_empty()
            && !space.mus.is_empty()
            && !space.batches.is_empty(),
        "search space must be non-empty"
    );
    let mut rng = device_rng(seed, 0x5EA6C);
    let mut trials = Vec::with_capacity(n_trials);
    for t in 0..n_trials {
        let tau = pick(&space.taus, &mut rng);
        let beta = pick(&space.betas, &mut rng);
        let mu = if matches!(algorithm, Algorithm::FedAvg) {
            0.0
        } else {
            pick(&space.mus, &mut rng)
        };
        let batch = pick(&space.batches, &mut rng);
        let rounds = rng.gen_range(space.rounds.0..=space.rounds.1);

        let cfg = FedConfig {
            algorithm,
            beta,
            tau,
            mu,
            batch_size: batch,
            rounds,
            seed: seed.wrapping_add(t as u64),
            runner: RunnerKind::Parallel,
            ..base.clone()
        };
        let history = FederatedTrainer::new(model, devices, test, cfg).run()?;
        trials.push(Trial {
            tau,
            beta,
            mu,
            batch,
            rounds,
            accuracy: history.best_accuracy(),
            diverged: history.diverged(),
        });
    }
    let best = match trials
        .iter()
        .filter(|t| !t.diverged)
        .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
        // All trials diverged: report the first so the table row exists.
        .or_else(|| trials.first())
    {
        Some(t) => t.clone(),
        None => unreachable!("n_trials >= 1 is asserted, so at least one trial ran"),
    };
    Ok(SearchResult { algorithm: algorithm.name().to_string(), best, trials })
}


/// Uniform pick from a non-empty slice. Consumes exactly one
/// `gen_range(0..len)` draw — the same stream consumption as
/// `SliceRandom::choose`, so search results stay seed-stable.
fn pick<T: Copy, R: Rng>(xs: &[T], rng: &mut R) -> T {
    let i = rng.gen_range(0..xs.len()); // panics on an empty slice, like indexing would
    match xs.get(i) {
        Some(&x) => x,
        None => unreachable!("gen_range(0..len) keeps i in bounds"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_data::split::split_federation;
    use fedprox_data::synthetic::{generate, SyntheticConfig};
    use fedprox_models::MultinomialLogistic;
    use fedprox_optim::estimator::EstimatorKind;

    fn federation() -> (Vec<Device>, Dataset, MultinomialLogistic) {
        let shards = generate(&SyntheticConfig { seed: 9, ..Default::default() }, &[50, 70]);
        let (train, test) = split_federation(&shards, 9);
        let devices: Vec<Device> =
            train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        (devices, test, MultinomialLogistic::new(60, 10))
    }

    fn tiny_space() -> SearchSpace {
        SearchSpace {
            taus: vec![3, 5],
            betas: vec![5.0, 8.0],
            mus: vec![0.1, 0.5],
            batches: vec![8],
            rounds: (3, 5),
        }
    }

    #[test]
    fn search_returns_best_non_diverged_trial() {
        let (devices, test, model) = federation();
        let base = FedConfig::new(Algorithm::FedAvg);
        let r = random_search(
            &model,
            &devices,
            &test,
            Algorithm::FedProxVr(EstimatorKind::Svrg),
            &tiny_space(),
            4,
            1,
            &base,
        )
        .expect("search");
        assert_eq!(r.trials.len(), 4);
        assert_eq!(r.algorithm, "fedproxvr-svrg");
        let max_acc =
            r.trials.iter().filter(|t| !t.diverged).map(|t| t.accuracy).fold(0.0, f64::max);
        assert_eq!(r.best.accuracy, max_acc);
    }

    #[test]
    fn fedavg_trials_force_mu_zero() {
        let (devices, test, model) = federation();
        let base = FedConfig::new(Algorithm::FedAvg);
        let r = random_search(
            &model,
            &devices,
            &test,
            Algorithm::FedAvg,
            &tiny_space(),
            3,
            2,
            &base,
        )
        .expect("search");
        assert!(r.trials.iter().all(|t| t.mu == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (devices, test, model) = federation();
        let base = FedConfig::new(Algorithm::FedAvg);
        let a = random_search(
            &model, &devices, &test, Algorithm::FedAvg, &tiny_space(), 3, 5, &base,
        )
        .expect("search");
        let b = random_search(
            &model, &devices, &test, Algorithm::FedAvg, &tiny_space(), 3, 5, &base,
        )
        .expect("search");
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert_eq!(x.accuracy, y.accuracy);
            assert_eq!(x.tau, y.tau);
        }
    }
}
