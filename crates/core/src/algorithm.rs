//! The top-level training loop: FedProxVR (Algorithm 1) and the FedAvg
//! baseline, over any execution backend.

use crate::config::{FedConfig, NetRunnerOptions, RunnerKind};
use crate::device::Device;
use crate::error::FedError;
use crate::metrics::{DivergenceCause, History, RoundRecord, RunningTotal};
use crate::{eval, runner, server};
use fedprox_data::Dataset;
use fedprox_faults::{DeviceOutcome, RoundParticipation};
use fedprox_models::LossModel;
use fedprox_net::runtime::TryFnWorker;
use fedprox_net::{DeviceReply, NetworkRuntime, WorkerError};
use fedprox_tensor::vecops;

/// Which federated algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// McMahan et al.'s FedAvg: τ plain SGD steps per device, last
    /// iterate, plain averaging.
    FedAvg,
    /// Li et al.'s FedProx: the proximal surrogate of eq. (6) solved with
    /// plain SGD (no variance reduction) — the paper's closest prior.
    FedProx,
    /// Konečný et al.'s FSVRG: SVRG anchored at the **global** gradient
    /// `∇F̄(w̄)` distributed by the server (one extra aggregation per
    /// round), no proximal term.
    Fsvrg,
    /// The paper's FedProxVR with the given variance-reduced estimator.
    FedProxVr(fedprox_optim::EstimatorKind),
}

impl Algorithm {
    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::FedAvg => "fedavg",
            Algorithm::FedProx => "fedprox",
            Algorithm::Fsvrg => "fsvrg",
            Algorithm::FedProxVr(k) => match k {
                fedprox_optim::EstimatorKind::Svrg => "fedproxvr-svrg",
                fedprox_optim::EstimatorKind::Sarah => "fedproxvr-sarah",
                fedprox_optim::EstimatorKind::Sgd => "fedproxvr-sgd",
                fedprox_optim::EstimatorKind::FullGd => "fedproxvr-gd",
            },
        }
    }

    /// Whether the server must distribute the global gradient `∇F̄(w̄)`
    /// alongside the model each round (FSVRG only).
    pub fn needs_global_gradient(&self) -> bool {
        matches!(self, Algorithm::Fsvrg)
    }
}

/// Drives global iterations of the configured algorithm over a federation.
pub struct FederatedTrainer<'a, M: LossModel> {
    model: &'a M,
    devices: &'a [Device],
    test: &'a Dataset,
    cfg: FedConfig,
}

impl<'a, M: LossModel> FederatedTrainer<'a, M> {
    /// Build a trainer. `devices` must be non-empty and indexed to match
    /// their `id` fields (aggregation weights come from shard sizes).
    pub fn new(model: &'a M, devices: &'a [Device], test: &'a Dataset, cfg: FedConfig) -> Self {
        assert!(!devices.is_empty(), "trainer needs at least one device");
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.id, i, "device ids must match their position");
            assert!(!d.data.is_empty(), "device {i} has no data");
        }
        FederatedTrainer { model, devices, test, cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &FedConfig {
        &self.cfg
    }

    /// Run from the model's seeded initialisation.
    ///
    /// Training dynamics (divergence, loss guards) are recorded in the
    /// returned [`History`], never surfaced as errors; `Err` means the
    /// run itself could not proceed (see [`FedError`]).
    pub fn run(&self) -> Result<History, FedError> {
        let w0 = self.model.init_params(self.cfg.seed);
        self.run_from(w0)
    }

    /// Run from an explicit initial global model.
    pub fn run_from(&self, w0: Vec<f64>) -> Result<History, FedError> {
        match self.cfg.runner.clone() {
            RunnerKind::Sequential => self.run_local_loop(w0, false),
            RunnerKind::Parallel => self.run_local_loop(w0, true),
            RunnerKind::Network(opts) => self.run_networked(w0, &opts),
            // The event-driven engine lives above this crate (it can
            // synthesize its population lazily); `fedprox_sim::SimEngine`
            // consumes the same config, including these options.
            RunnerKind::EventDriven(_) => Err(FedError::EventDrivenBackend),
        }
    }

    /// Sequential / rayon-parallel backends share this loop.
    fn run_local_loop(&self, w0: Vec<f64>, parallel: bool) -> Result<History, FedError> {
        let weights = server::weights_from_sizes(
            &self.devices.iter().map(Device::samples).collect::<Vec<_>>(),
        );
        let mut global = w0;
        let mut agg = vec![0.0; global.len()];
        let mut records = Vec::new();
        let mut divergence = DivergenceCause::None;
        let mut total_grad_evals = RunningTotal::new();
        let mut rounds_run = 0;

        // Round 0: the initial global model, so every curve starts from
        // the same baseline (and divergence is visible as an *increase*).
        records.push(self.evaluate(0, &global, None, 0, 0.0, 0));

        #[cfg(feature = "telemetry")]
        let mut monitor = self.health_monitor(&global);
        #[cfg(feature = "telemetry")]
        if let Some(m) = monitor.as_mut() {
            let r = &records[0];
            m.observe_eval(0, r.train_loss, r.grad_norm_sq, None);
        }

        let n = self.devices.len();
        let resil = self.cfg.resilience.as_ref();
        let mut participation: Vec<RoundParticipation> = Vec::new();
        let mut dead = vec![false; n];
        for s in 1..=self.cfg.rounds {
            fedprox_telemetry::span!("core", "round", "s" => s);
            // Partial participation: sample ⌈pN⌉ devices for this round
            // from a stream derived from (seed, round) only, so the
            // selection is identical across backends.
            let participants: Vec<usize> = if self.cfg.participation >= 1.0 {
                (0..n).collect()
            } else {
                let k = ((self.cfg.participation * n as f64).ceil() as usize).clamp(1, n);
                let mut rng = fedprox_data::synthetic::device_rng(
                    self.cfg.seed ^ 0x9A87,
                    s as u64,
                );
                rand::seq::index::sample(&mut rng, n, k).into_vec()
            };
            // Resilience: apply the fault plan to the round's sample —
            // crashed devices drop out for good, offline windows sit the
            // round out — then gate on quorum before any local work. A
            // round without enough responding weight is skipped (global
            // model unchanged) and counted, never fatal.
            let participants = if let Some(r) = resil {
                let mut outcomes = vec![DeviceOutcome::NotSelected; n];
                let mut active = Vec::with_capacity(participants.len());
                for &i in &participants {
                    if dead[i] || r.plan.is_crashed(i, s) {
                        dead[i] = true;
                        outcomes[i] = DeviceOutcome::Crashed;
                    } else if r.plan.is_offline(i, s) {
                        outcomes[i] = DeviceOutcome::Offline;
                    } else {
                        outcomes[i] = DeviceOutcome::Responded;
                        active.push(i);
                    }
                }
                let weight_sum: f64 = active.iter().map(|&i| weights[i]).sum();
                let quorum_ok = r.quorum.met(weight_sum, active.len());
                participation.push(RoundParticipation {
                    round: s,
                    outcomes,
                    responder_weight: weight_sum,
                    skipped: !quorum_ok,
                    sampled: None,
                });
                #[cfg(feature = "telemetry")]
                if let Some(m) = monitor.as_mut() {
                    // `participation` is non-empty: pushed just above.
                    if let Some(p) = participation.last() {
                        m.note_participation(s, p.responder_fraction());
                    }
                }
                if !quorum_ok {
                    // Quorum skip fires the flight recorder, blamed on
                    // the first crashed device when any crashed this
                    // round, else the first non-responder.
                    #[cfg(feature = "telemetry")]
                    if let Some(p) = participation.last() {
                        let device = p
                            .outcomes
                            .iter()
                            .position(|o| *o == DeviceOutcome::Crashed)
                            .or_else(|| {
                                p.outcomes.iter().position(|o| {
                                    !matches!(
                                        o,
                                        DeviceOutcome::Responded | DeviceOutcome::NotSelected
                                    )
                                })
                            })
                            .map(|d| d as u32);
                        fedprox_telemetry::collector::trigger_postmortem(
                            "quorum_skip",
                            s as u32,
                            device,
                        );
                    }
                    rounds_run = s;
                    if s.is_multiple_of(self.cfg.eval_every) || s == self.cfg.rounds {
                        let rec =
                            self.evaluate(s, &global, None, total_grad_evals.get(), 0.0, 0);
                        #[cfg(feature = "telemetry")]
                        if let Some(m) = monitor.as_mut() {
                            m.observe_eval(s, rec.train_loss, rec.grad_norm_sq, None);
                        }
                        records.push(rec);
                    }
                    continue;
                }
                active
            } else {
                participants
            };
            // FSVRG: the server aggregates and re-distributes the global
            // gradient before the local updates (one extra exchange).
            let global_grad = if self.cfg.algorithm.needs_global_gradient() {
                let mut g = vec![0.0; global.len()];
                eval::global_grad(self.model, self.devices, &global, &mut g);
                // Every device spent a full local gradient pass for it.
                for d in self.devices {
                    total_grad_evals.add(d.samples() as u64);
                }
                Some(g)
            } else {
                None
            };
            let updates = runner::run_round_subset(
                self.model,
                self.devices,
                &participants,
                &global,
                &self.cfg,
                s - 1,
                parallel,
                global_grad.as_deref(),
            )?;
            for u in &updates {
                total_grad_evals.add(u.grad_evals as u64);
            }
            #[cfg(feature = "telemetry")]
            if let Some(m) = monitor.as_mut() {
                let mut dir = fedprox_optim::DirectionStats::default();
                let mut work: Vec<(usize, u64)> = Vec::with_capacity(updates.len());
                for (&i, u) in participants.iter().zip(&updates) {
                    dir.merge(&u.dir_stats);
                    work.push((i, u.grad_evals as u64));
                }
                m.note_round(s, &dir, &work);
            }

            // Optional θ measurement against the pre-aggregation global.
            let theta = if self.cfg.measure_theta {
                let mut sum = 0.0;
                let mut wsum = 0.0;
                for (&i, u) in participants.iter().zip(&updates) {
                    let d = &self.devices[i];
                    sum += weights[i] * d.theta_measured(self.model, &global, &u.w, self.cfg.mu);
                    wsum += weights[i];
                }
                Some(sum / wsum)
            } else {
                None
            };

            let locals: Vec<(&[f64], f64)> = updates
                .iter()
                .zip(&participants)
                .map(|(u, &i)| (u.w.as_slice(), weights[i]))
                .collect();
            server::aggregate(&locals, &mut agg);
            std::mem::swap(&mut global, &mut agg);
            rounds_run = s;

            if !vecops::all_finite(&global) {
                // Attribute the blowup to the first participating device
                // whose local model was itself non-finite, when any was
                // (aggregation-only blowups report no device).
                let device = participants
                    .iter()
                    .zip(&updates)
                    .find(|(_, u)| !vecops::all_finite(&u.w))
                    .map(|(&i, _)| i);
                divergence = DivergenceCause::NonFinite { round: s, device };
                #[cfg(feature = "telemetry")]
                {
                    if let Some(m) = monitor.as_mut() {
                        m.observe_non_finite(s, device);
                    }
                    fedprox_telemetry::collector::trigger_postmortem(
                        "non_finite",
                        s as u32,
                        device.map(|d| d as u32),
                    );
                }
                records.push(self.divergence_record(s, theta, total_grad_evals.get()));
                break;
            }
            if s.is_multiple_of(self.cfg.eval_every) || s == self.cfg.rounds {
                let rec = self.evaluate(s, &global, theta, total_grad_evals.get(), 0.0, 0);
                let bad = !rec.train_loss.is_finite() || rec.train_loss > self.cfg.loss_guard;
                #[cfg(feature = "telemetry")]
                if let Some(m) = monitor.as_mut() {
                    if bad {
                        m.observe_loss_guard(s, rec.train_loss, self.cfg.loss_guard);
                    } else {
                        m.observe_eval(s, rec.train_loss, rec.grad_norm_sq, rec.theta_measured);
                    }
                }
                records.push(rec);
                if bad {
                    divergence = DivergenceCause::LossGuard { round: s };
                    #[cfg(feature = "telemetry")]
                    fedprox_telemetry::collector::trigger_postmortem("loss_guard", s as u32, None);
                    break;
                }
            }
        }

        #[cfg(feature = "telemetry")]
        Self::flush_monitor(monitor);

        Ok(History {
            config: self.cfg.summary(),
            records,
            divergence,
            rounds_run,
            total_sim_time: 0.0,
            final_model: global,
            participation,
        })
    }

    /// Build the fedscope health monitor for an armed-telemetry run;
    /// `None` (zero cost) otherwise. The σ̄² measurement it performs is
    /// read-only on model and data — it draws from no RNG stream — so
    /// arming cannot perturb the training trajectory.
    #[cfg(feature = "telemetry")]
    fn health_monitor(&self, w0: &[f64]) -> Option<crate::health::HealthMonitor> {
        if !fedprox_telemetry::collector::is_armed() {
            return None;
        }
        let sigma = eval::empirical_sigma_bar_sq(self.model, self.devices, w0);
        Some(crate::health::HealthMonitor::new(crate::health::HealthConfig::from_run(
            &self.cfg, sigma,
        )))
    }

    /// Hand a monitor's accumulated samples and anomalies to the armed
    /// collector at the end of a run.
    #[cfg(feature = "telemetry")]
    fn flush_monitor(monitor: Option<crate::health::HealthMonitor>) {
        if let Some(m) = monitor {
            for e in m.into_events() {
                fedprox_telemetry::collector::record_event(e);
            }
        }
    }

    /// Networked backend: the actor runtime owns the loop; metrics are
    /// recorded from its per-round callback and timing is patched in from
    /// the virtual clock afterwards.
    fn run_networked(&self, w0: Vec<f64>, opts: &NetRunnerOptions) -> Result<History, FedError> {
        assert!(
            self.cfg.participation >= 1.0,
            "the networked backend requires full participation; use Sequential/Parallel"
        );
        assert!(
            !self.cfg.algorithm.needs_global_gradient(),
            "FSVRG's extra gradient exchange is not modelled by the networked backend"
        );
        let weights = server::weights_from_sizes(
            &self.devices.iter().map(Device::samples).collect::<Vec<_>>(),
        );
        let workers: Vec<_> = self
            .devices
            .iter()
            .map(|d| {
                let model = self.model;
                let cfg = &self.cfg;
                let weight = weights[d.id];
                let sec_per = opts.sec_per_grad_eval;
                // Fallible worker: a local-update failure crosses the
                // simulated wire as a typed `WorkerFailed` transport
                // error instead of a panic. (Unreachable today — FSVRG,
                // the only failing algorithm, is rejected above.)
                TryFnWorker(move |round: u32, global: &[f64]| {
                    let upd = d
                        .local_update(model, global, cfg, round as usize)
                        .map_err(WorkerError::new)?;
                    Ok(DeviceReply {
                        params: upd.w,
                        weight,
                        grad_evals: upd.grad_evals as u64,
                        compute_time: upd.grad_evals as f64 * sec_per,
                    })
                })
            })
            .collect();

        let mut records = Vec::new();
        let mut divergence = DivergenceCause::None;
        let cfg = &self.cfg;
        records.push(self.evaluate(0, &w0, None, 0, 0.0, 0));
        // Device-level direction probes never cross the simulated wire
        // (the frame format must not depend on telemetry state), so the
        // networked monitor carries zero direction statistics and gets
        // its straggler skew backfilled from the clock afterwards.
        #[cfg(feature = "telemetry")]
        let mut monitor = self.health_monitor(&w0);
        #[cfg(feature = "telemetry")]
        if let Some(m) = monitor.as_mut() {
            let r = &records[0];
            m.observe_eval(0, r.train_loss, r.grad_norm_sq, None);
        }
        // The runtime's own resilience option wins when both are set;
        // otherwise the trainer-level policy is handed down.
        let mut net_opts = opts.net.clone();
        if net_opts.resilience.is_none() {
            net_opts.resilience = self.cfg.resilience.clone();
        }
        let report = NetworkRuntime.run(
            workers,
            w0,
            cfg.rounds as u32,
            &net_opts,
            |round, global| {
                let s = round as usize + 1;
                if !vecops::all_finite(global) {
                    divergence = DivergenceCause::NonFinite { round: s, device: None };
                    #[cfg(feature = "telemetry")]
                    {
                        if let Some(m) = monitor.as_mut() {
                            m.observe_non_finite(s, None);
                        }
                        fedprox_telemetry::collector::trigger_postmortem(
                            "non_finite",
                            s as u32,
                            None,
                        );
                    }
                    records.push(self.divergence_record(s, None, 0));
                    return false;
                }
                if s.is_multiple_of(cfg.eval_every) || s == cfg.rounds {
                    let rec = self.evaluate(s, global, None, 0, 0.0, 0);
                    let bad = !rec.train_loss.is_finite() || rec.train_loss > cfg.loss_guard;
                    #[cfg(feature = "telemetry")]
                    if let Some(m) = monitor.as_mut() {
                        if bad {
                            m.observe_loss_guard(s, rec.train_loss, cfg.loss_guard);
                        } else {
                            m.observe_eval(s, rec.train_loss, rec.grad_norm_sq, None);
                        }
                    }
                    records.push(rec);
                    if bad {
                        divergence = DivergenceCause::LossGuard { round: s };
                        #[cfg(feature = "telemetry")]
                        fedprox_telemetry::collector::trigger_postmortem(
                            "loss_guard",
                            s as u32,
                            None,
                        );
                        return false;
                    }
                }
                true
            },
        );
        // Transport errors are protocol/configuration bugs in the
        // in-process simulation, never training dynamics; there is no
        // meaningful History for them, so they propagate typed.
        let report = report.map_err(FedError::Net)?;

        #[cfg(feature = "telemetry")]
        {
            if let Some(m) = monitor.as_mut() {
                m.set_skews(&report.round_skews);
                for p in &report.participation {
                    m.note_participation(p.round, p.responder_fraction());
                }
            }
            Self::flush_monitor(monitor);
        }

        // Patch per-round simulated time and traffic into the records.
        let mut cumulative = Vec::with_capacity(report.round_durations.len());
        let mut acc = 0.0;
        for d in &report.round_durations {
            acc += d;
            cumulative.push(acc);
        }
        let total_bytes = report.clock.bytes_up().saturating_add(report.clock.bytes_down());
        let per_round_bytes = if report.rounds_run > 0 {
            total_bytes / report.rounds_run as u64
        } else {
            0
        };
        for rec in records.iter_mut() {
            if rec.round >= 1 && rec.round <= cumulative.len() {
                rec.sim_time = cumulative[rec.round - 1];
                rec.bytes = per_round_bytes.saturating_mul(rec.round as u64);
            }
        }

        Ok(History {
            config: self.cfg.summary(),
            records,
            divergence,
            rounds_run: report.rounds_run as usize,
            total_sim_time: report.clock.now(),
            final_model: report.final_model,
            participation: report.participation,
        })
    }

    fn evaluate(
        &self,
        round: usize,
        global: &[f64],
        theta: Option<f64>,
        grad_evals: u64,
        sim_time: f64,
        bytes: u64,
    ) -> RoundRecord {
        fedprox_telemetry::span!("core", "evaluate", "round" => round);
        RoundRecord {
            round,
            train_loss: eval::global_loss(self.model, self.devices, global),
            test_accuracy: eval::test_accuracy(self.model, self.test, global),
            grad_norm_sq: eval::stationarity_gap(self.model, self.devices, global),
            theta_measured: theta,
            sim_time,
            bytes,
            grad_evals,
        }
    }

    fn divergence_record(&self, round: usize, theta: Option<f64>, grad_evals: u64) -> RoundRecord {
        RoundRecord {
            round,
            train_loss: f64::INFINITY,
            test_accuracy: 0.0,
            grad_norm_sq: f64::INFINITY,
            theta_measured: theta,
            sim_time: 0.0,
            bytes: 0,
            grad_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunnerKind;
    use fedprox_data::split::split_federation;
    use fedprox_data::synthetic::{generate, SyntheticConfig};
    use fedprox_models::MultinomialLogistic;
    use fedprox_optim::estimator::EstimatorKind;

    fn federation(seed: u64) -> (Vec<Device>, Dataset, MultinomialLogistic) {
        let shards =
            generate(&SyntheticConfig { seed, ..Default::default() }, &[60, 90, 40, 80]);
        let (train, test) = split_federation(&shards, seed);
        let devices: Vec<Device> =
            train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        (devices, test, MultinomialLogistic::new(60, 10))
    }

    fn base_cfg(alg: Algorithm) -> FedConfig {
        FedConfig::new(alg)
            .with_beta(5.0)
            .with_tau(5)
            .with_mu(0.5)
            .with_batch_size(8)
            .with_rounds(10)
            .with_seed(7)
    }

    #[test]
    fn training_reduces_loss_all_algorithms() {
        let (devices, test, model) = federation(1);
        for alg in [
            Algorithm::FedAvg,
            Algorithm::FedProxVr(EstimatorKind::Svrg),
            Algorithm::FedProxVr(EstimatorKind::Sarah),
        ] {
            let trainer = FederatedTrainer::new(&model, &devices, &test, base_cfg(alg));
            let h = trainer.run().expect("run");
            assert!(!h.diverged(), "{} diverged", alg.name());
            assert_eq!(h.rounds_run, 10);
            let first = h.records.first().unwrap().train_loss;
            let last = h.final_loss().unwrap();
            assert!(last < first, "{}: {first} -> {last}", alg.name());
        }
    }

    #[test]
    fn sequential_and_parallel_identical() {
        let (devices, test, model) = federation(2);
        let cfg = base_cfg(Algorithm::FedProxVr(EstimatorKind::Sarah));
        let h_seq = FederatedTrainer::new(&model, &devices, &test, cfg.clone()).run().expect("run");
        let h_par = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            cfg.with_runner(RunnerKind::Parallel),
        )
        .run().expect("run");
        assert_eq!(h_seq.records.len(), h_par.records.len());
        for (a, b) in h_seq.records.iter().zip(&h_par.records) {
            assert_eq!(a.train_loss, b.train_loss, "round {}", a.round);
            assert_eq!(a.test_accuracy, b.test_accuracy);
        }
    }

    #[test]
    fn network_matches_sequential_trajectory() {
        let (devices, test, model) = federation(3);
        let cfg = base_cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_rounds(5);
        let h_seq = FederatedTrainer::new(&model, &devices, &test, cfg.clone()).run().expect("run");
        let h_net = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            cfg.with_runner(RunnerKind::Network(NetRunnerOptions::default())),
        )
        .run().expect("run");
        assert_eq!(h_seq.records.len(), h_net.records.len());
        for (a, b) in h_seq.records.iter().zip(&h_net.records) {
            assert_eq!(a.train_loss, b.train_loss, "round {}", a.round);
        }
        // Network run reports simulated time.
        assert!(h_net.total_sim_time > 0.0);
        assert!(h_net.records.last().unwrap().sim_time > 0.0);
        assert!(h_net.records.last().unwrap().bytes > 0);
    }

    #[test]
    fn measure_theta_records_values() {
        let (devices, test, model) = federation(4);
        let cfg = base_cfg(Algorithm::FedProxVr(EstimatorKind::Sarah))
            .with_rounds(3)
            .with_measure_theta(true);
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        assert!(h.records[0].theta_measured.is_none(), "no theta before any local solve");
        for r in h.records.iter().skip(1) {
            let t = r.theta_measured.expect("theta missing");
            assert!(t.is_finite() && t >= 0.0);
        }
    }

    #[test]
    fn eval_every_thins_records() {
        let (devices, test, model) = federation(5);
        let cfg = base_cfg(Algorithm::FedAvg).with_rounds(10).with_eval_every(4);
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        let rounds: Vec<usize> = h.records.iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![0, 4, 8, 10]); // baseline, every 4th, final
    }

    #[test]
    fn fedprox_and_fsvrg_baselines_learn() {
        let (devices, test, model) = federation(9);
        for alg in [Algorithm::FedProx, Algorithm::Fsvrg] {
            let h = FederatedTrainer::new(&model, &devices, &test, base_cfg(alg)).run().expect("run");
            assert!(!h.diverged(), "{} diverged", alg.name());
            assert!(
                h.final_loss().unwrap() < h.records[0].train_loss,
                "{} failed to learn",
                alg.name()
            );
        }
    }

    #[test]
    fn fsvrg_accounts_for_global_gradient_cost() {
        let (devices, test, model) = federation(10);
        let total_samples: u64 = devices.iter().map(|d| d.samples() as u64).sum();
        let rounds = 3;
        let h = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            base_cfg(Algorithm::Fsvrg).with_rounds(rounds).with_eval_every(1),
        )
        .run().expect("run");
        let evals = h.records.last().unwrap().grad_evals;
        // At least one full pass per round just for the global gradient.
        assert!(evals >= rounds as u64 * total_samples, "evals {evals}");
    }

    #[test]
    #[should_panic(expected = "not modelled by the networked backend")]
    fn networked_rejects_fsvrg() {
        let (devices, test, model) = federation(11);
        let cfg = base_cfg(Algorithm::Fsvrg)
            .with_runner(RunnerKind::Network(NetRunnerOptions::default()));
        let _ = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    }

    #[test]
    fn partial_participation_trains_and_differs_from_full() {
        let (devices, test, model) = federation(7);
        let full = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            base_cfg(Algorithm::FedAvg).with_rounds(6),
        )
        .run().expect("run");
        let half = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            base_cfg(Algorithm::FedAvg).with_rounds(6).with_participation(0.5),
        )
        .run().expect("run");
        assert!(!half.diverged());
        // Different device subsets ⇒ different trajectory.
        assert_ne!(
            full.final_loss().unwrap(),
            half.final_loss().unwrap(),
            "sampling half the devices should change the trajectory"
        );
        // Still learns.
        assert!(half.final_loss().unwrap() < half.records[0].train_loss);
        // Reproducible.
        let half2 = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            base_cfg(Algorithm::FedAvg).with_rounds(6).with_participation(0.5),
        )
        .run().expect("run");
        assert_eq!(half.records, half2.records);
    }

    #[test]
    #[should_panic(expected = "full participation")]
    fn networked_rejects_partial_participation() {
        let (devices, test, model) = federation(8);
        let cfg = base_cfg(Algorithm::FedAvg)
            .with_participation(0.5)
            .with_runner(RunnerKind::Network(NetRunnerOptions::default()));
        let _ = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
    }

    #[test]
    fn local_crash_excludes_device_and_records_participation() {
        use fedprox_faults::{FaultPlan, Resilience};
        let (devices, test, model) = federation(12);
        let cfg = base_cfg(Algorithm::FedProxVr(EstimatorKind::Svrg)).with_rounds(6);
        let faulted = cfg
            .clone()
            .with_resilience(Resilience::with_plan(FaultPlan::new().crash(2, 3)));
        let h = FederatedTrainer::new(&model, &devices, &test, faulted.clone()).run().expect("run");
        assert!(!h.diverged());
        assert_eq!(h.rounds_run, 6);
        assert_eq!(h.participation.len(), 6);
        for p in &h.participation {
            assert!(!p.skipped);
            if p.round >= 3 {
                assert_eq!(p.outcomes[2], DeviceOutcome::Crashed);
                assert_eq!(p.responders(), 3);
                assert!(p.responder_weight < 1.0);
            } else {
                assert_eq!(p.responders(), 4);
                assert!((p.responder_weight - 1.0).abs() < 1e-12);
            }
        }
        // The faulted trajectory differs from the clean one…
        let clean = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        assert!(clean.participation.is_empty());
        assert_ne!(clean.final_loss(), h.final_loss());
        // …and is reproducible bit-for-bit.
        let h2 = FederatedTrainer::new(&model, &devices, &test, faulted).run().expect("run");
        assert_eq!(h.records, h2.records);
        assert_eq!(h.participation, h2.participation);
    }

    #[test]
    fn local_quorum_shortfall_skips_rounds_without_error() {
        use fedprox_faults::{FaultPlan, QuorumPolicy, Resilience};
        let (devices, test, model) = federation(13);
        // Device 1 holds 90 of 270 training samples; while it is offline
        // the responding weight 2/3 misses a 0.9 quorum and the round is
        // skipped with the global model untouched.
        let resil = Resilience::with_plan(FaultPlan::new().offline(1, 2, 3))
            .with_quorum(QuorumPolicy::weight_fraction(0.9));
        let cfg = base_cfg(Algorithm::FedAvg).with_rounds(5).with_resilience(resil);
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        assert!(!h.diverged());
        assert_eq!(h.rounds_run, 5);
        let skipped: Vec<usize> =
            h.participation.iter().filter(|p| p.skipped).map(|p| p.round).collect();
        assert_eq!(skipped, vec![2, 3]);
        // eval_every = 1: skipped rounds leave the evaluated loss
        // bitwise unchanged.
        assert_eq!(h.records[1].round, 1);
        assert_eq!(h.records[2].train_loss.to_bits(), h.records[1].train_loss.to_bits());
        assert_eq!(h.records[3].train_loss.to_bits(), h.records[1].train_loss.to_bits());
        assert_ne!(h.records[4].train_loss.to_bits(), h.records[3].train_loss.to_bits());
    }

    #[test]
    fn local_zero_fault_resilience_matches_strict_run() {
        use fedprox_faults::Resilience;
        let (devices, test, model) = federation(14);
        let cfg = base_cfg(Algorithm::FedProxVr(EstimatorKind::Sarah));
        let strict = FederatedTrainer::new(&model, &devices, &test, cfg.clone()).run().expect("run");
        let resilient = FederatedTrainer::new(
            &model,
            &devices,
            &test,
            cfg.with_resilience(Resilience::default()),
        )
        .run().expect("run");
        assert_eq!(strict.records, resilient.records);
        for (a, b) in strict.final_model.iter().zip(&resilient.final_model) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(resilient.participation.len(), 10);
        assert!(resilient.participation.iter().all(|p| p.responders() == 4 && !p.skipped));
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::FedAvg.name(), "fedavg");
        assert_eq!(Algorithm::FedProxVr(EstimatorKind::Svrg).name(), "fedproxvr-svrg");
        assert_eq!(Algorithm::FedProxVr(EstimatorKind::Sarah).name(), "fedproxvr-sarah");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_federation_rejected() {
        let (_, test, model) = federation(6);
        let _ = FederatedTrainer::new(&model, &[], &test, base_cfg(Algorithm::FedAvg));
    }
}
